"""Post-hoc analysis tools: failure taxonomy and threshold profiling."""

from .cp_profile import CPProfile, profile_classification_power
from .failure_analysis import (
    CATEGORIES,
    FailureBreakdown,
    analyze_failures,
    classify_truth,
    patterns_intersect,
)

__all__ = [
    "CPProfile",
    "profile_classification_power",
    "CATEGORIES",
    "FailureBreakdown",
    "analyze_failures",
    "classify_truth",
    "patterns_intersect",
]
