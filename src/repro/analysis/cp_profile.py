"""Classification-Power profiling: data-driven guidance for ``t_CP``.

Criteria 1 works when the CP of attributes that occur in RAPs separates
from the CP of attributes that do not.  This profiler measures that
separation empirically over a labelled case collection:

* per case, the CP of every attribute together with whether the attribute
  appears in any ground-truth RAP;
* the separation quality (AUC of in-RAP vs out-of-RAP CP values — 1.0
  means a threshold exists that never deletes a RAP attribute);
* a recommended ``t_CP``: the largest threshold that keeps a configured
  fraction of in-RAP attributes, clamped to the paper's < 0.1 guidance.

This explains the Fig. 10(a) sensitivity curve mechanistically: the
recommended threshold is where the in-RAP CP distribution's lower tail
begins, and pushing ``t_CP`` past it deletes real RAP attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.classification_power import all_classification_powers
from ..data.injection import LocalizationCase

__all__ = ["CPProfile", "profile_classification_power"]


@dataclass
class CPProfile:
    """CP observations split by RAP membership."""

    #: CP values of attributes that occur in some ground-truth RAP.
    in_rap: List[float] = field(default_factory=list)
    #: CP values of attributes outside every RAP of their case.
    out_of_rap: List[float] = field(default_factory=list)

    @property
    def n_observations(self) -> int:
        return len(self.in_rap) + len(self.out_of_rap)

    def auc(self) -> float:
        """P(CP_in > CP_out) over all cross pairs (ties count half).

        1.0 means the two populations are perfectly separable; 0.5 means
        CP carries no signal about RAP membership.
        """
        if not self.in_rap or not self.out_of_rap:
            return 1.0
        ins = np.asarray(self.in_rap)
        outs = np.asarray(self.out_of_rap)
        greater = (ins[:, None] > outs[None, :]).sum()
        ties = (ins[:, None] == outs[None, :]).sum()
        return float((greater + 0.5 * ties) / (ins.size * outs.size))

    def recommended_t_cp(self, keep_fraction: float = 0.98, cap: float = 0.1) -> float:
        """Largest threshold keeping at least *keep_fraction* of in-RAP attributes.

        Computed from order statistics (not interpolated quantiles) so the
        guarantee is exact on discrete data: at most
        ``floor((1 - keep_fraction) * n)`` in-RAP values fall at or below
        the returned threshold.  Clamped to ``[0, cap]`` per the paper's
        < 0.1 guidance.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        if not self.in_rap:
            return 0.0
        ordered = sorted(self.in_rap)
        allowed_deletions = int((1.0 - keep_fraction) * len(ordered))
        pivot = ordered[allowed_deletions]  # first value that must survive
        threshold = max(0.0, pivot * (1.0 - 1e-9) - 1e-12)
        return min(threshold, cap)

    def deletion_rates(self, t_cp: float) -> tuple:
        """(fraction of in-RAP attrs deleted, fraction of out attrs deleted)
        at a hypothetical threshold — the two error rates Criteria 1 trades."""
        in_deleted = (
            sum(1 for cp in self.in_rap if cp <= t_cp) / len(self.in_rap)
            if self.in_rap
            else 0.0
        )
        out_deleted = (
            sum(1 for cp in self.out_of_rap if cp <= t_cp) / len(self.out_of_rap)
            if self.out_of_rap
            else 0.0
        )
        return in_deleted, out_deleted


def profile_classification_power(
    cases: Sequence[LocalizationCase],
) -> CPProfile:
    """Collect the CP-by-membership observations over *cases*."""
    profile = CPProfile()
    for case in cases:
        schema = case.dataset.schema
        rap_attributes = set()
        for rap in case.true_raps:
            rap_attributes.update(rap.specified_indices)
        cps = all_classification_powers(case.dataset)
        for index, name in enumerate(schema.names):
            if index in rap_attributes:
                profile.in_rap.append(cps[name])
            else:
                profile.out_of_rap.append(cps[name])
    return profile
