"""Failure taxonomy: *how* a localizer misses, not just how often.

RC@k and F1 collapse every miss into the same zero; diagnosing a method
(or tuning thresholds) needs the miss *mode*.  Each ground-truth RAP of a
case is classified against the prediction list:

* ``exact`` — predicted verbatim;
* ``over_coarse`` — a predicted pattern is a strict ancestor (the method
  merged the RAP into a wider scope, e.g. ``t_conf`` too low);
* ``over_fine`` — a predicted pattern is a strict descendant (the method
  fragmented the RAP, e.g. ``t_conf`` too high or its attribute deleted);
* ``overlapping`` — a predicted pattern intersects the RAP's scope but is
  neither ancestor nor descendant (wrong-branch confusion);
* ``missed`` — nothing predicted touches the RAP's scope.

Predictions that touch no ground-truth scope are counted as ``spurious``.
All checks are structural (two combinations intersect iff they agree on
every attribute both specify), so the analysis needs no leaf data.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.attribute import AttributeCombination
from ..experiments.runner import MethodEvaluation

__all__ = [
    "CATEGORIES",
    "patterns_intersect",
    "classify_truth",
    "FailureBreakdown",
    "analyze_failures",
]

#: Classification labels, most to least desirable.
CATEGORIES: Tuple[str, ...] = ("exact", "over_coarse", "over_fine", "overlapping", "missed")


def patterns_intersect(a: AttributeCombination, b: AttributeCombination) -> bool:
    """True when the two combinations cover at least one common leaf.

    Over a full cross-product this holds exactly when they agree on every
    attribute both specify (wildcards are unconstrained).
    """
    if len(a.values) != len(b.values):
        raise ValueError("combination arities differ")
    return all(
        va is None or vb is None or va == vb for va, vb in zip(a.values, b.values)
    )


def classify_truth(
    truth: AttributeCombination, predicted: Sequence[AttributeCombination]
) -> str:
    """The best-case relationship of *truth* to any prediction."""
    best = "missed"
    rank = {category: i for i, category in enumerate(CATEGORIES)}
    for pattern in predicted:
        if pattern == truth:
            return "exact"
        if pattern.is_ancestor_of(truth):
            candidate = "over_coarse"
        elif truth.is_ancestor_of(pattern):
            candidate = "over_fine"
        elif patterns_intersect(pattern, truth):
            candidate = "overlapping"
        else:
            continue
        if rank[candidate] < rank[best]:
            best = candidate
    return best


@dataclass
class FailureBreakdown:
    """Aggregate failure-mode counts over a case collection."""

    method_name: str
    counts: Counter = field(default_factory=Counter)
    spurious_predictions: int = 0
    total_predictions: int = 0
    #: Up to a few concrete examples per non-exact category: (case_id, truth, predictions).
    examples: Dict[str, List[Tuple[str, str, List[str]]]] = field(default_factory=dict)

    @property
    def total_truths(self) -> int:
        return sum(self.counts.values())

    def fraction(self, category: str) -> float:
        if category not in CATEGORIES:
            raise KeyError(f"unknown category {category!r}")
        if self.total_truths == 0:
            return 0.0
        return self.counts[category] / self.total_truths

    @property
    def spurious_fraction(self) -> float:
        if self.total_predictions == 0:
            return 0.0
        return self.spurious_predictions / self.total_predictions

    def render(self) -> str:
        lines = [f"failure breakdown for {self.method_name} ({self.total_truths} true RAPs):"]
        for category in CATEGORIES:
            lines.append(
                f"  {category:12s} {self.counts[category]:4d}  ({self.fraction(category) * 100:5.1f}%)"
            )
        lines.append(
            f"  spurious predictions: {self.spurious_predictions}/{self.total_predictions} "
            f"({self.spurious_fraction * 100:.1f}%)"
        )
        return "\n".join(lines)


def analyze_failures(
    evaluation: MethodEvaluation,
    top_k: int = 3,
    max_examples_per_category: int = 3,
) -> FailureBreakdown:
    """Classify every ground-truth RAP of *evaluation* against its top-k."""
    breakdown = FailureBreakdown(method_name=evaluation.method_name)
    for result in evaluation.results:
        predicted = result.predicted[:top_k]
        breakdown.total_predictions += len(predicted)
        matched = set()
        for truth in result.true_raps:
            category = classify_truth(truth, predicted)
            breakdown.counts[category] += 1
            if category != "exact":
                bucket = breakdown.examples.setdefault(category, [])
                if len(bucket) < max_examples_per_category:
                    bucket.append(
                        (result.case_id, str(truth), [str(p) for p in predicted])
                    )
        for pattern in predicted:
            if any(patterns_intersect(pattern, truth) for truth in result.true_raps):
                matched.add(pattern)
        breakdown.spurious_predictions += len(predicted) - len(
            [p for p in predicted if p in matched]
        )
    return breakdown
