"""Adtributor (Bhagwan et al., NSDI 2014) — one-dimensional localization.

Adtributor assumes every root cause lives in a 1-dimensional cuboid: the
anomaly is explained by a set of elements of a *single* attribute.  For
each attribute it aggregates the forecast and actual KPI over each element
(the additive roll-up of Fig. 4) and computes two per-element quantities:

* **Explanatory power** ``EP_e = (v_e - f_e) / (v_total - f_total)`` — the
  share of the overall KPI change the element accounts for;
* **Surprise** — the element's term of the Jensen–Shannon divergence
  between the forecast probability distribution ``p_e = f_e / f_total``
  and the actual distribution ``q_e = v_e / v_total``.

Within an attribute, elements are scanned in decreasing surprise; elements
with ``EP > T_EP`` are accumulated until their cumulative EP exceeds
``TEP``, forming that attribute's candidate set (bounded for succinctness).
Attributes' candidate sets are ranked by accumulated surprise and flattened
into ranked 1-D attribute combinations.

Per the paper's evaluation it should only perform well on groups whose
RAPs are one-dimensional (Fig. 8(a)) and reach roughly a third of RC@k on
RAPMD (Fig. 8(b)) — the share of RAPMD RAPs that happen to be 1-D.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.attribute import AttributeCombination
from ..core.cuboid import Cuboid
from ..core.engine import engine_for
from ..data.dataset import FineGrainedDataset
from .base import Localizer

__all__ = ["AdtributorConfig", "Adtributor"]


@dataclass
class AdtributorConfig:
    """Adtributor's thresholds (names follow the NSDI paper)."""

    #: Minimum explanatory power for an element to be considered at all.
    t_ep: float = 0.05
    #: Cumulative explanatory power at which an attribute's set is complete.
    tep: float = 0.67
    #: Succinctness bound: maximum elements per attribute candidate set.
    max_elements_per_attribute: int = 5


def _surprise(p: float, q: float) -> float:
    """One element's Jensen–Shannon divergence term between ``p`` and ``q``."""
    s = 0.0
    if p > 0.0:
        s += 0.5 * p * math.log(2.0 * p / (p + q))
    if q > 0.0:
        s += 0.5 * q * math.log(2.0 * q / (p + q))
    # The term is mathematically non-negative; rounding can leave a tiny
    # negative residue when p and q are nearly equal (e.g. p=1.0 vs the
    # closest float below it), so clamp at exact zero.
    return s if s > 0.0 else 0.0


class Adtributor(Localizer):
    """The NSDI'14 revenue-debugging localizer, restricted to 1-D cuboids."""

    name = "Adtributor"

    def __init__(self, config: Optional[AdtributorConfig] = None):
        self.config = config if config is not None else AdtributorConfig()

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        cfg = self.config
        v_total = float(dataset.v.sum())
        f_total = float(dataset.f.sum())
        overall_change = v_total - f_total
        if overall_change == 0.0:
            # Nothing to explain: the KPI did not move in aggregate.
            return []

        # (attribute surprise, per-element entries) per attribute.
        scored_sets: List[Tuple[float, List[Tuple[float, AttributeCombination]]]] = []
        n_attrs = dataset.schema.n_attributes
        engine = engine_for(dataset)
        for attr_index in range(n_attrs):
            aggregate = engine.aggregate(Cuboid([attr_index]))
            entries: List[Tuple[float, float, int]] = []  # (surprise, ep, row)
            for row in range(len(aggregate)):
                f_e = float(aggregate.f_sum[row])
                v_e = float(aggregate.v_sum[row])
                p = f_e / f_total if f_total > 0.0 else 0.0
                q = v_e / v_total if v_total > 0.0 else 0.0
                ep = (v_e - f_e) / overall_change
                entries.append((_surprise(p, q), ep, row))
            entries.sort(key=lambda e: e[0], reverse=True)

            cumulative_ep = 0.0
            attribute_surprise = 0.0
            selected: List[Tuple[float, AttributeCombination]] = []
            for surprise, ep, row in entries:
                if ep <= cfg.t_ep:
                    continue
                selected.append((surprise, aggregate.combination(row)))
                cumulative_ep += ep
                attribute_surprise += surprise
                if cumulative_ep > cfg.tep:
                    break
                if len(selected) >= cfg.max_elements_per_attribute:
                    break
            if selected and cumulative_ep > cfg.tep:
                scored_sets.append((attribute_surprise, selected))

        # Rank attributes by their accumulated surprise, then flatten the
        # candidate sets into individual 1-D combinations (most surprising
        # attribute's elements first, each set in its internal order).
        scored_sets.sort(key=lambda s: s[0], reverse=True)
        ranked: List[AttributeCombination] = []
        for __, selected in scored_sets:
            for __, combination in selected:
                ranked.append(combination)
        if k is not None:
            ranked = ranked[:k]
        return ranked
