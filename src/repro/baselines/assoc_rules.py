"""Association-rule localization via FP-growth (the paper's [15]/[31]/[32] line).

Each anomalous leaf becomes a transaction of ``attribute=value`` items; the
FP-growth miner extracts itemsets frequent among the anomalies, and each
itemset is read back as an attribute combination.  A rule
``itemset => anomaly`` is scored by

* **confidence** — the fraction of *all* leaves matching the itemset that
  are anomalous (computed over the full table, not just the anomalous
  transactions), and
* **coverage** — the fraction of anomalous leaves the itemset matches,

ranking candidates by ``confidence * coverage`` with shorter (coarser)
itemsets winning ties — the association-rule analogue of preferring the
root pattern over its descendants.  The RAPMiner paper finds this simple
method the runner-up on RAPMD (Fig. 8(b)) and competitive on Squeeze-B0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.attribute import AttributeCombination
from ..data.dataset import FineGrainedDataset
from .apriori import apriori
from .base import Localizer
from .fpgrowth import fpgrowth

__all__ = ["AssociationRuleConfig", "AssociationRuleLocalizer"]

#: Frequent-itemset mining backends (the paper's Apriori-vs-FP-growth remark).
_BACKENDS = {"fpgrowth": fpgrowth, "apriori": apriori}


@dataclass
class AssociationRuleConfig:
    """Mining and rule-filtering thresholds."""

    #: Minimum support as a fraction of the anomalous-leaf count.
    min_support_ratio: float = 0.1
    #: Minimum rule confidence for a candidate to be kept.
    min_confidence: float = 0.6
    #: Maximum itemset length (None = up to all attributes).
    max_length: Optional[int] = None
    #: Frequent-itemset miner: "fpgrowth" (default) or "apriori".
    backend: str = "fpgrowth"

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {sorted(_BACKENDS)}"
            )


class AssociationRuleLocalizer(Localizer):
    """FP-growth over anomalous leaves, rules ranked by confidence x coverage."""

    name = "FP-growth"

    def __init__(self, config: Optional[AssociationRuleConfig] = None):
        self.config = config if config is not None else AssociationRuleConfig()

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        cfg = self.config
        n_anomalous = dataset.n_anomalous
        if n_anomalous == 0:
            return []
        anomalous_codes = dataset.codes[dataset.labels]
        n_attrs = dataset.schema.n_attributes
        transactions = [
            [(attr, int(row[attr])) for attr in range(n_attrs)]
            for row in anomalous_codes
        ]
        min_support = max(1, int(round(cfg.min_support_ratio * n_anomalous)))
        max_length = cfg.max_length if cfg.max_length is not None else n_attrs
        miner = _BACKENDS[cfg.backend]
        itemsets = miner(transactions, min_support, max_length=max_length)

        scored: List[Tuple[float, int, AttributeCombination]] = []
        for itemset, anomalous_support in itemsets.items():
            values: List[Optional[str]] = [None] * n_attrs
            for attr_index, code in itemset:
                values[attr_index] = dataset.schema.decode(attr_index, code)
            combination = AttributeCombination(values)
            total_support = dataset.support_count(combination)
            if total_support == 0:
                continue
            confidence = anomalous_support / total_support
            if confidence < cfg.min_confidence:
                continue
            coverage = anomalous_support / n_anomalous
            scored.append((confidence * coverage, len(itemset), combination))

        scored.sort(key=lambda s: (-s[0], s[1], s[2].sort_key()))
        ranked = [combination for __, __, combination in scored]
        if k is not None:
            ranked = ranked[:k]
        return ranked
