"""Baseline localizers the paper compares against, built from scratch."""

from .adtributor import Adtributor, AdtributorConfig
from .apriori import apriori
from .r_adtributor import RecursiveAdtributor, RecursiveAdtributorConfig
from .assoc_rules import AssociationRuleConfig, AssociationRuleLocalizer
from .base import Localizer
from .fpgrowth import FPNode, FPTree, fpgrowth
from .hotspot import HotSpot, HotSpotConfig
from .idice import IDice, IDiceConfig
from .squeeze import (
    Squeeze,
    SqueezeConfig,
    cluster_deviations,
    deviation_score,
    generalized_potential_score,
)

__all__ = [
    "Adtributor",
    "AdtributorConfig",
    "apriori",
    "RecursiveAdtributor",
    "RecursiveAdtributorConfig",
    "AssociationRuleConfig",
    "AssociationRuleLocalizer",
    "Localizer",
    "FPNode",
    "FPTree",
    "fpgrowth",
    "HotSpot",
    "HotSpotConfig",
    "IDice",
    "IDiceConfig",
    "Squeeze",
    "SqueezeConfig",
    "cluster_deviations",
    "deviation_score",
    "generalized_potential_score",
]
