"""Shared interface of all anomaly localizers (RAPMiner and the baselines).

Every method — RAPMiner itself, Adtributor, iDice, the FP-growth
association-rule miner, Squeeze, and HotSpot — exposes the same entry
point::

    localize(dataset, k) -> ranked list of AttributeCombination

taking a labelled leaf table and returning its best root-anomaly-pattern
guesses, most confident first.  The experiment harness only ever talks to
this interface, which is what lets one runner regenerate every comparison
figure of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from ..core.attribute import AttributeCombination
from ..data.dataset import FineGrainedDataset

__all__ = ["Localizer"]


class Localizer(ABC):
    """A root-anomaly-pattern localization method."""

    #: Display name used in reports and figures.
    name: str = "localizer"

    @abstractmethod
    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        """Rank root-anomaly-pattern candidates for a labelled leaf table.

        Parameters
        ----------
        dataset:
            Leaf table carrying actual values ``v``, forecasts ``f``, and
            leaf anomaly labels.  Methods are free to use any subset of
            these signals (RAPMiner uses only the labels; Adtributor and
            Squeeze use ``v``/``f``).
        k:
            Number of patterns to return; ``None`` means "as many as the
            method naturally produces", still ranked.

        Returns
        -------
        Ranked attribute combinations, best first.  May be shorter than *k*
        when the method finds fewer candidates.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
