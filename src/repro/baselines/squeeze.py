"""Squeeze (Li et al., ISSRE 2019) — clustering + generalized potential score.

Squeeze assumes (1) all fine-grained descendants of one root cause share
the same relative anomaly magnitude (vertical assumption) and (2) different
failures have different magnitudes (horizontal assumption).  It therefore:

1. computes a per-leaf **deviation score** ``d = 2 (f - v) / (f + v)``;
2. **clusters** the deviation scores of the anomalous leaves with a
   histogram-density procedure — under the assumptions each failure forms
   one tight mode;
3. for each cluster, searches every cuboid for the attribute-combination
   set that best explains the cluster, ranking candidate sets by the
   **generalized potential score (GPS)**: how well the actual leaf values
   match the *ripple effect* prediction (all leaves below the candidate
   deflated by the candidate's aggregate ratio ``sum v / sum f``), compared
   with the no-anomaly prediction elsewhere.

On data violating the assumptions — RAPMD's per-leaf random magnitudes —
the clustering fragments and the ripple prediction misses, which is exactly
the degradation the RAPMiner paper reports in Fig. 8(b).

This is a faithful from-scratch reimplementation of the published
mechanism; hyper-parameter names follow the ISSRE paper where they exist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.attribute import AttributeCombination
from ..core.cuboid import Cuboid, cuboids_in_layer
from ..core.engine import AggregationEngine, engine_for
from ..data.dataset import FineGrainedDataset
from .base import Localizer

__all__ = [
    "SqueezeConfig",
    "Squeeze",
    "deviation_score",
    "cluster_deviations",
    "generalized_potential_score",
]


def generalized_potential_score(
    dataset: FineGrainedDataset,
    selection_mask: np.ndarray,
    abnormal_mask: np.ndarray,
    epsilon: float = 1e-9,
) -> float:
    """GPS of a candidate root-cause leaf set (Squeeze, ISSRE'19 Eq. 5).

    Under the hypothesis that the selection is the root cause, the covered
    leaves ``S1`` should follow the ripple-effect prediction
    ``a = f * (sum v / sum f)`` while the *abnormal leaves the selection
    fails to cover* (``S2``) would have to match their forecasts — which
    they by construction do not, penalizing under-coverage::

        GPS = 1 - (mean|v1 - a1| + mean|v2 - f2|)
                  / (mean|v1 - f1| + mean|v2 - f2|)

    A perfect selection has ``a1 = v1`` and empty ``S2``, giving GPS = 1;
    over-covering normal leaves skews the ripple factor and drives the
    first numerator term up; under-covering abnormal leaves keeps their
    full deviation in the numerator.
    """
    v1 = dataset.v[selection_mask]
    f1 = dataset.f[selection_mask]
    if v1.size == 0:
        return -1.0
    missed = abnormal_mask & ~selection_mask
    v2 = dataset.v[missed]
    f2 = dataset.f[missed]
    ripple = v1.sum() / (f1.sum() + epsilon)
    a1 = f1 * ripple
    err_covered_hypothesis = np.abs(v1 - a1).mean()
    err_missed = np.abs(v2 - f2).mean() if v2.size else 0.0
    err_covered_null = np.abs(v1 - f1).mean()
    denominator = err_covered_null + err_missed
    if denominator <= epsilon:
        return 0.0
    return 1.0 - (err_covered_hypothesis + err_missed) / denominator


def deviation_score(v: np.ndarray, f: np.ndarray, epsilon: float = 1e-9) -> np.ndarray:
    """Squeeze's leaf deviation score ``d = 2 (f - v) / (f + v)``."""
    v = np.asarray(v, dtype=float)
    f = np.asarray(f, dtype=float)
    return 2.0 * (f - v) / (f + v + epsilon)


def _moving_average(values: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return values.astype(float)
    kernel = np.ones(window) / window
    return np.convolve(values, kernel, mode="same")


def cluster_deviations(
    deviations: np.ndarray,
    bin_width: float = 0.02,
    max_bins: int = 60,
    smoothing_window: int = 3,
    min_cluster_size: int = 1,
    valley_ratio: float = 0.5,
) -> List[np.ndarray]:
    """Histogram-density clustering of 1-D deviation scores.

    Builds a smoothed histogram with an *absolute* bin width (deviation
    scores live on a fixed [-2, 2] scale, so the resolution at which two
    anomaly magnitudes count as "the same failure" must not depend on the
    data range), splits it at valleys whose density falls below
    ``valley_ratio`` of the smaller adjacent peak, and returns index arrays
    (into *deviations*) per cluster, largest cluster first.  This is the
    density-estimation clustering Squeeze uses in place of generic
    algorithms like DBSCAN.
    """
    deviations = np.asarray(deviations, dtype=float)
    n = deviations.size
    if n == 0:
        return []
    lo, hi = float(deviations.min()), float(deviations.max())
    span = hi - lo
    if span < bin_width:
        return [np.arange(n)]
    n_bins = int(min(max_bins, max(1, math.ceil(span / bin_width))))
    hist, edges = np.histogram(deviations, bins=n_bins, range=(lo, hi))
    density = _moving_average(hist, smoothing_window)

    # Peaks: local maxima of the smoothed density.
    peaks = [
        i
        for i in range(n_bins)
        if density[i] > 0
        and (i == 0 or density[i] >= density[i - 1])
        and (i == n_bins - 1 or density[i] >= density[i + 1])
    ]
    # Boundaries: between consecutive peaks, split at the deepest valley if
    # it is clearly below both peaks (or empty).
    boundaries: List[int] = []
    for left_peak, right_peak in zip(peaks, peaks[1:]):
        between = np.arange(left_peak + 1, right_peak)
        if between.size == 0:
            continue
        valley = int(between[np.argmin(density[between])])
        threshold = valley_ratio * min(density[left_peak], density[right_peak])
        if density[valley] <= threshold:
            boundaries.append(valley)

    bin_index = np.clip(np.digitize(deviations, edges[1:-1]), 0, n_bins - 1)
    cluster_of_bin = np.zeros(n_bins, dtype=int)
    current = 0
    boundary_set = set(boundaries)
    for i in range(n_bins):
        if i in boundary_set:
            current += 1
        cluster_of_bin[i] = current

    clusters: List[np.ndarray] = []
    for cluster_id in np.unique(cluster_of_bin[bin_index]):
        members = np.flatnonzero(cluster_of_bin[bin_index] == cluster_id)
        if members.size >= min_cluster_size:
            clusters.append(members)
    clusters.sort(key=lambda m: -m.size)
    return clusters


@dataclass
class SqueezeConfig:
    """Squeeze hyper-parameters."""

    #: Absolute histogram bin width on the deviation-score scale.
    bin_width: float = 0.02
    #: Upper bound on histogram bins.
    max_bins: int = 60
    #: Moving-average window over the histogram.
    smoothing_window: int = 3
    #: A valley splits two modes when its density falls below this fraction
    #: of the smaller adjacent peak.
    valley_ratio: float = 0.5
    #: Minimum leaves per cluster (smaller clusters are noise).
    min_cluster_size: int = 2
    #: Candidate combinations considered per cuboid (sorted by descent score).
    max_candidates_per_cuboid: int = 20
    #: GPS improvement required to justify a deeper cuboid (Occam bias).
    occam_bonus: float = 1e-3
    epsilon: float = 1e-9


class Squeeze(Localizer):
    """Deviation clustering + per-cluster GPS search over all cuboids."""

    name = "Squeeze"

    def __init__(self, config: Optional[SqueezeConfig] = None):
        self.config = config if config is not None else SqueezeConfig()

    # -- per-cluster search -------------------------------------------------------

    def _search_cluster(
        self,
        dataset: FineGrainedDataset,
        cluster_mask: np.ndarray,
        engine: AggregationEngine,
    ) -> Tuple[List[AttributeCombination], float]:
        """Best-GPS combination set explaining one deviation cluster.

        Cuboid aggregation goes through the dataset's shared engine: the
        per-cuboid keys, supports and v/f sums are computed once and shared
        across *all* clusters — only the per-cluster membership counts are
        recomputed (one bincount over cached keys per cuboid).
        """
        cfg = self.config
        n_attrs = dataset.schema.n_attributes
        best_score = -np.inf
        best_set: List[AttributeCombination] = []
        best_layer = n_attrs + 1
        for layer in range(1, n_attrs + 1):
            for cuboid in cuboids_in_layer(n_attrs, layer):
                aggregate = engine.aggregate_with_labels(cuboid, cluster_mask)
                in_cluster = aggregate.anomalous_support
                relevant = np.flatnonzero(in_cluster > 0)
                if relevant.size == 0:
                    continue
                # Descent score: how exclusively a combination's leaves
                # belong to the cluster.
                descent = in_cluster[relevant] / aggregate.support[relevant]
                order = relevant[np.argsort(-descent)][: cfg.max_candidates_per_cuboid]
                selection = np.zeros(dataset.n_rows, dtype=bool)
                prefix: List[AttributeCombination] = []
                for row in order:
                    combination = aggregate.combination(int(row))
                    prefix.append(combination)
                    selection[engine.rows_of(combination)] = True
                    score = generalized_potential_score(
                        dataset, selection, cluster_mask, cfg.epsilon
                    )
                    better = score > best_score + cfg.occam_bonus
                    tie_but_coarser = (
                        abs(score - best_score) <= cfg.occam_bonus and layer < best_layer
                    )
                    if better or tie_but_coarser:
                        best_score = max(score, best_score)
                        best_set = list(prefix)
                        best_layer = layer
        return best_set, float(best_score)

    # -- public API -----------------------------------------------------------------

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        cfg = self.config
        anomalous_rows = np.flatnonzero(dataset.labels)
        if anomalous_rows.size == 0:
            return []
        scores = deviation_score(dataset.v, dataset.f, cfg.epsilon)
        clusters = cluster_deviations(
            scores[anomalous_rows],
            bin_width=cfg.bin_width,
            max_bins=cfg.max_bins,
            smoothing_window=cfg.smoothing_window,
            min_cluster_size=cfg.min_cluster_size,
            valley_ratio=cfg.valley_ratio,
        )
        engine = engine_for(dataset)
        ranked: List[AttributeCombination] = []
        seen = set()
        for members in clusters:
            cluster_mask = np.zeros(dataset.n_rows, dtype=bool)
            cluster_mask[anomalous_rows[members]] = True
            combinations, __ = self._search_cluster(dataset, cluster_mask, engine)
            for combination in combinations:
                if combination not in seen:
                    seen.add(combination)
                    ranked.append(combination)
        if k is not None:
            ranked = ranked[:k]
        return ranked
