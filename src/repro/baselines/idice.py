"""iDice (Lin et al., ICSE 2016) — isolation-power effective-combination mining.

iDice identifies the "effective combination" behind a burst of issue
reports by searching the attribute-combination lattice with three pruning
/ scoring devices, which we adapt to the snapshot localization setting:

* **Impact-based pruning** — a combination must cover a minimum share of
  the anomalous leaves; tiny combinations cannot explain the incident.
* **Change-detection pruning** — in iDice the issue count of a candidate
  must show a significant temporal change; in a single labelled snapshot
  the analogous test is that the candidate's anomaly ratio significantly
  exceeds the global ratio (otherwise its anomalies are just background).
* **Isolation power** — the entropy reduction achieved by splitting the
  leaf table into the combination and its complement::

      IP(S) = H(D) - (|S|/|D|) H(S) - (|D\\S|/|D|) H(D \\ S)

  where ``H`` is the binary entropy of the anomaly labels.  The effective
  combination maximizes IP.

The search is a layer-wise BFS that extends surviving combinations by one
``attribute=value`` at a time, with a beam bound so the worst case stays
finite — the ICSE paper itself reports (and the RAPMiner paper confirms)
that the method is by far the slowest of the cohort, which the benchmarks
here reproduce; the beam is set high enough that pruning, not the bound,
terminates the search on our workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.attribute import AttributeCombination
from ..core.classification_power import binary_entropy
from ..data.dataset import FineGrainedDataset
from .base import Localizer

__all__ = ["IDiceConfig", "IDice"]

#: A search node: sorted ((attr_index, element_code), ...) pairs.
NodeKey = Tuple[Tuple[int, int], ...]


@dataclass
class IDiceConfig:
    """iDice thresholds (adapted to the snapshot setting)."""

    #: Minimum fraction of all anomalous leaves a candidate must cover.
    min_impact_ratio: float = 0.05
    #: Candidate anomaly ratio must exceed global ratio by this factor.
    change_factor: float = 1.5
    #: Maximum combination length (search depth); defaults to full depth on
    #: the 4-attribute CDN schema.
    max_depth: int = 4
    #: Beam width per layer (safety bound; pruning normally binds first).
    beam_width: int = 400


class IDice(Localizer):
    """Isolation-power search over multi-dimensional combinations."""

    name = "iDice"

    def __init__(self, config: Optional[IDiceConfig] = None):
        self.config = config if config is not None else IDiceConfig()

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        cfg = self.config
        n = dataset.n_rows
        n_anomalous = dataset.n_anomalous
        if n == 0 or n_anomalous == 0:
            return []
        labels = dataset.labels
        global_ratio = n_anomalous / n
        h_total = binary_entropy(global_ratio)

        def isolation_power(mask: np.ndarray) -> float:
            n_s = int(mask.sum())
            if n_s == 0 or n_s == n:
                return 0.0
            anom_s = int(labels[mask].sum())
            h_s = binary_entropy(anom_s / n_s)
            anom_c = n_anomalous - anom_s
            n_c = n - n_s
            h_c = binary_entropy(anom_c / n_c)
            return h_total - (n_s / n) * h_s - (n_c / n) * h_c

        def survives_pruning(mask: np.ndarray) -> bool:
            anom_s = int(labels[mask].sum())
            if anom_s < cfg.min_impact_ratio * n_anomalous:
                return False  # impact pruning
            n_s = int(mask.sum())
            if n_s == 0:
                return False
            ratio = anom_s / n_s
            return ratio > cfg.change_factor * global_ratio  # change detection

        # Layer 1 seeds: every attribute=value pair present in the data.
        frontier: Dict[NodeKey, np.ndarray] = {}
        scores: Dict[NodeKey, float] = {}
        for attr_index in range(dataset.schema.n_attributes):
            column = dataset.codes[:, attr_index]
            for code in np.unique(column):
                mask = column == code
                if survives_pruning(mask):
                    key: NodeKey = ((attr_index, int(code)),)
                    frontier[key] = mask
                    scores[key] = isolation_power(mask)

        all_scores: Dict[NodeKey, float] = dict(scores)
        depth = min(cfg.max_depth, dataset.schema.n_attributes)
        for __ in range(1, depth):
            ranked_frontier = sorted(frontier, key=lambda key: scores[key], reverse=True)
            ranked_frontier = ranked_frontier[: cfg.beam_width]
            next_frontier: Dict[NodeKey, np.ndarray] = {}
            for key in ranked_frontier:
                parent_mask = frontier[key]
                used = {attr for attr, __ in key}
                for attr_index in range(dataset.schema.n_attributes):
                    if attr_index in used:
                        continue
                    column = dataset.codes[:, attr_index]
                    for code in np.unique(column[parent_mask]):
                        child_key: NodeKey = tuple(
                            sorted(key + ((attr_index, int(code)),))
                        )
                        if child_key in all_scores or child_key in next_frontier:
                            continue
                        mask = parent_mask & (column == code)
                        if not survives_pruning(mask):
                            continue
                        next_frontier[child_key] = mask
            frontier = next_frontier
            scores = {key: isolation_power(mask) for key, mask in frontier.items()}
            all_scores.update(scores)

        ranked = sorted(
            all_scores.items(), key=lambda item: (-item[1], len(item[0]), item[0])
        )
        results: List[AttributeCombination] = []
        for key, __ in ranked:
            values: List[Optional[str]] = [None] * dataset.schema.n_attributes
            for attr_index, code in key:
                values[attr_index] = dataset.schema.decode(attr_index, code)
            results.append(AttributeCombination(values))
            if k is not None and len(results) >= k:
                break
        return results
