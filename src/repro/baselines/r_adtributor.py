"""Recursive Adtributor (R-Adtributor) — extension baseline.

Adtributor's one-dimensional assumption is its documented weakness
(Fig. 8(a): zero F1 on every multi-dimensional group).  The recursive
variant — used as a comparison method in the Squeeze line of work —
addresses it by re-running Adtributor *inside* each explanatory element:

1. run the per-attribute explanatory-power/surprise selection on the
   current sub-cube (initially the whole table);
2. take the most surprising attribute's element set; for each element,
   narrow the working combination by that element;
3. if the narrowed combination is already *pure* (its anomaly confidence
   clears ``purity_threshold``) or the recursion budget is exhausted,
   emit it; otherwise recurse into its sub-cube over the remaining
   attributes.

Candidates are ranked by (layer ascending, surprise descending): an
explanation found at a shallower depth is coarser and preferred, matching
the RAP notion.  This keeps Adtributor's machinery (EP + JS-divergence
surprise over additive aggregates) while reaching multi-dimensional
combinations; the purity check uses the leaf labels, which every method
in this repository receives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.attribute import AttributeCombination
from ..core.cuboid import Cuboid
from ..data.dataset import FineGrainedDataset
from .adtributor import _surprise
from .base import Localizer

__all__ = ["RecursiveAdtributorConfig", "RecursiveAdtributor"]


@dataclass
class RecursiveAdtributorConfig:
    """Thresholds of the recursive search."""

    #: Minimum per-element explanatory power (as in Adtributor).
    t_ep: float = 0.05
    #: Cumulative-EP completion threshold per attribute.
    tep: float = 0.67
    #: Elements kept per attribute per level (succinctness).
    max_elements_per_attribute: int = 3
    #: Maximum combination depth (recursion levels).
    max_depth: int = 3
    #: Anomaly confidence at which a combination is accepted as-is.
    purity_threshold: float = 0.8


class RecursiveAdtributor(Localizer):
    """Adtributor applied recursively inside each explanatory element."""

    name = "R-Adtributor"

    def __init__(self, config: Optional[RecursiveAdtributorConfig] = None):
        self.config = config if config is not None else RecursiveAdtributorConfig()

    def _best_attribute_elements(
        self,
        dataset: FineGrainedDataset,
        row_mask: np.ndarray,
        available: List[int],
    ) -> Tuple[Optional[int], List[Tuple[float, int]]]:
        """Adtributor's per-attribute selection on the masked sub-cube.

        Returns the winning attribute index and its ``(surprise, code)``
        element picks (empty when nothing explains the sub-cube's change).
        """
        cfg = self.config
        v = dataset.v[row_mask]
        f = dataset.f[row_mask]
        v_total = float(v.sum())
        f_total = float(f.sum())
        change = v_total - f_total
        if change == 0.0:
            return None, []
        best: Tuple[float, Optional[int], List[Tuple[float, int]]] = (0.0, None, [])
        codes = dataset.codes[row_mask]
        for attr_index in available:
            column = codes[:, attr_index]
            size = dataset.schema.size(attr_index)
            v_sum = np.bincount(column, weights=v, minlength=size)
            f_sum = np.bincount(column, weights=f, minlength=size)
            entries = []
            for code in np.flatnonzero((v_sum > 0) | (f_sum > 0)):
                p = f_sum[code] / f_total if f_total > 0.0 else 0.0
                q = v_sum[code] / v_total if v_total > 0.0 else 0.0
                ep = (v_sum[code] - f_sum[code]) / change
                entries.append((_surprise(p, q), ep, int(code)))
            entries.sort(key=lambda e: e[0], reverse=True)
            cumulative_ep = 0.0
            attribute_surprise = 0.0
            selected: List[Tuple[float, int]] = []
            for surprise, ep, code in entries:
                if ep <= cfg.t_ep:
                    continue
                selected.append((surprise, code))
                cumulative_ep += ep
                attribute_surprise += surprise
                if cumulative_ep > cfg.tep or len(selected) >= cfg.max_elements_per_attribute:
                    break
            if selected and cumulative_ep > cfg.tep and attribute_surprise > best[0]:
                best = (attribute_surprise, attr_index, selected)
        return best[1], best[2]

    def _recurse(
        self,
        dataset: FineGrainedDataset,
        values: List[Optional[str]],
        row_mask: np.ndarray,
        available: List[int],
        depth: int,
        results: List[Tuple[int, float, AttributeCombination]],
    ) -> None:
        attr_index, selections = self._best_attribute_elements(dataset, row_mask, available)
        if attr_index is None:
            return
        remaining = [a for a in available if a != attr_index]
        for surprise, code in selections:
            child_values = list(values)
            child_values[attr_index] = dataset.schema.decode(attr_index, code)
            combination = AttributeCombination(child_values)
            child_mask = row_mask & (dataset.codes[:, attr_index] == code)
            support = int(child_mask.sum())
            if support == 0:
                continue
            confidence = float(dataset.labels[child_mask].sum()) / support
            pure = confidence > self.config.purity_threshold
            if pure or depth >= self.config.max_depth or not remaining:
                results.append((combination.layer, surprise, combination))
            else:
                self._recurse(
                    dataset, child_values, child_mask, remaining, depth + 1, results
                )

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        if dataset.n_rows == 0:
            return []
        results: List[Tuple[int, float, AttributeCombination]] = []
        self._recurse(
            dataset,
            [None] * dataset.schema.n_attributes,
            np.ones(dataset.n_rows, dtype=bool),
            list(range(dataset.schema.n_attributes)),
            1,
            results,
        )
        results.sort(key=lambda r: (r[0], -r[1], r[2].sort_key()))
        seen = set()
        ranked: List[AttributeCombination] = []
        for __, __, combination in results:
            if combination not in seen:
                seen.add(combination)
                ranked.append(combination)
        if k is not None:
            ranked = ranked[:k]
        return ranked
