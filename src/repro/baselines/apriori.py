"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).

The paper notes that association-rule localization can be realized with
either Apriori or FP-growth and that "the efficiency of different
implementation methods varies greatly" — this module provides the Apriori
side of that comparison (see ``benchmarks/test_assoc_backends.py``).

Classic level-wise algorithm: candidates of size ``k`` are joined from
frequent itemsets of size ``k - 1``, pruned by the downward-closure
property, and counted against the transaction list.  Results are
identical to :func:`repro.baselines.fpgrowth.fpgrowth` (property-tested);
only the work profile differs — Apriori re-scans the transactions once
per level, which is what makes FP-growth the preferred backend.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["apriori"]

Item = Hashable
Transaction = Sequence[Item]


def _count_candidates(
    transactions: List[FrozenSet[Item]], candidates: Set[FrozenSet[Item]]
) -> Dict[FrozenSet[Item], int]:
    counts: Dict[FrozenSet[Item], int] = defaultdict(int)
    for transaction in transactions:
        for candidate in candidates:
            if candidate <= transaction:
                counts[candidate] += 1
    return counts


def _join_level(frequent: Set[FrozenSet[Item]], size: int) -> Set[FrozenSet[Item]]:
    """Candidate generation: join (k-1)-itemsets sharing a (k-2)-prefix,
    then prune candidates with an infrequent subset (downward closure)."""
    ordered = sorted(frequent, key=lambda s: sorted(map(repr, s)))
    candidates: Set[FrozenSet[Item]] = set()
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            union = a | b
            if len(union) != size:
                continue
            if all(union - {item} in frequent for item in union):
                candidates.add(union)
    return candidates


def apriori(
    transactions: Iterable[Transaction],
    min_support: int,
    max_length: Optional[int] = None,
) -> Dict[FrozenSet[Item], int]:
    """Mine all frequent itemsets with absolute support >= *min_support*.

    Same contract (and output) as :func:`repro.baselines.fpgrowth.fpgrowth`.
    """
    if min_support < 1:
        raise ValueError("min_support must be at least 1")
    materialized = [frozenset(t) for t in transactions]

    # Level 1: frequent single items.
    item_counts: Dict[FrozenSet[Item], int] = defaultdict(int)
    for transaction in materialized:
        for item in transaction:
            item_counts[frozenset([item])] += 1
    frequent_level = {
        itemset: count for itemset, count in item_counts.items() if count >= min_support
    }
    results: Dict[FrozenSet[Item], int] = dict(frequent_level)

    size = 2
    while frequent_level and (max_length is None or size <= max_length):
        candidates = _join_level(set(frequent_level), size)
        if not candidates:
            break
        counts = _count_candidates(materialized, candidates)
        frequent_level = {
            itemset: count for itemset, count in counts.items() if count >= min_support
        }
        results.update(frequent_level)
        size += 1
    return results
