"""HotSpot (Sun et al., IEEE Access 2018) — MCTS with ripple-effect scores.

HotSpot assumes all root causes of one anomaly live in a *single* cuboid
and that descendants of a root cause share its anomaly magnitude (the
ripple effect).  For every cuboid it runs a Monte Carlo Tree Search over
*sets* of the cuboid's attribute combinations, scoring a set by its
potential score — how well the actual leaf values match the ripple-effect
prediction when the set is hypothesized to be the root cause (we reuse the
generalized form also used by Squeeze).  The best-scoring set over all
cuboids is returned.

Included as an extension: the RAPMiner paper discusses HotSpot as the
direct ancestor of Squeeze but benchmarks Squeeze instead; having both lets
the ablation benches compare MCTS search against RAPMiner's BFS.

MCTS follows the paper's skeleton: UCB1 selection, single-action expansion,
random rollout, and *max* (not mean) backpropagation, with an iteration
budget per cuboid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..core.attribute import AttributeCombination
from ..core.cuboid import cuboids_in_layer
from ..core.engine import engine_for
from ..data.dataset import FineGrainedDataset
from .base import Localizer
from .squeeze import generalized_potential_score

__all__ = ["HotSpotConfig", "HotSpot"]

State = FrozenSet[int]


@dataclass
class HotSpotConfig:
    """Search budget and scoring knobs."""

    #: MCTS iterations per cuboid.
    iterations_per_cuboid: int = 60
    #: Candidate combinations per cuboid (top by anomalous support).
    max_candidates_per_cuboid: int = 12
    #: Largest root-cause set size considered.
    max_set_size: int = 3
    #: UCB1 exploration constant.
    exploration: float = math.sqrt(2.0)
    #: Stop a cuboid's search early at this potential score.
    target_score: float = 0.99
    #: Deepest cuboid layer searched (None = all).
    max_layer: Optional[int] = None
    seed: int = 0


class _Node:
    """One MCTS node: a set of candidate indices with UCB statistics."""

    __slots__ = ("state", "visits", "best_q", "children", "untried")

    def __init__(self, state: State, actions: List[int]):
        self.state = state
        self.visits = 0
        self.best_q = -math.inf
        self.children: Dict[int, "_Node"] = {}
        self.untried = [a for a in actions if a not in state]


class HotSpot(Localizer):
    """Per-cuboid MCTS maximizing the ripple-effect potential score."""

    name = "HotSpot"

    def __init__(self, config: Optional[HotSpotConfig] = None):
        self.config = config if config is not None else HotSpotConfig()

    def _score_state(
        self,
        dataset: FineGrainedDataset,
        masks: List[np.ndarray],
        state: State,
    ) -> float:
        if not state:
            return -1.0
        selection = np.zeros(dataset.n_rows, dtype=bool)
        for index in state:
            selection |= masks[index]
        # Potential score shares the generalized ripple form with Squeeze;
        # HotSpot treats every anomalous leaf as the abnormal set.
        return generalized_potential_score(dataset, selection, dataset.labels)

    def _search_cuboid(
        self,
        dataset: FineGrainedDataset,
        combinations: List[AttributeCombination],
        masks: List[np.ndarray],
        rng: np.random.Generator,
    ) -> Tuple[State, float]:
        """MCTS over subsets of one cuboid's candidate combinations."""
        cfg = self.config
        actions = list(range(len(combinations)))
        root = _Node(frozenset(), actions)
        nodes: Dict[State, _Node] = {root.state: root}
        best_state: State = frozenset()
        best_score = -math.inf

        def evaluate(state: State) -> float:
            nonlocal best_state, best_score
            score = self._score_state(dataset, masks, state)
            if score > best_score:
                best_score = score
                best_state = state
            return score

        for __ in range(cfg.iterations_per_cuboid):
            node = root
            path = [node]
            # Selection: descend fully-expanded nodes by UCB1.
            while not node.untried and node.children and len(node.state) < cfg.max_set_size:
                total = math.log(max(node.visits, 1))
                node = max(
                    node.children.values(),
                    key=lambda child: (
                        (child.best_q if child.visits else 0.0)
                        + cfg.exploration * math.sqrt(total / (child.visits + 1))
                    ),
                )
                path.append(node)
            # Expansion.
            if node.untried and len(node.state) < cfg.max_set_size:
                action = node.untried.pop(int(rng.integers(len(node.untried))))
                child_state = frozenset(node.state | {action})
                child = nodes.get(child_state)
                if child is None:
                    child = _Node(child_state, actions)
                    nodes[child_state] = child
                node.children[action] = child
                node = child
                path.append(node)
            # Rollout: random completion up to max_set_size.
            rollout_state = set(node.state)
            free = [a for a in actions if a not in rollout_state]
            rng.shuffle(free)
            reward = evaluate(frozenset(rollout_state)) if rollout_state else -1.0
            for action in free[: max(0, cfg.max_set_size - len(rollout_state))]:
                rollout_state.add(action)
                reward = max(reward, evaluate(frozenset(rollout_state)))
            # Backpropagation with max-Q.
            for visited in path:
                visited.visits += 1
                visited.best_q = max(visited.best_q, reward)
            if best_score >= cfg.target_score:
                break
        return best_state, best_score

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        cfg = self.config
        if dataset.n_anomalous == 0:
            return []
        rng = np.random.default_rng(cfg.seed)
        n_attrs = dataset.schema.n_attributes
        depth = n_attrs if cfg.max_layer is None else min(cfg.max_layer, n_attrs)

        engine = engine_for(dataset)
        overall_best: Tuple[float, int, List[AttributeCombination]] = (-math.inf, 0, [])
        for layer in range(1, depth + 1):
            for cuboid in cuboids_in_layer(n_attrs, layer):
                aggregate = engine.aggregate(cuboid)
                anomalous = aggregate.anomalous_support
                relevant = np.flatnonzero(anomalous > 0)
                if relevant.size == 0:
                    continue
                order = relevant[np.argsort(-anomalous[relevant])]
                order = order[: cfg.max_candidates_per_cuboid]
                combinations = [aggregate.combination(int(row)) for row in order]
                masks = []
                for combination in combinations:
                    mask = np.zeros(dataset.n_rows, dtype=bool)
                    mask[engine.rows_of(combination)] = True
                    masks.append(mask)
                state, score = self._search_cuboid(dataset, combinations, masks, rng)
                # Occam bias: prefer the shallower cuboid on (near-)ties.
                current = (score, -layer, [combinations[i] for i in sorted(state)])
                if (current[0], current[1]) > (overall_best[0] + 1e-6, overall_best[1]):
                    overall_best = current
                elif abs(current[0] - overall_best[0]) <= 1e-6 and current[1] > overall_best[1]:
                    overall_best = current

        ranked = overall_best[2]
        if k is not None:
            ranked = ranked[:k]
        return ranked
