"""FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).

A from-scratch implementation of the FP-tree and the recursive FP-growth
procedure, used by the association-rule localizer
(:mod:`repro.baselines.assoc_rules`) that the paper benchmarks as the
strongest non-RAPMiner method on RAPMD.

The implementation is generic over hashable item types.  Transactions are
compressed into a prefix tree whose nodes are chained per item through a
header table; frequent itemsets are mined by recursively building
conditional trees for each item, from the least frequent suffix upwards.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FPNode", "FPTree", "fpgrowth"]

Item = Hashable
Transaction = Sequence[Item]


class FPNode:
    """One prefix-tree node: an item with a count, parent and children."""

    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Optional[Item], parent: Optional["FPNode"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[Item, "FPNode"] = {}
        #: Next node carrying the same item (the header-table chain).
        self.link: Optional["FPNode"] = None

    def __repr__(self) -> str:
        return f"FPNode(item={self.item!r}, count={self.count})"


class FPTree:
    """FP-tree with a header table of per-item node chains."""

    def __init__(self) -> None:
        self.root = FPNode(None, None)
        self.header: Dict[Item, FPNode] = {}
        self._header_tail: Dict[Item, FPNode] = {}
        self.item_counts: Dict[Item, int] = defaultdict(int)

    def insert(self, transaction: Transaction, count: int = 1) -> None:
        """Insert an (already filtered and ordered) transaction."""
        node = self.root
        for item in transaction:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                tail = self._header_tail.get(item)
                if tail is None:
                    self.header[item] = child
                else:
                    tail.link = child
                self._header_tail[item] = child
            child.count += count
            self.item_counts[item] += count
            node = child

    def nodes_of(self, item: Item) -> Iterable[FPNode]:
        """Iterate every node of *item* via the header chain."""
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.link

    def prefix_paths(self, item: Item) -> List[Tuple[List[Item], int]]:
        """Conditional pattern base: (path-to-root items, count) per node."""
        paths: List[Tuple[List[Item], int]] = []
        for node in self.nodes_of(item):
            path: List[Item] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            path.reverse()
            if path:
                paths.append((path, node.count))
        return paths

    @property
    def is_empty(self) -> bool:
        return not self.root.children

    def is_single_path(self) -> Optional[List[Tuple[Item, int]]]:
        """The (item, count) chain when the tree is one path, else ``None``."""
        path: List[Tuple[Item, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            path.append((node.item, node.count))
        return path


def _build_tree(
    transactions: Iterable[Tuple[Transaction, int]], min_support: int
) -> Tuple[FPTree, Dict[Item, int]]:
    """Count items, filter by support, order transactions, build the tree."""
    counts: Dict[Item, int] = defaultdict(int)
    materialized: List[Tuple[Transaction, int]] = []
    for transaction, count in transactions:
        materialized.append((transaction, count))
        for item in set(transaction):
            counts[item] += count
    frequent = {item: c for item, c in counts.items() if c >= min_support}
    # Deterministic order: frequency descending, then item repr.
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent, key=lambda i: (-frequent[i], repr(i)))
        )
    }
    tree = FPTree()
    for transaction, count in materialized:
        filtered = sorted(
            {item for item in transaction if item in frequent}, key=order.__getitem__
        )
        if filtered:
            tree.insert(filtered, count)
    return tree, frequent


def _mine(
    tree: FPTree,
    min_support: int,
    suffix: FrozenSet[Item],
    results: Dict[FrozenSet[Item], int],
    max_length: Optional[int],
) -> None:
    single_path = tree.is_single_path()
    if single_path is not None:
        # Every subset of a single path is frequent with the path-minimum count.
        import itertools

        for r in range(1, len(single_path) + 1):
            for subset in itertools.combinations(single_path, r):
                itemset = suffix | frozenset(item for item, __ in subset)
                if max_length is not None and len(itemset) > max_length:
                    continue
                support = min(count for __, count in subset)
                if support >= min_support:
                    existing = results.get(itemset, 0)
                    results[itemset] = max(existing, support)
        return

    items = sorted(tree.item_counts, key=lambda i: (tree.item_counts[i], repr(i)))
    for item in items:
        support = tree.item_counts[item]
        if support < min_support:
            continue
        itemset = suffix | {item}
        if max_length is not None and len(itemset) > max_length:
            continue
        results[itemset] = support
        if max_length is not None and len(itemset) == max_length:
            continue
        conditional = _build_tree(
            ((path, count) for path, count in tree.prefix_paths(item)), min_support
        )[0]
        if not conditional.is_empty:
            _mine(conditional, min_support, itemset, results, max_length)


def fpgrowth(
    transactions: Iterable[Transaction],
    min_support: int,
    max_length: Optional[int] = None,
) -> Dict[FrozenSet[Item], int]:
    """Mine all frequent itemsets with absolute support >= *min_support*.

    Parameters
    ----------
    transactions:
        Iterable of item sequences (duplicates within one transaction are
        collapsed).
    min_support:
        Absolute support threshold (>= 1).
    max_length:
        Optional bound on itemset size.

    Returns
    -------
    Mapping from frozen itemset to its support count.
    """
    if min_support < 1:
        raise ValueError("min_support must be at least 1")
    tree, __ = _build_tree(((t, 1) for t in transactions), min_support)
    results: Dict[FrozenSet[Item], int] = {}
    if not tree.is_empty:
        _mine(tree, min_support, frozenset(), results, max_length)
    return results
