"""Command-line interface: generate datasets, localize, evaluate, reproduce.

Subcommands
-----------
``repro generate``
    Generate a benchmark (``rapmd`` or ``squeeze``) and save it as a JSON
    case bundle replayable by the other subcommands.
``repro localize``
    Run one localizer over a saved bundle (or a single case of it) and
    print the ranked patterns next to the ground truth.  Pass ``--trace
    PATH`` to capture the run's spans and engine counters as JSONL (see
    ``docs/observability.md``).
``repro batch-localize``
    Run one localizer over a saved bundle through the process-pool batch
    layer (:mod:`repro.parallel`): sharded cases, shared-memory leaf
    tables, warm per-worker engines.  Output is bit-identical to the
    serial ``localize`` path; the command reports throughput.
``repro fleet-localize``
    Serve a saved bundle through the sharded multi-tenant fleet
    (:mod:`repro.fleet`): layout-keyed warm-engine shards, per-tenant
    quotas, work stealing, optional segment-log persistence
    (``--store``), store replay verification (``--replay``) and
    engine warm starts from a previous run's log (``--warm-start``).
    Output is bit-identical to serial regardless of steal interleaving.
``repro stream-localize``
    Replay a saved bundle as consecutive ticks of one stream through the
    delta-patching :class:`~repro.core.incremental.StreamingRAPMiner`:
    per-tick latency, patched-vs-cold path and stop reasons, plus a
    session summary.  ``--verify`` re-runs every tick statelessly and
    asserts bit-identical candidates.  ``--serve-metrics HOST:PORT``
    serves ``/metrics``, ``/healthz``, ``/readyz``, ``/debug/spans`` and
    ``/debug/profile`` live for the lifetime of the replay (see
    ``docs/observability.md``).
``repro serve``
    Run the network serving front door (:mod:`repro.serving`) over a
    warm-engine fleet: per-tick localization requests over HTTP JSON
    (``POST /localize``) and the RPSV binary frame stream, with bounded
    admission (queue caps, per-tenant shares, typed shed responses, a
    degraded band under congestion) and the telemetry plane
    (``/metrics``, ``/healthz``, ``/readyz``, ``/debug/*``) mounted on
    the same port.  See ``docs/serving.md`` for the protocol.
``repro profile``
    Span-family self-time profile (self vs child time, top-N table) of a
    JSONL trace captured with ``--trace``.
``repro evaluate``
    Run a method cohort over a saved bundle and print the F1 / RC@k and
    running-time tables.  ``--workers N`` shards each method's run.
``repro reproduce``
    Regenerate one of the paper's tables/figures end to end
    (``table4``, ``table6``, ``fig8a``, ``fig8b``, ``fig9a``, ``fig9b``,
    ``fig10a``, ``fig10b``) at the chosen preset scale.

Examples
--------
::

    repro generate rapmd --out rapmd.npz --scale fast --seed 1
    repro localize --cases rapmd.npz --method RAPMiner --k 3
    repro batch-localize --cases rapmd.npz --workers 4 --k 3
    repro fleet-localize --cases rapmd.npz --shards 2 --store fleet.log
    repro fleet-localize --replay fleet.log
    repro stream-localize --cases rapmd.npz --crossover auto --verify
    repro stream-localize --cases rapmd.npz --serve-metrics 127.0.0.1:9464
    repro serve --port 8765 --shards 2 --tenants edge-eu,edge-us
    repro profile --trace run.jsonl --top 10
    repro evaluate --cases rapmd.npz --protocol rc --workers 2
    repro reproduce fig8b --scale paper
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .baselines import (
    Adtributor,
    AssociationRuleLocalizer,
    HotSpot,
    IDice,
    Squeeze,
)
from .core.config import RAPMinerConfig
from .core.miner import RAPMiner
from .data.io import load_cases, save_cases
from .experiments.figures import (
    figure8a,
    figure8b,
    figure9a,
    figure9b,
    figure10a,
    figure10b,
    run_rapmd_comparison,
    run_squeeze_comparison,
)
from .experiments.presets import fast_preset, paper_preset
from .experiments.reporting import (
    format_seconds,
    render_series_table,
    render_table,
)
from .experiments.runner import run_cases
from .experiments.tables import table4, table6

__all__ = ["main", "build_parser"]

GROUP_ORDER = [(d, r) for d in (1, 2, 3) for r in (1, 2, 3)]


def _method_registry() -> Dict[str, object]:
    return {
        "RAPMiner": RAPMiner(),
        "Squeeze": Squeeze(),
        "FP-growth": AssociationRuleLocalizer(),
        "Adtributor": Adtributor(),
        "iDice": IDice(),
        "HotSpot": HotSpot(),
    }


def _resolve_methods(names: Optional[str]):
    registry = _method_registry()
    if not names:
        return list(registry.values())[:5]  # the paper cohort
    resolved = []
    for name in names.split(","):
        name = name.strip()
        if name not in registry:
            raise SystemExit(
                f"unknown method {name!r}; choose from {', '.join(registry)}"
            )
        resolved.append(registry[name])
    return resolved


def _preset(scale: str, seed: int):
    if scale == "paper":
        return paper_preset(seed)
    return fast_preset(seed)


def _apply_resilience(method, deadline_ms: Optional[float], degrade: bool):
    """Wire ``--deadline-ms`` / ``--degrade`` into a deadline-aware method.

    Only methods carrying a config with a ``deadline_ms`` knob (RAPMiner)
    honor the flags; asking for them on a baseline is a usage error, not
    a silent no-op.
    """
    if deadline_ms is None and not degrade:
        return method
    from dataclasses import replace

    from .resilience import DegradationPolicy

    config = getattr(method, "config", None)
    if config is None or not hasattr(config, "deadline_ms"):
        name = getattr(method, "name", type(method).__name__)
        raise SystemExit(
            f"--deadline-ms/--degrade require a deadline-aware method "
            f"(RAPMiner), got {name}"
        )
    method.config = replace(
        config,
        deadline_ms=deadline_ms,
        degradation=DegradationPolicy() if degrade else config.degradation,
    )
    return method


def _apply_backend(method, backend: Optional[str]):
    """Wire ``--backend`` into a method carrying a ``backend`` config knob.

    Only RAPMiner-family methods aggregate through the kernel backends;
    asking for a backend on a baseline is a usage error, not a silent
    no-op.
    """
    if backend is None:
        return method
    from dataclasses import replace

    config = getattr(method, "config", None)
    if config is None or not hasattr(config, "backend"):
        name = getattr(method, "name", type(method).__name__)
        raise SystemExit(
            f"--backend requires a backend-aware method (RAPMiner), got {name}"
        )
    method.config = replace(config, backend=backend)
    return method


# -- subcommand handlers -----------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    from .data.summary import summarize_cases

    preset = _preset(args.scale, args.seed)
    if args.dataset == "rapmd":
        cases = preset.rapmd_cases()
    else:
        cases = preset.squeeze_cases()
    save_cases(cases, args.out)
    print(f"wrote {len(cases)} cases to {args.out}")
    print(summarize_cases(cases).render())
    return 0


def _cmd_localize(args: argparse.Namespace) -> int:
    if args.trace:
        from . import obs
        from .obs import report as obs_report

        with obs.capture(trace_path=args.trace) as collector:
            code = _run_localize(args)
        print(obs_report.render_summary(collector))
        print(
            f"trace: wrote {len(collector.spans)} spans and "
            f"{len(collector.metrics.collect())} metric series to {args.trace}"
        )
        return code
    return _run_localize(args)


def _run_localize(args: argparse.Namespace) -> int:
    cases = load_cases(args.cases)
    if args.case_id is not None:
        cases = [c for c in cases if c.case_id == args.case_id]
        if not cases:
            raise SystemExit(f"no case with id {args.case_id!r}")
    method = _apply_backend(
        _apply_resilience(
            _resolve_methods(args.method)[0], args.deadline_ms, args.degrade
        ),
        args.backend,
    )
    runner = getattr(method, "run", None)
    for case in cases:
        k = args.k if args.k is not None else len(case.true_raps)
        note = ""
        if callable(runner):
            result = runner(case.dataset, k)
            predicted = result.patterns
            stats = getattr(result, "stats", None)
            stop_reason = getattr(stats, "stop_reason", None)
            tier = getattr(stats, "degradation_tier", None)
            if stop_reason == "deadline" or tier is not None:
                note = f"  [stop={stop_reason or 'n/a'} tier={tier or 'full'}]"
        else:
            predicted = method.localize(case.dataset, k)
        hits = sum(1 for p in predicted if p in case.true_raps)
        print(f"{case.case_id}  ({method.name}, k={k}){note}")
        print(f"  truth:     {', '.join(str(r) for r in case.true_raps)}")
        print(f"  predicted: {', '.join(str(p) for p in predicted) or '(none)'}")
        print(f"  hits: {hits}/{len(case.true_raps)}")
    return 0


def _cmd_batch_localize(args: argparse.Namespace) -> int:
    import time as _time

    from .parallel import BatchConfig, batch_localize

    cases = load_cases(args.cases)
    method = _apply_backend(
        _apply_resilience(
            _resolve_methods(args.method)[0], args.deadline_ms, args.degrade
        ),
        args.backend,
    )
    config = BatchConfig(
        n_workers=args.workers,
        transport=args.transport,
        chunk_size=args.chunk_size,
        warm_engines=not args.cold_engines,
        mode=args.mode,
    )
    execution, worker_vectorized = config.resolve_mode()
    resolved = "sharded+vectorized" if worker_vectorized else execution
    start = _time.perf_counter()
    evaluation = batch_localize(
        method, cases, k=args.k, k_from_truth=args.k is None, config=config
    )
    wall = _time.perf_counter() - start
    for result in evaluation.results:
        hits = sum(1 for p in result.predicted if p in result.true_raps)
        suffix = f"  ERROR {result.error}" if result.error else ""
        print(
            f"{result.case_id}  hits {hits}/{len(result.true_raps)}  "
            f"{result.seconds * 1e3:.1f} ms{suffix}"
        )
    failures = evaluation.failures()
    if failures:
        print(f"\n{len(failures)} case(s) returned error records (shard failed twice)")
    in_worker = sum(r.seconds for r in evaluation.results)
    throughput = len(cases) / wall if wall > 0 else float("inf")
    print(
        f"\n{len(cases)} cases via {config.n_workers} worker(s), "
        f"mode={resolved}, transport={config.transport}: {wall:.3f} s wall "
        f"({in_worker:.3f} s in-worker), {throughput:.1f} cases/s"
    )
    return 0


def _cmd_fleet_localize(args: argparse.Namespace) -> int:
    import time as _time

    from .fleet import FleetConfig, FleetStore, FleetSupervisor, replay_store

    method = _apply_backend(
        _apply_resilience(
            _resolve_methods(args.method)[0], args.deadline_ms, args.degrade
        ),
        args.backend,
    )
    config = FleetConfig(
        shards_per_layout=args.shards,
        steal=not args.no_steal,
        microbatch=args.microbatch,
        tenant_quota=args.tenant_quota,
        k=args.k,
        k_from_truth=args.k is None,
        backend=args.backend,
    )

    if args.replay:
        start = _time.perf_counter()
        evaluation = replay_store(method, args.replay, config=config)
        wall = _time.perf_counter() - start
        with FleetStore(args.replay, mode="r") as persisted_store:
            persisted = {row["seq"]: row for row in persisted_store.results()}
            case_seqs = [seq for seq, __, __ in persisted_store.cases()]
        # Join persisted rows to replayed results by the original seq —
        # a log from a run that crashed mid-drain holds fewer result rows
        # than cases, and a positional zip would silently skip the tail.
        mismatches = []
        missing = []
        for seq, result in zip(case_seqs, evaluation.results):
            row = persisted.get(seq)
            if row is None:
                missing.append(result.case_id)
            elif row["predicted"] != [str(p) for p in result.predicted]:
                mismatches.append(result.case_id)
        if not mismatches and not missing:
            verdict = "bit-exact"
        else:
            parts = []
            if mismatches:
                parts.append(f"{len(mismatches)} case(s) DIVERGED")
            if missing:
                parts.append(f"{len(missing)} case(s) had no persisted result")
            verdict = ", ".join(parts)
        print(
            f"replayed {len(evaluation.results)} case(s) from {args.replay} "
            f"in {wall:.3f} s: {verdict}"
        )
        for case_id in mismatches:
            print(f"  diverged: {case_id}")
        for case_id in missing:
            print(f"  no persisted result: {case_id}")
        return 1 if mismatches or missing else 0

    if not args.cases:
        raise SystemExit("fleet-localize needs --cases (or --replay STORE)")
    cases = load_cases(args.cases)
    store = FleetStore(args.store) if args.store else None
    supervisor = FleetSupervisor(method, config=config, store=store)
    try:
        if args.warm_start:
            with FleetStore(args.warm_start, mode="r") as warm:
                primed = supervisor.warm_start(warm)
            print(f"warm-started {primed} tenant(s) from {args.warm_start}")
        start = _time.perf_counter()
        for case in cases:
            supervisor.submit(case)
        evaluation = supervisor.drain()
        wall = _time.perf_counter() - start
    finally:
        if store is not None:
            store.close()
    for result in evaluation.results:
        hits = sum(1 for p in result.predicted if p in result.true_raps)
        suffix = f"  ERROR {result.error}" if result.error else ""
        print(
            f"{result.case_id}  hits {hits}/{len(result.true_raps)}  "
            f"{result.seconds * 1e3:.1f} ms{suffix}"
        )
    failures = evaluation.failures()
    if failures:
        print(f"\n{len(failures)} case(s) returned error records")
    scheduler = supervisor.scheduler
    throughput = len(cases) / wall if wall > 0 else float("inf")
    print(
        f"\n{len(cases)} cases over {len(scheduler.shards)} shard(s) "
        f"({config.shards_per_layout}/layout, steal={'on' if config.steal else 'off'}): "
        f"{wall:.3f} s wall, {throughput:.1f} cases/s, "
        f"{scheduler.total_steals} steal(s) moved {scheduler.total_stolen} case(s)"
    )
    return 0


def _parse_serve_address(value: str):
    """``HOST:PORT`` (or bare ``PORT``) for ``--serve-metrics``."""
    host, sep, port_text = value.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", value
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(
            f"--serve-metrics expects HOST:PORT or PORT, got {value!r}"
        )
    return host, port


def _cmd_stream_localize(args: argparse.Namespace) -> int:
    from .core.delta import DeltaConfig
    from .core.incremental import StreamingRAPMiner
    from .service.stream import replay_stream

    cases = load_cases(args.cases)
    if args.crossover == "auto":
        crossover = "auto"
    else:
        try:
            crossover = float(args.crossover)
        except ValueError:
            raise SystemExit(
                f"--crossover must be 'auto' or a float, got {args.crossover!r}"
            )
    delta = DeltaConfig(crossover=crossover, rebase_every=args.rebase_every)
    miner = _apply_backend(
        _apply_resilience(
            StreamingRAPMiner(delta=delta), args.deadline_ms, args.degrade
        ),
        args.backend,
    )
    if args.serve_metrics:
        from . import obs
        from .obs.server import TelemetryServer
        from .obs.slo import SLOTracker

        host, port = _parse_serve_address(args.serve_metrics)
        tracker = SLOTracker()
        with obs.capture():
            with TelemetryServer(host=host, port=port) as server:
                print(
                    f"telemetry: serving {server.url}/metrics "
                    f"(/healthz /readyz /debug/spans /debug/profile) "
                    f"for the lifetime of the replay"
                )
                replay = replay_stream(
                    cases, miner=miner, k=args.k, verify=args.verify, slo=tracker
                )
    else:
        replay = replay_stream(cases, miner=miner, k=args.k, verify=args.verify)
    for tick in replay.ticks:
        label = tick.case_id or f"tick{tick.index}"
        extras = ""
        if tick.stop_reason not in (None, "exhausted"):
            extras += f"  stop={tick.stop_reason}"
        if tick.hits is not None:
            extras += f"  hits={tick.hits}"
        if tick.verified is not None:
            extras += "  verified" if tick.verified else "  MISMATCH"
        print(
            f"{label}  {tick.seconds * 1e3:7.1f} ms  {tick.path:7s}"
            f"  ({tick.reason or 'delta'}, changed {tick.changed_fraction:.1%})"
            f"{extras}"
        )
    stats = miner.stats
    print(
        f"\n{len(replay.ticks)} ticks: {replay.patched_ticks} patched, "
        f"{replay.cold_ticks} cold, {stats.rebases} re-bases "
        f"({stats.drift_rebases} drift); amortized "
        f"{replay.amortized_seconds * 1e3:.1f} ms/tick"
    )
    if args.verify:
        if replay.mismatches:
            print(f"verification FAILED on ticks {replay.mismatches}")
            return 1
        print("verification passed: candidates bit-identical to stateless runs")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from . import obs
    from .fleet import FleetConfig, FleetStore, FleetSupervisor
    from .serving import AdmissionConfig, LocalizationServer, ServingConfig

    method = _apply_backend(_resolve_methods(args.method)[0], args.backend)
    fleet_config = FleetConfig(
        shards_per_layout=args.shards,
        microbatch=args.microbatch,
        tenant_quota=args.tenant_quota,
        k=args.k,
        backend=args.backend,
    )
    admission = AdmissionConfig(
        max_queue_depth=args.max_queue_depth,
        soft_queue_depth=args.soft_queue_depth if args.soft_queue_depth > 0 else None,
        tenant_inflight_limit=args.tenant_inflight,
        degraded_deadline_ms=args.degraded_deadline_ms,
    )
    serving_config = ServingConfig(
        host=args.host,
        port=args.port,
        binary_port=None if args.no_binary else args.binary_port,
        admission=admission,
        request_timeout_s=args.request_timeout_s,
        tenants=args.tenants.split(",") if args.tenants else None,
        default_deadline_ms=args.deadline_ms,
    )
    store = FleetStore(args.store) if args.store else None
    supervisor = FleetSupervisor(method, config=fleet_config, store=store)
    try:
        with obs.capture():
            with LocalizationServer(supervisor, serving_config) as server:
                binary = (
                    f", binary frames on port {server.binary_port}"
                    if server.binary_port is not None
                    else ""
                )
                print(
                    f"serving: POST {server.url}/localize "
                    f"(telemetry at /metrics /healthz /readyz){binary}"
                )
                print(
                    f"admission: depth<={admission.max_queue_depth} "
                    f"(degraded band at {admission.soft_queue_depth}), "
                    f"{admission.tenant_inflight_limit}/tenant; Ctrl-C drains and exits"
                )
                try:
                    while True:
                        if (
                            args.max_requests is not None
                            and server.requests_served >= args.max_requests
                        ):
                            break
                        _time.sleep(0.1)
                except KeyboardInterrupt:
                    print("\ndraining...")
            print(f"served {server.requests_served} request(s)")
    finally:
        if store is not None:
            store.close()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs.export import read_jsonl
    from .obs.profile import profile_records, render_profile

    records = read_jsonl(args.trace)
    profiles = profile_records(records)
    if not profiles:
        print(f"{args.trace}: no span records to profile")
        return 1
    print(render_profile(profiles, top=args.top))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    cases = load_cases(args.cases)
    methods = _resolve_methods(args.methods)
    print(f"{len(cases)} cases, {len(methods)} methods, protocol={args.protocol}")
    if args.protocol == "f1":
        evaluations = {
            m.name: run_cases(m, cases, k_from_truth=True, n_workers=args.workers)
            for m in methods
        }
        rows = [
            [name, f"{ev.mean_f1:.3f}", format_seconds(ev.mean_seconds)]
            for name, ev in evaluations.items()
        ]
        print(render_table(["method", "mean F1", "mean time"], rows))
    else:
        evaluations = {
            m.name: run_cases(m, cases, k=5, n_workers=args.workers) for m in methods
        }
        rows = [
            [
                name,
                f"{ev.recall_at(3):.3f}",
                f"{ev.recall_at(4):.3f}",
                f"{ev.recall_at(5):.3f}",
                format_seconds(ev.mean_seconds),
            ]
            for name, ev in evaluations.items()
        ]
        print(render_table(["method", "RC@3", "RC@4", "RC@5", "mean time"], rows))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .data.validation import validate_cases

    cases = load_cases(args.cases)
    report = validate_cases(cases)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze_failures, profile_classification_power

    cases = load_cases(args.cases)
    method = _resolve_methods(args.method)[0]
    evaluation = run_cases(method, cases, k=args.k)
    print(analyze_failures(evaluation, top_k=args.k).render())
    profile = profile_classification_power(cases)
    print(
        f"\nCP profile over {len(cases)} cases: "
        f"AUC(in-RAP vs out) = {profile.auc():.3f}, "
        f"recommended t_CP = {profile.recommended_t_cp():.4f}"
    )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    preset = _preset(args.scale, args.seed)
    target = args.target
    if target == "table4":
        ratios = table4()
        print(
            render_table(
                ["k"] + [str(k) for k in ratios],
                [["DecreaseRatio@k"] + [f"{v:.5f}" for v in ratios.values()]],
            )
        )
        return 0
    if target in ("fig8a", "fig9a"):
        evaluations = run_squeeze_comparison(preset.squeeze_cases(), n_workers=args.workers)
        if target == "fig8a":
            print(render_series_table(figure8a(evaluations), column_order=GROUP_ORDER))
        else:
            print(
                render_series_table(
                    figure9a(evaluations), value_format="{:.4f}", column_order=GROUP_ORDER
                )
            )
        return 0
    cases = preset.rapmd_cases()
    if target == "fig8b":
        evaluations = run_rapmd_comparison(cases, n_workers=args.workers)
        print(
            render_series_table(
                figure8b(evaluations), column_order=[3, 4, 5], first_header="method \\ k"
            )
        )
    elif target == "fig9b":
        evaluations = run_rapmd_comparison(cases, n_workers=args.workers)
        rows = [
            [name, format_seconds(seconds)]
            for name, seconds in figure9b(evaluations).items()
        ]
        print(render_table(["method", "mean time"], rows))
    elif target == "fig10a":
        curve = figure10a(cases)
        print(
            render_table(
                ["t_CP"] + [f"{t:g}" for t in curve],
                [["RC@3"] + [f"{v:.3f}" for v in curve.values()]],
            )
        )
    elif target == "fig10b":
        curve = figure10b(cases)
        print(
            render_table(
                ["t_conf"] + [f"{t:g}" for t in curve],
                [["RC@3"] + [f"{v:.3f}" for v in curve.values()]],
            )
        )
    elif target == "table6":
        result = table6(cases)
        print(
            render_table(
                ["variant", "RC@3", "mean time"],
                [
                    [
                        "with deletion",
                        f"{result.rc3_with_deletion:.3f}",
                        format_seconds(result.seconds_with_deletion),
                    ],
                    [
                        "without deletion",
                        f"{result.rc3_without_deletion:.3f}",
                        format_seconds(result.seconds_without_deletion),
                    ],
                ],
            )
        )
    return 0


# -- parser -------------------------------------------------------------------


def _add_backend_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--backend",
        choices=["auto", "numpy", "native"],
        default=None,
        help="kernel backend for the aggregation hot paths (default: the "
        "RAPMINER_BACKEND environment variable, then 'auto'; see "
        "docs/operational.md)",
    )


def _add_resilience_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-run wall-clock budget; over-budget searches return the "
        "candidates found so far (stop_reason=deadline)",
    )
    subparser.add_argument(
        "--degrade",
        action="store_true",
        help="enable the default graceful-degradation ladder "
        "(vectorized -> serial -> layer_capped; see docs/resilience.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RAPMiner reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a benchmark case bundle")
    generate.add_argument("dataset", choices=["rapmd", "squeeze"])
    generate.add_argument("--out", required=True, help="output JSON path")
    generate.add_argument("--scale", choices=["fast", "paper"], default="fast")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    localize = sub.add_parser("localize", help="run one localizer over a bundle")
    localize.add_argument("--cases", required=True, help="case bundle JSON")
    localize.add_argument("--method", default="RAPMiner")
    localize.add_argument("--k", type=int, default=None)
    localize.add_argument("--case-id", default=None)
    localize.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="capture spans and engine counters, written as JSONL to PATH",
    )
    _add_resilience_flags(localize)
    _add_backend_flag(localize)
    localize.set_defaults(handler=_cmd_localize)

    batch = sub.add_parser(
        "batch-localize",
        help="run one localizer over a bundle through the process-pool batch layer",
    )
    batch.add_argument("--cases", required=True, help="case bundle (.json or .npz)")
    batch.add_argument("--method", default="RAPMiner")
    batch.add_argument("--k", type=int, default=None, help="top-k (default: k from truth)")
    batch.add_argument("--workers", type=int, default=2, help="pool size (1 = serial)")
    batch.add_argument("--transport", choices=["shm", "pickle"], default="shm")
    batch.add_argument("--chunk-size", type=int, default=None, help="cases per shard")
    batch.add_argument(
        "--mode",
        choices=["sharded", "vectorized", "auto"],
        default="auto",
        help="sharded per-case pool, in-process case-stacked kernel, "
        "or auto host heuristic (default)",
    )
    batch.add_argument(
        "--cold-engines",
        action="store_true",
        help="disable warm per-worker engine reuse (serial cost profile)",
    )
    _add_resilience_flags(batch)
    _add_backend_flag(batch)
    batch.set_defaults(handler=_cmd_batch_localize)

    fleet = sub.add_parser(
        "fleet-localize",
        help="serve a bundle through the sharded multi-tenant fleet",
    )
    fleet.add_argument("--cases", help="case bundle (.json or .npz)")
    fleet.add_argument("--method", default="RAPMiner")
    fleet.add_argument("--k", type=int, default=None, help="top-k (default: k from truth)")
    fleet.add_argument(
        "--shards", type=int, default=2, help="shards per schema layout"
    )
    fleet.add_argument(
        "--no-steal",
        action="store_true",
        help="disable work stealing (static home-shard routing)",
    )
    fleet.add_argument(
        "--microbatch",
        type=int,
        default=1,
        help="cases a shard acquires per trip (>1 uses the stacked kernel)",
    )
    fleet.add_argument(
        "--tenant-quota",
        type=int,
        default=8,
        help="max queued cases per tenant before overflow parking",
    )
    fleet.add_argument(
        "--store", help="append cases and results to this segment log"
    )
    fleet.add_argument(
        "--replay",
        help="re-run the cases persisted in this segment log and verify "
        "the results match the persisted rows bit-exactly",
    )
    fleet.add_argument(
        "--warm-start",
        help="prime shard engines from this segment log before serving",
    )
    _add_resilience_flags(fleet)
    _add_backend_flag(fleet)
    fleet.set_defaults(handler=_cmd_fleet_localize)

    stream = sub.add_parser(
        "stream-localize",
        help="replay a bundle as one tick stream through the delta pipeline",
    )
    stream.add_argument("--cases", required=True, help="case bundle (.json or .npz)")
    stream.add_argument("--k", type=int, default=None, help="top-k (default: k from truth)")
    stream.add_argument(
        "--crossover",
        default="auto",
        metavar="FRACTION",
        help="changed-leaf fraction above which a tick aggregates cold: "
        "'auto' (measured break-even, default) or a float in (0, 1]",
    )
    stream.add_argument(
        "--rebase-every",
        type=int,
        default=64,
        metavar="N",
        help="re-base float lanes after N consecutive patched ticks",
    )
    stream.add_argument(
        "--verify",
        action="store_true",
        help="re-run each tick statelessly and assert bit-identical candidates",
    )
    stream.add_argument(
        "--serve-metrics",
        default=None,
        metavar="HOST:PORT",
        help="serve /metrics, /healthz, /readyz, /debug/spans and "
        "/debug/profile live for the lifetime of the replay "
        "(PORT alone binds 127.0.0.1; port 0 picks an ephemeral port)",
    )
    _add_resilience_flags(stream)
    _add_backend_flag(stream)
    stream.set_defaults(handler=_cmd_stream_localize)

    serve = sub.add_parser(
        "serve",
        help="serve localization requests over a warm-engine fleet "
        "(HTTP JSON + binary frames; see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="HTTP listener port (0 = ephemeral)"
    )
    serve.add_argument(
        "--binary-port",
        type=int,
        default=0,
        help="RPSV binary listener port (0 = ephemeral; see --no-binary)",
    )
    serve.add_argument(
        "--no-binary", action="store_true", help="disable the binary frame listener"
    )
    serve.add_argument("--method", default="RAPMiner")
    serve.add_argument(
        "--k", type=int, default=None, help="default top-k when a request sends none"
    )
    serve.add_argument("--shards", type=int, default=2, help="shards per schema layout")
    serve.add_argument(
        "--microbatch", type=int, default=1, help="cases a shard acquires per trip"
    )
    serve.add_argument(
        "--tenant-quota",
        type=int,
        default=8,
        help="fleet-level max queued cases per tenant (overflow parks)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=64,
        help="hard cap on admitted in-flight requests; above it requests "
        "shed with queue_full",
    )
    serve.add_argument(
        "--soft-queue-depth",
        type=int,
        default=48,
        help="depth at which admission turns degraded (tight deadline + "
        "ladder); 0 disables the degraded band",
    )
    serve.add_argument(
        "--tenant-inflight",
        type=int,
        default=16,
        help="max admitted in-flight requests per tenant (tenant_quota shed)",
    )
    serve.add_argument(
        "--degraded-deadline-ms",
        type=float,
        default=250.0,
        help="deadline pinned on degraded-band admissions",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-request budget when the request sends none "
        "(unset = the bit-exact unlimited path)",
    )
    serve.add_argument(
        "--request-timeout-s",
        type=float,
        default=60.0,
        help="server-side cap on waiting for a result (typed timeout past it)",
    )
    serve.add_argument(
        "--tenants",
        default=None,
        help="comma-separated tenant allowlist (default: any tenant)",
    )
    serve.add_argument(
        "--store", help="append served cases and results to this segment log"
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after answering N requests (smoke tests; default: run forever)",
    )
    _add_backend_flag(serve)
    serve.set_defaults(handler=_cmd_serve)

    profile = sub.add_parser(
        "profile",
        help="span-family self-time profile of a --trace JSONL capture",
    )
    profile.add_argument("--trace", required=True, help="JSONL trace written by --trace")
    profile.add_argument(
        "--top", type=int, default=15, help="span families to show (by self time)"
    )
    profile.set_defaults(handler=_cmd_profile)

    evaluate = sub.add_parser("evaluate", help="evaluate a method cohort")
    evaluate.add_argument("--cases", required=True)
    evaluate.add_argument("--workers", type=int, default=1, help="process-pool size per method")
    evaluate.add_argument(
        "--methods", default=None, help="comma-separated (default: paper cohort)"
    )
    evaluate.add_argument("--protocol", choices=["f1", "rc"], default="rc")
    evaluate.set_defaults(handler=_cmd_evaluate)

    validate = sub.add_parser("validate", help="audit a case bundle for well-posedness")
    validate.add_argument("--cases", required=True)
    validate.set_defaults(handler=_cmd_validate)

    analyze = sub.add_parser(
        "analyze", help="failure taxonomy + CP profile of one method over a bundle"
    )
    analyze.add_argument("--cases", required=True)
    analyze.add_argument("--method", default="RAPMiner")
    analyze.add_argument("--k", type=int, default=3)
    analyze.set_defaults(handler=_cmd_analyze)

    reproduce = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    reproduce.add_argument(
        "target",
        choices=["table4", "table6", "fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b"],
    )
    reproduce.add_argument("--scale", choices=["fast", "paper"], default="fast")
    reproduce.add_argument("--seed", type=int, default=1)
    reproduce.add_argument("--workers", type=int, default=1, help="process-pool size per method")
    reproduce.set_defaults(handler=_cmd_reproduce)

    report = sub.add_parser("report", help="full Markdown reproduction report")
    report.add_argument("--scale", choices=["fast", "paper"], default="fast")
    report.add_argument("--seed", type=int, default=1)
    report.add_argument("--out", default=None)
    report.add_argument("--extensions", action="store_true")
    report.set_defaults(handler=_cmd_report)

    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report_builder import ReportSections, build_report

    text = build_report(
        scale=args.scale,
        seed=args.seed,
        sections=ReportSections(extensions=args.extensions),
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
