"""Detector ensembles: combining leaf-label sources.

Operations teams rarely trust a single detector; they run several and
combine the verdicts.  The combination rule changes RAPMiner's input in
exactly the directions the robustness study measures
(:func:`repro.experiments.extensions.detector_robustness_study`):

* :class:`UnionDetector` (any-of) maximizes recall — more false
  positives, the error direction RAPMiner degrades gracefully under;
* :class:`IntersectionDetector` (all-of) maximizes precision — more
  false negatives, tolerable until Criteria 2's headroom is exhausted;
* :class:`MajorityDetector` balances the two.

All satisfy the :class:`~repro.detection.detectors.Detector` interface so
they drop into :func:`label_dataset` and the service unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .detectors import Detector

__all__ = ["UnionDetector", "IntersectionDetector", "MajorityDetector"]


class _Ensemble(Detector):
    """Shared plumbing: validate members, stack their verdicts."""

    def __init__(self, members: Sequence[Detector]):
        members = list(members)
        if not members:
            raise ValueError("an ensemble needs at least one member detector")
        self.members = members

    def _votes(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        """Stacked member verdicts, shape ``(n_members, n_rows)``."""
        return np.stack([member.detect(v, f) for member in self.members])


class UnionDetector(_Ensemble):
    """Anomalous when *any* member flags the leaf (recall-oriented)."""

    def detect(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        return self._votes(v, f).any(axis=0)


class IntersectionDetector(_Ensemble):
    """Anomalous only when *every* member flags the leaf (precision-oriented)."""

    def detect(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        return self._votes(v, f).all(axis=0)


class MajorityDetector(_Ensemble):
    """Anomalous when more than half the members flag the leaf.

    With an even member count, exactly half is *not* a majority (strict
    ``>``), matching the usual voting convention.
    """

    def detect(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        votes = self._votes(v, f)
        return votes.sum(axis=0) * 2 > len(self.members)
