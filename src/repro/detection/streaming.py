"""Online (incremental) leaf anomaly detectors.

The batch detectors in :mod:`repro.detection.detectors` need a forecast
per observation; production monitors often skip the explicit forecasting
stage and score each new observation against *self-maintained* per-leaf
state instead.  These detectors update in O(n_leaves) per step and plug
into :class:`repro.service.LocalizationService` as label sources:

* :class:`OnlineEWMADetector` — per-leaf exponentially weighted mean and
  variance (a Shewhart/EWMA control chart); an observation is anomalous
  when it falls more than ``k`` standard deviations *below* the tracked
  level (one-sided by default, matching the traffic-drop failure model).
* :class:`SeasonalZScoreDetector` — per-leaf, per-phase mean/variance over
  a fixed season (e.g. 1 440 minutes); robust to strong diurnal patterns
  that would inflate an EWMA's variance estimate.

Both expose ``update(values) -> labels`` (score, then learn) and a
``forecast`` view so the service can also report expected values.
Anomalous observations are *not* absorbed into the state, so a long
incident does not teach the detector that failure is normal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["OnlineEWMADetector", "SeasonalZScoreDetector"]


class OnlineEWMADetector:
    """EWMA control chart per leaf series.

    Parameters
    ----------
    n_series:
        Number of leaf series tracked.
    alpha:
        Smoothing factor for the level and variance estimates.
    k:
        Control limit in standard deviations.
    min_observations:
        Steps to learn before any anomaly is reported.
    two_sided:
        Flag surges as well as drops.
    min_relative_scale:
        Floor on the standard deviation as a fraction of the level, so a
        near-constant series does not alarm on microscopic wiggles.
    """

    def __init__(
        self,
        n_series: int,
        alpha: float = 0.1,
        k: float = 4.0,
        min_observations: int = 10,
        two_sided: bool = False,
        min_relative_scale: float = 0.01,
    ):
        if n_series < 1:
            raise ValueError("need at least one series")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if k <= 0.0:
            raise ValueError("k must be positive")
        self.n_series = n_series
        self.alpha = alpha
        self.k = k
        self.min_observations = min_observations
        self.two_sided = two_sided
        self.min_relative_scale = min_relative_scale
        self._level = np.zeros(n_series)
        self._variance = np.zeros(n_series)
        self._count = 0

    @property
    def ready(self) -> bool:
        """True once the warm-up period has passed."""
        return self._count >= self.min_observations

    @property
    def forecast(self) -> np.ndarray:
        """Current expected value per leaf (the tracked level)."""
        return self._level.copy()

    def update(self, values: np.ndarray) -> np.ndarray:
        """Score *values* against the current state, then learn from them.

        Returns the per-leaf anomaly labels (all ``False`` during warm-up).
        Anomalous observations do not update the state.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_series,):
            raise ValueError(f"expected {self.n_series} values, got {values.shape}")

        if self._count == 0:
            labels = np.zeros(self.n_series, dtype=bool)
        else:
            scale = np.sqrt(self._variance)
            scale = np.maximum(scale, self.min_relative_scale * np.abs(self._level))
            scale = np.maximum(scale, 1e-12)
            z = (values - self._level) / scale
            if self.two_sided:
                exceeds = np.abs(z) > self.k
            else:
                exceeds = z < -self.k  # drops only
            labels = exceeds if self.ready else np.zeros(self.n_series, dtype=bool)

        learn = ~labels
        if self._count == 0:
            self._level = values.copy()
        else:
            residual = values - self._level
            self._level[learn] += self.alpha * residual[learn]
            self._variance[learn] = (
                (1.0 - self.alpha) * self._variance[learn]
                + self.alpha * residual[learn] ** 2
            )
        self._count += 1
        return labels


class SeasonalZScoreDetector:
    """Per-phase mean/variance z-score detector over a fixed season.

    Maintains, for every leaf and every phase of the season, a running
    mean and (Welford) variance of past same-phase observations; the
    current observation is anomalous when its z-score against its own
    phase falls below ``-k`` (or outside ``±k`` when two-sided).
    """

    def __init__(
        self,
        n_series: int,
        period: int,
        k: float = 4.0,
        min_cycles: int = 2,
        two_sided: bool = False,
        min_relative_scale: float = 0.01,
    ):
        if n_series < 1 or period < 1:
            raise ValueError("n_series and period must be positive")
        if k <= 0.0:
            raise ValueError("k must be positive")
        self.n_series = n_series
        self.period = period
        self.k = k
        self.min_cycles = min_cycles
        self.two_sided = two_sided
        self.min_relative_scale = min_relative_scale
        self._mean = np.zeros((period, n_series))
        self._m2 = np.zeros((period, n_series))
        self._counts = np.zeros(period, dtype=np.int64)
        self._step = 0

    def _phase(self) -> int:
        return self._step % self.period

    @property
    def forecast(self) -> np.ndarray:
        """Expected value for the *next* observation (its phase mean)."""
        return self._mean[self._phase()].copy()

    def update(self, values: np.ndarray) -> np.ndarray:
        """Score against this phase's statistics, then fold the values in."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_series,):
            raise ValueError(f"expected {self.n_series} values, got {values.shape}")
        phase = self._phase()
        count = self._counts[phase]

        if count >= self.min_cycles:
            variance = self._m2[phase] / max(count - 1, 1)
            scale = np.sqrt(variance)
            scale = np.maximum(scale, self.min_relative_scale * np.abs(self._mean[phase]))
            scale = np.maximum(scale, 1e-12)
            z = (values - self._mean[phase]) / scale
            labels = np.abs(z) > self.k if self.two_sided else z < -self.k
        else:
            labels = np.zeros(self.n_series, dtype=bool)

        learn = ~labels
        new_count = count + 1
        delta = values - self._mean[phase]
        mean = self._mean[phase]
        mean[learn] += delta[learn] / new_count
        self._m2[phase][learn] += delta[learn] * (values[learn] - mean[learn])
        self._counts[phase] = new_count
        self._step += 1
        return labels
