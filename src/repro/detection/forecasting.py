"""Leaf-KPI forecasters.

The paper treats forecasting as given ("we do not take the prediction
methods as our primary work") but localization still needs a forecast
``f`` for every leaf.  This module supplies the standard lightweight
forecasters an operations pipeline would run per leaf series: moving
average, exponentially weighted moving average, seasonal naive, and
additive Holt–Winters.  All operate column-wise on a history matrix of
shape ``(n_steps, n_series)`` and predict the next step, so forecasting the
10 560 CDN leaves is a single vectorized call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "Forecaster",
    "MovingAverageForecaster",
    "EWMAForecaster",
    "SeasonalNaiveForecaster",
    "HoltWintersForecaster",
]


class Forecaster:
    """Interface: predict the next value of each series from its history."""

    def forecast(self, history: np.ndarray) -> np.ndarray:
        """Predict step ``n`` from ``history`` of shape ``(n, n_series)``.

        Returns an array of shape ``(n_series,)``.
        """
        raise NotImplementedError

    @staticmethod
    def _validate(history: np.ndarray, min_steps: int = 1) -> np.ndarray:
        history = np.asarray(history, dtype=float)
        if history.ndim == 1:
            history = history[:, None]
        if history.ndim != 2:
            raise ValueError("history must be 1-D or (n_steps, n_series)")
        if history.shape[0] < min_steps:
            raise ValueError(f"need at least {min_steps} history steps")
        return history


@dataclass
class MovingAverageForecaster(Forecaster):
    """Mean of the last *window* observations."""

    window: int = 10

    def forecast(self, history: np.ndarray) -> np.ndarray:
        history = self._validate(history)
        window = min(self.window, history.shape[0])
        if window < 1:
            raise ValueError("window must be positive")
        return history[-window:].mean(axis=0)


@dataclass
class EWMAForecaster(Forecaster):
    """Exponentially weighted moving average with smoothing factor *alpha*."""

    alpha: float = 0.3

    def forecast(self, history: np.ndarray) -> np.ndarray:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        history = self._validate(history)
        level = history[0].copy()
        for step in range(1, history.shape[0]):
            level = self.alpha * history[step] + (1.0 - self.alpha) * level
        return level


@dataclass
class SeasonalNaiveForecaster(Forecaster):
    """Repeat the observation one season ago (e.g. 1 440 minutes = 1 day).

    Falls back to the last observation when the history is shorter than one
    season.
    """

    period: int = 1440

    def forecast(self, history: np.ndarray) -> np.ndarray:
        if self.period < 1:
            raise ValueError("period must be positive")
        history = self._validate(history)
        if history.shape[0] >= self.period:
            return history[-self.period].copy()
        return history[-1].copy()


@dataclass
class HoltWintersForecaster(Forecaster):
    """Additive Holt–Winters (level + trend + seasonal) one-step forecast.

    A compact vectorized implementation sufficient for producing leaf
    forecasts; seasonal components are initialized from the first full
    season, the trend from the first two observations.
    """

    period: int = 1440
    alpha: float = 0.3
    beta: float = 0.05
    gamma: float = 0.1

    def forecast(self, history: np.ndarray) -> np.ndarray:
        for name, value in (("alpha", self.alpha), ("beta", self.beta), ("gamma", self.gamma)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        history = self._validate(history, min_steps=2)
        n_steps, n_series = history.shape
        period = self.period
        if n_steps < 2 * period:
            # Not enough data to estimate seasonality; degrade to Holt's
            # linear (level + trend) smoothing.
            period = 0

        level = history[0].copy()
        trend = history[1] - history[0]
        if period:
            season_mean = history[:period].mean(axis=0)
            seasonal = history[:period] - season_mean  # shape (period, n_series)
            start = period
            level = history[:period].mean(axis=0)
            trend = (history[period : 2 * period].mean(axis=0) - level) / period
        else:
            seasonal = np.zeros((1, n_series))
            start = 2

        for step in range(start, n_steps):
            seasonal_index = step % period if period else 0
            observed = history[step]
            previous_level = level
            deseasonalized = observed - (seasonal[seasonal_index] if period else 0.0)
            level = self.alpha * deseasonalized + (1.0 - self.alpha) * (level + trend)
            trend = self.beta * (level - previous_level) + (1.0 - self.beta) * trend
            if period:
                seasonal[seasonal_index] = (
                    self.gamma * (observed - level)
                    + (1.0 - self.gamma) * seasonal[seasonal_index]
                )

        next_seasonal = seasonal[n_steps % period] if period else 0.0
        return level + trend + next_seasonal
