"""Leaf-level anomaly detectors.

RAPMiner's only input is a boolean anomaly label per most fine-grained
attribute combination (Fig. 5: "anomaly detection results" feed the two
algorithms).  These detectors produce that label from actual/forecast value
pairs:

* :class:`DeviationThresholdDetector` — flags leaves whose relative
  deviation (Eq. 4) exceeds a threshold; this is the detector implied by
  the paper's injection ranges (anomalous ``Dev >= 0.1`` vs normal
  ``Dev <= 0.09``).
* :class:`KSigmaDetector` — flags leaves whose residual ``f - v`` deviates
  from the residual population by more than ``k`` robust standard
  deviations; useful when deviation scales vary wildly across leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import EPSILON, FineGrainedDataset, deviation

__all__ = ["Detector", "DeviationThresholdDetector", "KSigmaDetector", "label_dataset"]


class Detector:
    """Interface: produce a boolean anomaly label per leaf row."""

    def detect(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        """Label each ``(v, f)`` pair; returns a bool array."""
        raise NotImplementedError


@dataclass
class DeviationThresholdDetector(Detector):
    """Anomalous iff ``Dev = (f - v)/(f + eps)`` crosses *threshold*.

    With ``two_sided=True`` the magnitude ``|Dev|`` is compared, catching
    both drops (``v < f``) and surges (``v > f``); the paper's injections
    are drops, so one-sided is the default.
    """

    threshold: float = 0.095
    two_sided: bool = False
    epsilon: float = EPSILON

    def detect(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        dev = deviation(v, f, self.epsilon)
        if self.two_sided:
            return np.abs(dev) > self.threshold
        return dev > self.threshold


@dataclass
class KSigmaDetector(Detector):
    """Anomalous iff the residual is a *k*-sigma outlier (robust estimate).

    Scale is estimated from the median absolute deviation of the relative
    residuals, so a handful of genuinely anomalous leaves cannot inflate it.
    """

    k: float = 3.0
    epsilon: float = EPSILON

    def detect(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        residual = deviation(v, f, self.epsilon)
        center = np.median(residual)
        mad = np.median(np.abs(residual - center))
        # 1.4826 scales MAD to the standard deviation of a normal population.
        scale = 1.4826 * mad
        if scale <= 0.0:
            scale = residual.std() or 1.0
        return np.abs(residual - center) > self.k * scale


def label_dataset(dataset: FineGrainedDataset, detector: Detector) -> FineGrainedDataset:
    """Attach *detector*'s labels to *dataset* (non-destructively)."""
    return dataset.with_labels(detector.detect(dataset.v, dataset.f))
