"""Leaf-level forecasting and anomaly detection."""

from .detectors import Detector, DeviationThresholdDetector, KSigmaDetector, label_dataset
from .forecasting import (
    EWMAForecaster,
    Forecaster,
    HoltWintersForecaster,
    MovingAverageForecaster,
    SeasonalNaiveForecaster,
)
from .ensembles import IntersectionDetector, MajorityDetector, UnionDetector
from .streaming import OnlineEWMADetector, SeasonalZScoreDetector

__all__ = [
    "Detector",
    "DeviationThresholdDetector",
    "KSigmaDetector",
    "label_dataset",
    "EWMAForecaster",
    "Forecaster",
    "HoltWintersForecaster",
    "MovingAverageForecaster",
    "SeasonalNaiveForecaster",
    "IntersectionDetector",
    "MajorityDetector",
    "UnionDetector",
    "OnlineEWMADetector",
    "SeasonalZScoreDetector",
]
