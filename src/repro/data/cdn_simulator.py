"""Synthetic CDN background-traffic substrate.

The paper builds RAPMD from 35 days of per-minute leaf KPIs ("Out_Flow")
collected from an ISP-operated CDN.  That trace is proprietary, so this
module provides the closest synthetic equivalent: a seedable generator of
per-leaf traffic volumes with the statistical properties the paper relies
on —

* the exact Table I schema (33 locations x 4 access types x 4 OSes x
  20 websites = 10 560 leaves), scalable down for fast tests;
* heavy-tailed volume across websites (a few big sites dominate) and
  locations, multiplicative access-type / OS shares — so leaf KPIs are
  *sparse* and individually noisy, which is the very property the paper
  cites when arguing against Squeeze's equal-magnitude assumption;
* diurnal seasonality plus lognormal measurement noise in the time series;
* a seasonal-baseline forecast per leaf, so a snapshot carries both the
  actual value ``v`` and a realistic forecast ``f``.

Only the *marginal distribution of leaf volumes* matters downstream:
RAPMD's injection (Eq. 4/5) overwrites ``f`` from randomly drawn relative
deviations, exactly as the paper does on top of its real trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.attribute import AttributeSchema
from .dataset import FineGrainedDataset
from .schema import cdn_schema

__all__ = ["CDNSimulatorConfig", "CDNSnapshot", "CDNSimulator"]

#: Minutes per day at the paper's 60-second collection interval.
STEPS_PER_DAY = 1440


@dataclass
class CDNSimulatorConfig:
    """Knobs of the synthetic CDN traffic substrate.

    Defaults mirror the paper's setting; tests shrink the schema instead of
    changing the statistical shape.
    """

    #: Zipf-like exponent of per-website volume (few sites dominate).
    website_zipf_exponent: float = 1.1
    #: Lognormal sigma of per-location scale (regional size spread).
    location_sigma: float = 0.8
    #: Dirichlet concentration of access-type shares (smaller = more skewed).
    access_concentration: float = 1.5
    #: Dirichlet concentration of OS shares.
    os_concentration: float = 1.5
    #: Fraction of leaves that carry no traffic at all (sparsity).
    inactive_fraction: float = 0.15
    #: Total mean volume across the whole CDN at the daily peak.
    total_peak_volume: float = 1.0e6
    #: Ratio of the nightly trough to the daily peak.
    trough_to_peak: float = 0.25
    #: Lognormal sigma of per-step multiplicative measurement noise.
    noise_sigma: float = 0.05
    #: RNG seed for reproducibility.
    seed: int = 0


@dataclass
class CDNSnapshot:
    """One time point of the simulated CDN: leaf values and their forecasts."""

    schema: AttributeSchema
    #: Minute index within the simulated horizon.
    step: int
    #: shape (n_active_leaves, n_attributes): element codes of active leaves.
    codes: np.ndarray
    #: shape (n_active_leaves,): actual volumes.
    v: np.ndarray
    #: shape (n_active_leaves,): seasonal-baseline forecasts.
    f: np.ndarray

    def to_dataset(self) -> FineGrainedDataset:
        """Wrap the snapshot in an unlabeled :class:`FineGrainedDataset`."""
        return FineGrainedDataset(self.schema, self.codes, self.v, self.f)


class CDNSimulator:
    """Seedable generator of CDN leaf-traffic snapshots and series.

    The per-leaf *base rate* is a product of independent per-element factors
    (website popularity x location scale x access share x OS share), scaled
    so the all-leaf sum at the diurnal peak equals
    ``config.total_peak_volume``.  A fraction of leaves is inactive, giving
    the sparse leaf tables the paper describes.

    Examples
    --------
    >>> sim = CDNSimulator(cdn_schema(4, 2, 2, 3), CDNSimulatorConfig(seed=7))
    >>> snap = sim.snapshot(720)
    >>> snap.v.shape == snap.f.shape
    True
    """

    def __init__(
        self,
        schema: Optional[AttributeSchema] = None,
        config: Optional[CDNSimulatorConfig] = None,
    ):
        self.schema = schema if schema is not None else cdn_schema()
        self.config = config if config is not None else CDNSimulatorConfig()
        if self.schema.n_attributes != 4:
            raise ValueError("the CDN simulator models the 4-attribute Table I schema")
        self._rng = np.random.default_rng(self.config.seed)
        self._base_rates, self._active_codes = self._build_base_rates()

    # -- construction of the static leaf intensity field -----------------------

    def _build_base_rates(self) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        sizes = self.schema.sizes
        n_loc, n_access, n_os, n_site = sizes

        location_scale = self._rng.lognormal(mean=0.0, sigma=cfg.location_sigma, size=n_loc)
        access_share = self._rng.dirichlet(np.full(n_access, cfg.access_concentration))
        os_share = self._rng.dirichlet(np.full(n_os, cfg.os_concentration))
        ranks = np.arange(1, n_site + 1, dtype=float)
        site_popularity = ranks**-cfg.website_zipf_exponent
        site_popularity = self._rng.permutation(site_popularity)

        rates = np.einsum(
            "i,j,k,l->ijkl", location_scale, access_share, os_share, site_popularity
        ).reshape(-1)
        active = self._rng.random(rates.size) >= cfg.inactive_fraction
        if not active.any():  # degenerate config; keep at least one leaf alive
            active[0] = True
        rates = rates[active]
        rates *= cfg.total_peak_volume / rates.sum()

        grids = np.meshgrid(*[np.arange(s) for s in sizes], indexing="ij")
        codes = np.stack([g.reshape(-1) for g in grids], axis=1)[active]
        return rates, codes

    @property
    def n_active_leaves(self) -> int:
        """Leaves that carry traffic (present in every snapshot)."""
        return self._base_rates.size

    # -- temporal structure -----------------------------------------------------

    def seasonal_factor(self, step: int) -> float:
        """Deterministic diurnal multiplier in ``[trough_to_peak, 1]``.

        A smooth sinusoid peaking at 21:00 (evening CDN traffic peak) and
        bottoming out around 09:00.
        """
        cfg = self.config
        phase = 2.0 * math.pi * ((step % STEPS_PER_DAY) / STEPS_PER_DAY)
        peak_phase = 2.0 * math.pi * (21.0 * 60.0 / STEPS_PER_DAY)
        wave = 0.5 * (1.0 + math.cos(phase - peak_phase))
        return cfg.trough_to_peak + (1.0 - cfg.trough_to_peak) * wave

    def expected_values(self, step: int) -> np.ndarray:
        """Noise-free expected leaf volumes at *step* (the ideal forecast)."""
        return self._base_rates * self.seasonal_factor(step)

    def snapshot(self, step: int, rng: Optional[np.random.Generator] = None) -> CDNSnapshot:
        """Sample one noisy snapshot; ``f`` is the noise-free seasonal baseline."""
        rng = rng if rng is not None else self._rng
        expected = self.expected_values(step)
        noise = rng.lognormal(mean=0.0, sigma=self.config.noise_sigma, size=expected.size)
        return CDNSnapshot(
            schema=self.schema,
            step=step,
            codes=self._active_codes.copy(),
            v=expected * noise,
            f=expected.copy(),
        )

    def generate_series(
        self, n_steps: int, start_step: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Actual leaf volumes over time.

        Returns
        -------
        (values, expected):
            ``values`` has shape ``(n_steps, n_active_leaves)`` with noisy
            actuals; ``expected`` holds the matching noise-free baselines.
        """
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        values = np.empty((n_steps, self.n_active_leaves))
        expected = np.empty_like(values)
        for row, step in enumerate(range(start_step, start_step + n_steps)):
            snap = self.snapshot(step)
            values[row] = snap.v
            expected[row] = snap.f
        return values, expected
