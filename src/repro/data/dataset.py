"""The most fine-grained attribute-combination dataset (Table III of the paper).

:class:`FineGrainedDataset` holds one row per *leaf* attribute combination
(every attribute specified) with the actual KPI value ``v``, the forecast
value ``f``, and a boolean anomaly label produced by a leaf-level detector.
This is exactly the input of RAPMiner's two algorithms, and — via the
aggregation helpers implementing Fig. 4 — the input of every baseline that
needs coarse-grained ``v``/``f`` sums.

Rows are integer-coded: element strings are translated through the schema
into dense codes, so support counts, confidences, and per-cuboid group-bys
are vectorized numpy operations rather than Python scans.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.attribute import AttributeCombination, AttributeSchema
from ..core.cuboid import Cuboid

__all__ = ["FineGrainedDataset", "CuboidAggregate", "deviation"]

#: Epsilon of the paper's Eq. 4, guarding the division by ``f``.
EPSILON = 1e-9


def deviation(v: np.ndarray, f: np.ndarray, epsilon: float = EPSILON) -> np.ndarray:
    """Relative deviation ``Dev = (f - v) / (f + eps)`` (Eq. 4)."""
    v = np.asarray(v, dtype=float)
    f = np.asarray(f, dtype=float)
    return (f - v) / (f + epsilon)


@dataclass
class CuboidAggregate:
    """Per-combination aggregates of a cuboid, computed over the leaf table.

    Produced by :meth:`FineGrainedDataset.aggregate`.  Each index ``i``
    describes one attribute combination of the cuboid that actually occurs
    in the data: its leaf support, anomalous-leaf support, and the summed
    actual/forecast values (the additive aggregation of Fig. 4).
    """

    cuboid: Cuboid
    schema: AttributeSchema
    #: shape (G, d): element codes of the cuboid's specified attributes.
    codes: np.ndarray
    #: shape (G,): number of leaf rows per combination.
    support: np.ndarray
    #: shape (G,): number of anomalous leaf rows per combination.
    anomalous_support: np.ndarray
    #: shape (G,): sum of actual values per combination.
    v_sum: np.ndarray
    #: shape (G,): sum of forecast values per combination.
    f_sum: np.ndarray

    def __len__(self) -> int:
        return len(self.support)

    @functools.cached_property
    def confidence(self) -> np.ndarray:
        """Anomaly confidence per combination (Criteria 2's ratio).

        Memoized: the search loop reads this once per cuboid visit and the
        ranking stage reads it again, so the division runs at most once per
        aggregate.  Aggregates are treated as immutable after construction.
        """
        return self.anomalous_support / np.maximum(self.support, 1)

    def combination(self, index: int) -> AttributeCombination:
        """Decode row *index* into an :class:`AttributeCombination`."""
        values: List[Optional[str]] = [None] * self.schema.n_attributes
        for position, attr_index in enumerate(self.cuboid.attribute_indices):
            values[attr_index] = self.schema.decode(attr_index, int(self.codes[index, position]))
        return AttributeCombination(values)

    def combinations(self) -> List[AttributeCombination]:
        """Decode every row into an :class:`AttributeCombination`."""
        return [self.combination(i) for i in range(len(self))]


class FineGrainedDataset:
    """Leaf table: one row per most fine-grained attribute combination.

    Parameters
    ----------
    schema:
        The attribute schema.
    codes:
        Integer array of shape ``(n_rows, n_attributes)`` with element codes.
    v, f:
        Actual and forecast KPI values per row.
    labels:
        Boolean anomaly label per row (the output of leaf-level detection).
        May be omitted and attached later via :meth:`with_labels`.
    """

    def __init__(
        self,
        schema: AttributeSchema,
        codes: np.ndarray,
        v: np.ndarray,
        f: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ):
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        v = np.asarray(v, dtype=float)
        f = np.asarray(f, dtype=float)
        if codes.ndim != 2 or codes.shape[1] != schema.n_attributes:
            raise ValueError(
                f"codes must have shape (n_rows, {schema.n_attributes}), got {codes.shape}"
            )
        n_rows = codes.shape[0]
        if v.shape != (n_rows,) or f.shape != (n_rows,):
            raise ValueError("v and f must be 1-D arrays matching the row count")
        for column, size in enumerate(schema.sizes):
            column_codes = codes[:, column]
            if n_rows and (column_codes.min() < 0 or column_codes.max() >= size):
                raise ValueError(f"element codes out of range in column {column}")
        if labels is None:
            labels = np.zeros(n_rows, dtype=bool)
        else:
            labels = np.asarray(labels, dtype=bool)
            if labels.shape != (n_rows,):
                raise ValueError("labels must be a 1-D bool array matching the row count")
        self.schema = schema
        self.codes = codes
        self.v = v
        self.f = f
        self.labels = labels
        self._strides = self._compute_strides(schema.sizes)

    def __getstate__(self):
        # The aggregation engine caches itself on the dataset
        # (repro.core.engine.engine_for); its derived state is cheap to
        # rebuild and must not ride along in pickles (e.g. process-pool
        # case transport).
        state = self.__dict__.copy()
        state.pop("_repro_engine", None)
        return state

    @staticmethod
    def _compute_strides(sizes: Sequence[int]) -> np.ndarray:
        """Row-major strides so each full-code row maps to a unique linear key."""
        strides = np.ones(len(sizes), dtype=np.int64)
        for i in range(len(sizes) - 2, -1, -1):
            strides[i] = strides[i + 1] * sizes[i + 1]
        return strides

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: AttributeSchema,
        rows: Iterable[Tuple[Sequence[str], float, float]],
        labels: Optional[Sequence[bool]] = None,
    ) -> "FineGrainedDataset":
        """Build from ``(values, v, f)`` triples of element *names*."""
        code_rows: List[List[int]] = []
        v_list: List[float] = []
        f_list: List[float] = []
        for values, v, f in rows:
            if len(values) != schema.n_attributes:
                raise ValueError("row arity does not match the schema")
            code_rows.append([schema.encode(i, value) for i, value in enumerate(values)])
            v_list.append(float(v))
            f_list.append(float(f))
        codes = np.array(code_rows, dtype=np.int64).reshape(len(code_rows), schema.n_attributes)
        label_array = None if labels is None else np.asarray(labels, dtype=bool)
        return cls(schema, codes, np.array(v_list), np.array(f_list), label_array)

    @classmethod
    def full(
        cls,
        schema: AttributeSchema,
        v: np.ndarray,
        f: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ) -> "FineGrainedDataset":
        """Build the complete cross-product leaf table in row-major leaf order."""
        n = schema.n_leaves
        grids = np.meshgrid(*[np.arange(s) for s in schema.sizes], indexing="ij")
        codes = np.stack([g.reshape(-1) for g in grids], axis=1)
        if len(v) != n or len(f) != n:
            raise ValueError(f"full dataset needs exactly {n} values")
        return cls(schema, codes, v, f, labels)

    # -- basic properties ------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.codes.shape[0]

    def __len__(self) -> int:
        return self.n_rows

    @property
    def n_anomalous(self) -> int:
        return int(self.labels.sum())

    @property
    def anomaly_ratio(self) -> float:
        return self.n_anomalous / self.n_rows if self.n_rows else 0.0

    def with_labels(self, labels: np.ndarray) -> "FineGrainedDataset":
        """A copy of this dataset with fresh anomaly labels."""
        return FineGrainedDataset(self.schema, self.codes, self.v, self.f, labels)

    def deviation(self, epsilon: float = EPSILON) -> np.ndarray:
        """Per-row relative deviation (Eq. 4)."""
        return deviation(self.v, self.f, epsilon)

    # -- combination queries ----------------------------------------------------

    def encode_combination(self, combination: AttributeCombination) -> np.ndarray:
        """Element codes of *combination* with ``-1`` at wildcard positions."""
        self.schema.validate(combination)
        encoded = np.full(self.schema.n_attributes, -1, dtype=np.int64)
        for i, value in enumerate(combination.values):
            if value is not None:
                encoded[i] = self.schema.encode(i, value)
        return encoded

    def mask_of(self, combination: AttributeCombination) -> np.ndarray:
        """Boolean mask of the leaf rows covered by *combination*."""
        encoded = self.encode_combination(combination)
        mask = np.ones(self.n_rows, dtype=bool)
        for column, code in enumerate(encoded):
            if code >= 0:
                mask &= self.codes[:, column] == code
        return mask

    def support_count(self, combination: AttributeCombination) -> int:
        """``support_count_D(ac)``: covered leaf rows present in the data."""
        return int(self.mask_of(combination).sum())

    def anomalous_support_count(self, combination: AttributeCombination) -> int:
        """``support_count_D(ac, Anomaly)``: covered rows that are anomalous."""
        return int(self.labels[self.mask_of(combination)].sum())

    def confidence(self, combination: AttributeCombination) -> float:
        """``Confidence(ac => Anomaly)`` of Criteria 2 (0.0 on empty support)."""
        mask = self.mask_of(combination)
        support = int(mask.sum())
        if support == 0:
            return 0.0
        return float(self.labels[mask].sum()) / support

    def values_of(self, combination: AttributeCombination) -> Tuple[float, float]:
        """Aggregated ``(v, f)`` of *combination* (additive KPI, Fig. 4)."""
        mask = self.mask_of(combination)
        return float(self.v[mask].sum()), float(self.f[mask].sum())

    # -- vectorized per-cuboid aggregation ---------------------------------------

    def linear_keys(self, cuboid: Cuboid) -> np.ndarray:
        """Map each leaf row to a linear key over the cuboid's attributes.

        Every attribute index must lie in ``[0, n_attributes)`` and the
        index tuple must be strictly increasing (``Cuboid`` guarantees
        this, but duck-typed callers are validated too, since an unsorted
        tuple would silently permute the key space).
        """
        indices = list(cuboid.attribute_indices)
        if any(i < 0 or i >= self.schema.n_attributes for i in indices):
            raise IndexError("cuboid attribute index out of range for schema")
        if any(a >= b for a, b in zip(indices, indices[1:])):
            raise ValueError("cuboid attribute indices must be sorted and unique")
        sizes = [self.schema.size(i) for i in indices]
        strides = self._compute_strides(sizes)
        keys = np.zeros(self.n_rows, dtype=np.int64)
        for position, attr_index in enumerate(indices):
            keys += self.codes[:, attr_index] * strides[position]
        return keys

    def aggregate(self, cuboid: Cuboid) -> CuboidAggregate:
        """Group the leaf table by *cuboid* and aggregate counts and sums.

        Only combinations that actually occur in the data are returned
        (matching the paper's ``support_count_D`` semantics: confidence is
        computed over rows present in ``D``).
        """
        indices = list(cuboid.attribute_indices)
        keys = self.linear_keys(cuboid)
        capacity = 1
        for i in indices:
            capacity *= self.schema.size(i)
        support = np.bincount(keys, minlength=capacity)
        anomalous = np.bincount(keys, weights=self.labels.astype(float), minlength=capacity)
        v_sum = np.bincount(keys, weights=self.v, minlength=capacity)
        f_sum = np.bincount(keys, weights=self.f, minlength=capacity)
        occupied = np.flatnonzero(support)
        sizes = [self.schema.size(i) for i in indices]
        codes = np.stack(np.unravel_index(occupied, sizes), axis=1)
        return CuboidAggregate(
            cuboid=cuboid,
            schema=self.schema,
            codes=codes.astype(np.int64),
            support=support[occupied].astype(np.int64),
            anomalous_support=anomalous[occupied].astype(np.int64),
            v_sum=v_sum[occupied],
            f_sum=f_sum[occupied],
        )

    # -- interchange ---------------------------------------------------------------

    def to_records(self) -> List[Tuple[Tuple[str, ...], float, float, bool]]:
        """Decode the table into ``(values, v, f, label)`` tuples (for IO)."""
        records = []
        for row in range(self.n_rows):
            values = tuple(
                self.schema.decode(i, int(self.codes[row, i]))
                for i in range(self.schema.n_attributes)
            )
            records.append((values, float(self.v[row]), float(self.f[row]), bool(self.labels[row])))
        return records

    def __repr__(self) -> str:
        return (
            f"FineGrainedDataset(rows={self.n_rows}, anomalous={self.n_anomalous}, "
            f"schema={self.schema!r})"
        )
