"""Loader for the published Squeeze dataset's on-disk layout.

The semi-synthetic dataset released with Squeeze (ISSRE'19) — the same
one the RAPMiner paper evaluates on — ships as directories of per-
timestamp CSV files plus one ground-truth index:

```
B0/
  injection_info.csv        # columns: timestamp, ..., set
  1501475700.csv            # columns: <attr1>, ..., <attrN>, real, predict
  1501476000.csv
  ...
```

Each timestamp CSV is a (sparse) leaf table: one row per occurring
fine-grained attribute combination with its actual (``real``) and
forecast (``predict``) values.  ``injection_info.csv``'s ``set`` column
encodes the injected root causes as ``&``-joined element names per RAP
and ``;``-separated RAPs, e.g. ``a1&b2;c3`` = two RAPs,
``(a1, b2, *, *)`` and ``(*, *, c3, *)``.

Element names are unique across attributes in the published data (``a*``,
``b*``, …), which is what lets the ``set`` strings omit attribute names;
this loader resolves each token against the schema and rejects ambiguous
vocabularies rather than guessing.

This repository's generators produce statistically equivalent data
(DESIGN.md §2); this module exists so the *actual* release can be dropped
in unchanged: point :func:`load_squeeze_directory` at ``B0/`` and feed
the cases to the same experiment runners.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.attribute import AttributeCombination, AttributeSchema
from ..detection.detectors import Detector, DeviationThresholdDetector
from .dataset import FineGrainedDataset
from .injection import LocalizationCase

__all__ = [
    "infer_schema_from_timestamp_csv",
    "parse_ground_truth_set",
    "load_timestamp_csv",
    "load_squeeze_directory",
]

PathLike = Union[str, Path]

#: Column names carrying values rather than attributes.
VALUE_COLUMNS = ("real", "predict")


def _read_header(path: Path) -> List[str]:
    with path.open(newline="") as handle:
        header = next(csv.reader(handle), None)
    if header is None:
        raise ValueError(f"{path} is empty")
    return header


def infer_schema_from_timestamp_csv(path: PathLike) -> AttributeSchema:
    """Build the schema from one timestamp CSV.

    Attribute columns are everything before the ``real``/``predict``
    columns; each attribute's vocabulary is the sorted set of values seen.
    (For multi-file datasets, infer from one file and validate the rest —
    the published data uses a fixed vocabulary per directory.)
    """
    path = Path(path)
    header = _read_header(path)
    attribute_names = [column for column in header if column not in VALUE_COLUMNS]
    if len(attribute_names) == len(header):
        raise ValueError(f"{path} has no real/predict columns")
    vocabularies: Dict[str, set] = {name: set() for name in attribute_names}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            for name in attribute_names:
                vocabularies[name].add(row[name])
    return AttributeSchema(
        {name: sorted(vocabularies[name]) for name in attribute_names}
    )


def _element_index(schema: AttributeSchema) -> Dict[str, int]:
    """Map element name -> attribute index; rejects ambiguous vocabularies."""
    index: Dict[str, int] = {}
    for attr_index in range(schema.n_attributes):
        for element in schema.elements(attr_index):
            if element in index:
                raise ValueError(
                    f"element name {element!r} appears in two attributes; "
                    "the '&'-set ground-truth notation is ambiguous here"
                )
            index[element] = attr_index
    return index


def parse_ground_truth_set(text: str, schema: AttributeSchema) -> List[AttributeCombination]:
    """Parse an ``injection_info.csv`` ``set`` entry into combinations.

    ``"a1&b2;c3"`` -> ``[(a1, b2, *...), (*..., c3, *...)]``.
    """
    index = _element_index(schema)
    combinations: List[AttributeCombination] = []
    for rap_text in text.split(";"):
        rap_text = rap_text.strip()
        if not rap_text:
            continue
        values: List[Optional[str]] = [None] * schema.n_attributes
        for token in rap_text.split("&"):
            token = token.strip()
            if token not in index:
                raise KeyError(f"unknown element {token!r} in ground-truth set {text!r}")
            attr_index = index[token]
            if values[attr_index] is not None:
                raise ValueError(
                    f"ground-truth RAP {rap_text!r} binds attribute "
                    f"{schema.names[attr_index]!r} twice"
                )
            values[attr_index] = token
        combinations.append(AttributeCombination(values))
    if not combinations:
        raise ValueError(f"ground-truth set {text!r} contains no RAPs")
    return combinations


def load_timestamp_csv(
    path: PathLike,
    schema: AttributeSchema,
    detector: Optional[Detector] = None,
) -> FineGrainedDataset:
    """Load one timestamp's leaf table and label it with *detector*.

    The published data encodes drops as ``predict > real``; the default
    detector is the same deviation threshold the generators use.
    """
    path = Path(path)
    detector = detector if detector is not None else DeviationThresholdDetector()
    header = _read_header(path)
    attribute_names = [column for column in header if column not in VALUE_COLUMNS]
    if tuple(attribute_names) != schema.names:
        raise ValueError(
            f"{path} attribute columns {attribute_names} do not match "
            f"schema {list(schema.names)}"
        )
    code_rows: List[List[int]] = []
    v_list: List[float] = []
    f_list: List[float] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            code_rows.append(
                [schema.encode(i, row[name]) for i, name in enumerate(schema.names)]
            )
            v_list.append(float(row["real"]))
            f_list.append(float(row["predict"]))
    codes = np.asarray(code_rows, dtype=np.int64).reshape(-1, schema.n_attributes)
    v = np.asarray(v_list)
    f = np.asarray(f_list)
    labels = detector.detect(v, f)
    return FineGrainedDataset(schema, codes, v, f, labels)


def load_squeeze_directory(
    directory: PathLike,
    schema: Optional[AttributeSchema] = None,
    detector: Optional[Detector] = None,
    injection_file: str = "injection_info.csv",
) -> List[LocalizationCase]:
    """Load a whole Squeeze-format directory into localization cases.

    Parameters
    ----------
    schema:
        Inferred from the first timestamp CSV when omitted.
    detector:
        Leaf labeller applied to every timestamp (deviation threshold by
        default).

    Returns cases ordered by timestamp; each carries ``metadata["timestamp"]``.
    """
    directory = Path(directory)
    info_path = directory / injection_file
    if not info_path.exists():
        raise FileNotFoundError(f"{info_path} not found")

    entries: List[Dict[str, str]] = []
    with info_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "timestamp" not in reader.fieldnames:
            raise ValueError(f"{info_path} needs a 'timestamp' column")
        if "set" not in reader.fieldnames:
            raise ValueError(f"{info_path} needs a 'set' ground-truth column")
        entries.extend(reader)
    if not entries:
        raise ValueError(f"{info_path} lists no cases")

    first_csv = directory / f"{entries[0]['timestamp']}.csv"
    if schema is None:
        schema = infer_schema_from_timestamp_csv(first_csv)

    cases: List[LocalizationCase] = []
    for entry in sorted(entries, key=lambda e: e["timestamp"]):
        timestamp = entry["timestamp"]
        csv_path = directory / f"{timestamp}.csv"
        dataset = load_timestamp_csv(csv_path, schema, detector)
        raps = parse_ground_truth_set(entry["set"], schema)
        cases.append(
            LocalizationCase(
                case_id=f"squeeze-file-{timestamp}",
                dataset=dataset,
                true_raps=tuple(raps),
                metadata={"timestamp": timestamp, "source": str(directory)},
            )
        )
    return cases
