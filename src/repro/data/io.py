"""Serialization of schemas, leaf tables, and localization cases.

Two interchange formats are provided:

* **CSV** for the leaf table itself — one column per attribute plus
  ``v``, ``f``, ``label`` — matching the layout of Table III and of the
  published Squeeze dataset's per-timestamp CSV files, so externally
  produced data can be dropped in.
* **JSON** for full :class:`~repro.data.injection.LocalizationCase` bundles
  (schema + leaf table + ground-truth RAPs + metadata), used to persist
  generated benchmarks so experiment runs are replayable byte-for-byte.
* **NPZ** for the same bundles in binary form: the four leaf-table arrays
  are stored as raw numpy buffers (no ``tolist()`` round-trip, no float
  re-parsing) with the non-array fields in an embedded JSON header.  JSON
  stays the interchange format; ``.npz`` is the fast path for large
  bundles and the batch execution layer's replay inputs.
  :func:`save_cases` / :func:`load_cases` pick the format by suffix.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from ..core.attribute import AttributeCombination, AttributeSchema
from .dataset import FineGrainedDataset
from .injection import LocalizationCase

__all__ = [
    "dataset_to_csv",
    "dataset_from_csv",
    "schema_to_dict",
    "schema_from_dict",
    "case_to_dict",
    "case_from_dict",
    "save_cases",
    "load_cases",
    "save_cases_npz",
    "load_cases_npz",
    "write_cases_npz",
    "read_cases_npz",
    "cases_to_npz_bytes",
    "cases_from_npz_bytes",
]

PathLike = Union[str, Path]


def schema_to_dict(schema: AttributeSchema) -> Dict:
    """JSON-ready representation of a schema."""
    return {name: list(schema.elements(name)) for name in schema.names}


def schema_from_dict(data: Dict) -> AttributeSchema:
    """Inverse of :func:`schema_to_dict`."""
    return AttributeSchema({name: list(elements) for name, elements in data.items()})


def dataset_to_csv(dataset: FineGrainedDataset, path: PathLike) -> None:
    """Write a leaf table as CSV with attribute columns plus ``v,f,label``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(dataset.schema.names) + ["v", "f", "label"])
        for values, v, f, label in dataset.to_records():
            writer.writerow(list(values) + [repr(v), repr(f), int(label)])


def dataset_from_csv(path: PathLike, schema: AttributeSchema) -> FineGrainedDataset:
    """Read a leaf table written by :func:`dataset_to_csv` (or compatible)."""
    path = Path(path)
    rows = []
    labels = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path} is empty")
        expected = list(schema.names) + ["v", "f", "label"]
        if header != expected:
            raise ValueError(f"{path} header {header} does not match schema columns {expected}")
        n_attrs = schema.n_attributes
        for line in reader:
            if not line:
                continue
            values = tuple(line[:n_attrs])
            rows.append((values, float(line[n_attrs]), float(line[n_attrs + 1])))
            labels.append(bool(int(line[n_attrs + 2])))
    return FineGrainedDataset.from_rows(schema, rows, labels)


def case_to_dict(case: LocalizationCase) -> Dict:
    """JSON-ready representation of a localization case."""
    dataset = case.dataset
    return {
        "case_id": case.case_id,
        "schema": schema_to_dict(dataset.schema),
        "codes": dataset.codes.tolist(),
        "v": dataset.v.tolist(),
        "f": dataset.f.tolist(),
        "labels": dataset.labels.astype(int).tolist(),
        "true_raps": [str(rap) for rap in case.true_raps],
        "metadata": _jsonify(case.metadata),
    }


def case_from_dict(data: Dict) -> LocalizationCase:
    """Inverse of :func:`case_to_dict`."""
    schema = schema_from_dict(data["schema"])
    dataset = FineGrainedDataset(
        schema,
        np.asarray(data["codes"], dtype=np.int64).reshape(-1, schema.n_attributes),
        np.asarray(data["v"], dtype=float),
        np.asarray(data["f"], dtype=float),
        np.asarray(data["labels"], dtype=bool),
    )
    raps = tuple(AttributeCombination.parse(text) for text in data["true_raps"])
    return LocalizationCase(
        case_id=data["case_id"],
        dataset=dataset,
        true_raps=raps,
        metadata=dict(data.get("metadata", {})),
    )


def save_cases(cases: Sequence[LocalizationCase], path: PathLike) -> None:
    """Persist a case list; the suffix picks the format (``.npz`` or JSON)."""
    path = Path(path)
    if path.suffix == ".npz":
        save_cases_npz(cases, path)
        return
    payload = {"format": "repro.cases.v1", "cases": [case_to_dict(c) for c in cases]}
    with path.open("w") as handle:
        json.dump(payload, handle)


def load_cases(path: PathLike) -> List[LocalizationCase]:
    """Load a case list written by :func:`save_cases` (format by suffix)."""
    path = Path(path)
    if path.suffix == ".npz":
        return load_cases_npz(path)
    with path.open() as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro.cases.v1":
        raise ValueError(f"{path} is not a repro case bundle")
    return [case_from_dict(entry) for entry in payload["cases"]]


#: Format tag embedded in the npz header; bump on layout changes.
NPZ_FORMAT = "repro.cases.npz.v1"


def save_cases_npz(cases: Sequence[LocalizationCase], path: PathLike) -> None:
    """Persist a case list as one uncompressed ``.npz`` archive.

    The leaf-table arrays (``codes``, ``v``, ``f``, ``labels``) are written
    as raw numpy buffers — dtypes and bit patterns survive exactly, unlike
    the JSON path's ``tolist()``/re-parse round trip — and everything
    non-array (schema, RAP strings, metadata) rides in a JSON header
    stored as a ``uint8`` byte array, so loading never needs
    ``allow_pickle``.
    """
    path = Path(path)
    with path.open("wb") as handle:
        write_cases_npz(cases, handle)


def write_cases_npz(cases: Sequence[LocalizationCase], handle) -> None:
    """:func:`save_cases_npz` onto an open binary file object.

    Split out so the fleet's segment log (:mod:`repro.fleet.store`) can
    embed npz-encoded cases as in-memory record blobs without a
    filesystem round trip.
    """
    header = {
        "format": NPZ_FORMAT,
        "cases": [
            {
                "case_id": case.case_id,
                "schema": schema_to_dict(case.dataset.schema),
                "true_raps": [str(rap) for rap in case.true_raps],
                "metadata": _jsonify(case.metadata),
            }
            for case in cases
        ],
    }
    arrays = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    }
    for i, case in enumerate(cases):
        dataset = case.dataset
        arrays[f"codes_{i}"] = dataset.codes
        arrays[f"v_{i}"] = dataset.v
        arrays[f"f_{i}"] = dataset.f
        arrays[f"labels_{i}"] = dataset.labels
    np.savez(handle, **arrays)


def cases_to_npz_bytes(cases: Sequence[LocalizationCase]) -> bytes:
    """The exact :func:`save_cases_npz` byte stream, in memory."""
    buffer = io.BytesIO()
    write_cases_npz(cases, buffer)
    return buffer.getvalue()


def cases_from_npz_bytes(data: bytes) -> List[LocalizationCase]:
    """Inverse of :func:`cases_to_npz_bytes` (bit-exact round trip)."""
    return read_cases_npz(io.BytesIO(data))


def load_cases_npz(path: PathLike) -> List[LocalizationCase]:
    """Load a case list written by :func:`save_cases_npz`."""
    return read_cases_npz(Path(path))


def read_cases_npz(source) -> List[LocalizationCase]:
    """:func:`load_cases_npz` from a path or open binary file object."""
    with np.load(source, allow_pickle=False) as archive:
        if "header" not in archive:
            raise ValueError(f"{source} is not a repro npz case bundle")
        header = json.loads(archive["header"].tobytes().decode("utf-8"))
        if header.get("format") != NPZ_FORMAT:
            raise ValueError(f"{source} is not a repro npz case bundle")
        cases = []
        for i, entry in enumerate(header["cases"]):
            schema = schema_from_dict(entry["schema"])
            dataset = FineGrainedDataset(
                schema,
                archive[f"codes_{i}"],
                archive[f"v_{i}"],
                archive[f"f_{i}"],
                archive[f"labels_{i}"],
            )
            raps = tuple(
                AttributeCombination.parse(text) for text in entry["true_raps"]
            )
            cases.append(
                LocalizationCase(
                    case_id=entry["case_id"],
                    dataset=dataset,
                    true_raps=raps,
                    metadata=dict(entry.get("metadata", {})),
                )
            )
    return cases


def _jsonify(value):
    """Coerce numpy scalars / tuples in metadata into JSON-native types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value
