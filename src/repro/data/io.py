"""Serialization of schemas, leaf tables, and localization cases.

Two interchange formats are provided:

* **CSV** for the leaf table itself — one column per attribute plus
  ``v``, ``f``, ``label`` — matching the layout of Table III and of the
  published Squeeze dataset's per-timestamp CSV files, so externally
  produced data can be dropped in.
* **JSON** for full :class:`~repro.data.injection.LocalizationCase` bundles
  (schema + leaf table + ground-truth RAPs + metadata), used to persist
  generated benchmarks so experiment runs are replayable byte-for-byte.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from ..core.attribute import AttributeCombination, AttributeSchema
from .dataset import FineGrainedDataset
from .injection import LocalizationCase

__all__ = [
    "dataset_to_csv",
    "dataset_from_csv",
    "schema_to_dict",
    "schema_from_dict",
    "case_to_dict",
    "case_from_dict",
    "save_cases",
    "load_cases",
]

PathLike = Union[str, Path]


def schema_to_dict(schema: AttributeSchema) -> Dict:
    """JSON-ready representation of a schema."""
    return {name: list(schema.elements(name)) for name in schema.names}


def schema_from_dict(data: Dict) -> AttributeSchema:
    """Inverse of :func:`schema_to_dict`."""
    return AttributeSchema({name: list(elements) for name, elements in data.items()})


def dataset_to_csv(dataset: FineGrainedDataset, path: PathLike) -> None:
    """Write a leaf table as CSV with attribute columns plus ``v,f,label``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(dataset.schema.names) + ["v", "f", "label"])
        for values, v, f, label in dataset.to_records():
            writer.writerow(list(values) + [repr(v), repr(f), int(label)])


def dataset_from_csv(path: PathLike, schema: AttributeSchema) -> FineGrainedDataset:
    """Read a leaf table written by :func:`dataset_to_csv` (or compatible)."""
    path = Path(path)
    rows = []
    labels = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path} is empty")
        expected = list(schema.names) + ["v", "f", "label"]
        if header != expected:
            raise ValueError(f"{path} header {header} does not match schema columns {expected}")
        n_attrs = schema.n_attributes
        for line in reader:
            if not line:
                continue
            values = tuple(line[:n_attrs])
            rows.append((values, float(line[n_attrs]), float(line[n_attrs + 1])))
            labels.append(bool(int(line[n_attrs + 2])))
    return FineGrainedDataset.from_rows(schema, rows, labels)


def case_to_dict(case: LocalizationCase) -> Dict:
    """JSON-ready representation of a localization case."""
    dataset = case.dataset
    return {
        "case_id": case.case_id,
        "schema": schema_to_dict(dataset.schema),
        "codes": dataset.codes.tolist(),
        "v": dataset.v.tolist(),
        "f": dataset.f.tolist(),
        "labels": dataset.labels.astype(int).tolist(),
        "true_raps": [str(rap) for rap in case.true_raps],
        "metadata": _jsonify(case.metadata),
    }


def case_from_dict(data: Dict) -> LocalizationCase:
    """Inverse of :func:`case_to_dict`."""
    schema = schema_from_dict(data["schema"])
    dataset = FineGrainedDataset(
        schema,
        np.asarray(data["codes"], dtype=np.int64).reshape(-1, schema.n_attributes),
        np.asarray(data["v"], dtype=float),
        np.asarray(data["f"], dtype=float),
        np.asarray(data["labels"], dtype=bool),
    )
    raps = tuple(AttributeCombination.parse(text) for text in data["true_raps"])
    return LocalizationCase(
        case_id=data["case_id"],
        dataset=dataset,
        true_raps=raps,
        metadata=dict(data.get("metadata", {})),
    )


def save_cases(cases: Sequence[LocalizationCase], path: PathLike) -> None:
    """Persist a case list as one JSON document."""
    path = Path(path)
    payload = {"format": "repro.cases.v1", "cases": [case_to_dict(c) for c in cases]}
    with path.open("w") as handle:
        json.dump(payload, handle)


def load_cases(path: PathLike) -> List[LocalizationCase]:
    """Load a case list written by :func:`save_cases`."""
    path = Path(path)
    with path.open() as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro.cases.v1":
        raise ValueError(f"{path} is not a repro case bundle")
    return [case_from_dict(entry) for entry in payload["cases"]]


def _jsonify(value):
    """Coerce numpy scalars / tuples in metadata into JSON-native types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value
