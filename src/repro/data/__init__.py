"""Dataset substrates: leaf tables, generators, simulators, and IO."""

from .cdn_simulator import CDNSimulator, CDNSimulatorConfig, CDNSnapshot
from .dataset import CuboidAggregate, FineGrainedDataset, deviation
from .derived import RATIO, DerivedKPI, FundamentalMeasure, MultiKPIDataset
from .injection import InjectionConfig, LocalizationCase, inject_failures, sample_raps
from .io import (
    case_from_dict,
    case_to_dict,
    dataset_from_csv,
    dataset_to_csv,
    load_cases,
    save_cases,
    schema_from_dict,
    schema_to_dict,
)
from .rapmd import RAPMDConfig, generate_rapmd
from .schema import cdn_schema, paper_example_schema, schema_from_sizes, small_schema
from .squeeze_dataset import NOISE_LEVELS, SqueezeDatasetConfig, generate_squeeze_dataset
from .summary import WorkloadSummary, summarize_cases
from .squeeze_format import (
    infer_schema_from_timestamp_csv,
    load_squeeze_directory,
    load_timestamp_csv,
    parse_ground_truth_set,
)
from .trace import Incident, IncidentSchedule, TraceStep, generate_trace
from .validation import Finding, ValidationReport, validate_case, validate_cases

__all__ = [
    "CDNSimulator",
    "CDNSimulatorConfig",
    "CDNSnapshot",
    "CuboidAggregate",
    "FineGrainedDataset",
    "deviation",
    "RATIO",
    "DerivedKPI",
    "FundamentalMeasure",
    "MultiKPIDataset",
    "InjectionConfig",
    "LocalizationCase",
    "inject_failures",
    "sample_raps",
    "case_from_dict",
    "case_to_dict",
    "dataset_from_csv",
    "dataset_to_csv",
    "load_cases",
    "save_cases",
    "schema_from_dict",
    "schema_to_dict",
    "RAPMDConfig",
    "generate_rapmd",
    "cdn_schema",
    "paper_example_schema",
    "schema_from_sizes",
    "small_schema",
    "NOISE_LEVELS",
    "SqueezeDatasetConfig",
    "generate_squeeze_dataset",
    "infer_schema_from_timestamp_csv",
    "load_squeeze_directory",
    "load_timestamp_csv",
    "parse_ground_truth_set",
    "Incident",
    "IncidentSchedule",
    "TraceStep",
    "generate_trace",
    "WorkloadSummary",
    "summarize_cases",
    "Finding",
    "ValidationReport",
    "validate_case",
    "validate_cases",
]
