"""Derived (non-additive) KPIs over fundamental leaf measures (§III-A).

The paper distinguishes *fundamental* KPIs (additive: traffic volume,
request count — coarse values are sums of leaf values, Fig. 4) from
*derived* KPIs (non-additive: cache hit ratio, average response delay —
obtained from fundamental KPIs through a transformation
``K^D = g(K^F_1, ..., K^F_m)``).  Existing localizers design special
treatment for derived KPIs (Adtributor's derived-measure mode, Squeeze's
generalized ripple effect); RAPMiner needs none, because it only consumes
*leaf anomaly labels* — this module exists to build those labels for
derived KPIs and to aggregate them correctly for the baselines.

A :class:`MultiKPIDataset` stores several named fundamental measures per
leaf (each with actual and forecast values); a :class:`DerivedKPI`
combines them with an arbitrary transformation, evaluated *after*
aggregation — the only correct order for non-additive measures::

    hit_ratio = DerivedKPI("hit_ratio", ("hits", "requests"),
                           lambda hits, requests: hits / requests)
    v, f = multi.derived_values(hit_ratio, combination)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.attribute import AttributeCombination, AttributeSchema
from ..core.cuboid import Cuboid
from .dataset import FineGrainedDataset

__all__ = ["FundamentalMeasure", "DerivedKPI", "MultiKPIDataset", "RATIO", "SAFE_DIV"]


def SAFE_DIV(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise division returning 0 where the denominator is 0."""
    numerator = np.asarray(numerator, dtype=float)
    denominator = np.asarray(denominator, dtype=float)
    out = np.zeros(np.broadcast(numerator, denominator).shape)
    np.divide(numerator, denominator, out=out, where=denominator != 0)
    return out


#: The canonical ratio transformation (hit ratio, error rate, ...).
RATIO: Callable[[np.ndarray, np.ndarray], np.ndarray] = SAFE_DIV


@dataclass(frozen=True)
class FundamentalMeasure:
    """One additive measure: per-leaf actual and forecast arrays."""

    name: str
    v: np.ndarray
    f: np.ndarray


@dataclass(frozen=True)
class DerivedKPI:
    """A named transformation over fundamental measures.

    ``transform`` receives one array (or scalar) per input, in ``inputs``
    order, and must be vectorized (plain numpy arithmetic qualifies).
    """

    name: str
    inputs: Tuple[str, ...]
    transform: Callable[..., np.ndarray]

    def __init__(self, name: str, inputs: Sequence[str], transform: Callable[..., np.ndarray]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "transform", transform)
        if not self.inputs:
            raise ValueError("a derived KPI needs at least one input measure")


class MultiKPIDataset:
    """Several fundamental measures over one leaf population.

    Shares the schema/codes machinery of :class:`FineGrainedDataset`; each
    measure can be viewed as its own leaf table, and derived KPIs are
    evaluated on aggregates (the Fig. 4 pipeline: aggregate fundamentals
    first, then apply ``g``).
    """

    def __init__(
        self,
        schema: AttributeSchema,
        codes: np.ndarray,
        measures: Mapping[str, Tuple[np.ndarray, np.ndarray]],
    ):
        if not measures:
            raise ValueError("need at least one measure")
        self.schema = schema
        self._measures: Dict[str, FundamentalMeasure] = {}
        base: Optional[FineGrainedDataset] = None
        for name, (v, f) in measures.items():
            table = FineGrainedDataset(schema, codes, v, f)  # validates shapes
            if base is None:
                base = table
            self._measures[name] = FundamentalMeasure(name, table.v, table.f)
        assert base is not None
        self._base = base
        self.codes = base.codes

    # -- introspection ---------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._base.n_rows

    @property
    def measure_names(self) -> Tuple[str, ...]:
        return tuple(self._measures)

    def measure(self, name: str) -> FundamentalMeasure:
        try:
            return self._measures[name]
        except KeyError:
            raise KeyError(f"unknown measure {name!r}") from None

    def as_dataset(self, name: str, labels: Optional[np.ndarray] = None) -> FineGrainedDataset:
        """View one fundamental measure as a (optionally labelled) leaf table."""
        m = self.measure(name)
        return FineGrainedDataset(self.schema, self.codes, m.v, m.f, labels)

    # -- derived evaluation ------------------------------------------------------

    def leaf_derived(self, kpi: DerivedKPI) -> Tuple[np.ndarray, np.ndarray]:
        """Per-leaf derived values: ``(actual, forecast)`` arrays."""
        v_inputs = [self.measure(name).v for name in kpi.inputs]
        f_inputs = [self.measure(name).f for name in kpi.inputs]
        return kpi.transform(*v_inputs), kpi.transform(*f_inputs)

    def derived_values(
        self, kpi: DerivedKPI, combination: AttributeCombination
    ) -> Tuple[float, float]:
        """Derived KPI of one combination: aggregate fundamentals, then ``g``.

        This is the paper's Fig. 4 order — summing a ratio would be wrong;
        the ratio of sums is the true coarse-grained value.
        """
        mask = self._base.mask_of(combination)
        v_inputs = [float(self.measure(name).v[mask].sum()) for name in kpi.inputs]
        f_inputs = [float(self.measure(name).f[mask].sum()) for name in kpi.inputs]
        return float(kpi.transform(*v_inputs)), float(kpi.transform(*f_inputs))

    def derived_cuboid(
        self, kpi: DerivedKPI, cuboid: Cuboid
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Derived KPI for every occupied combination of *cuboid*.

        Returns ``(codes, actual, forecast)`` where ``codes`` matches
        :meth:`FineGrainedDataset.aggregate`'s layout.
        """
        aggregates = {
            name: self.as_dataset(name).aggregate(cuboid) for name in kpi.inputs
        }
        first = aggregates[kpi.inputs[0]]
        v = kpi.transform(*[aggregates[name].v_sum for name in kpi.inputs])
        f = kpi.transform(*[aggregates[name].f_sum for name in kpi.inputs])
        return first.codes, np.asarray(v, dtype=float), np.asarray(f, dtype=float)

    def label_by_derived(
        self,
        kpi: DerivedKPI,
        detector,
        measure_for_values: Optional[str] = None,
    ) -> FineGrainedDataset:
        """Leaf labels from a derived KPI, packaged for any localizer.

        The detector sees the per-leaf derived actual/forecast pair; the
        returned leaf table carries those labels together with the values
        of ``measure_for_values`` (default: the KPI's first input) so
        value-based baselines still receive meaningful additive volumes.
        This is exactly the interface split the paper highlights: RAPMiner
        reads only the labels, so fundamental vs derived makes no
        difference to it.
        """
        actual, forecast = self.leaf_derived(kpi)
        labels = detector.detect(actual, forecast)
        base_name = measure_for_values or kpi.inputs[0]
        return self.as_dataset(base_name, labels)
