"""Temporal traces with scheduled incidents, for operational evaluation.

The paper's datasets freeze single alarmed time points; evaluating the
*operational loop* (alarm latency, false alarms, localization at alarm
time) needs a continuous trace with known incident windows.
:class:`IncidentSchedule` plans incidents (scope, window, severity) over a
simulated horizon and :func:`generate_trace` materializes per-interval
leaf values with those incidents applied multiplicatively on top of the
CDN substrate's seasonal/noisy background.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.attribute import AttributeCombination
from .cdn_simulator import CDNSimulator

__all__ = ["Incident", "IncidentSchedule", "TraceStep", "generate_trace"]


@dataclass(frozen=True)
class Incident:
    """One scheduled incident: a scope loses a fraction of its traffic."""

    #: Affected scope (any attribute combination).
    pattern: AttributeCombination
    #: First affected interval index (inclusive).
    start: int
    #: Last affected interval index (inclusive).
    end: int
    #: Fraction of the scope's traffic that *remains* during the incident.
    retain_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError("incident window must satisfy 0 <= start <= end")
        if not 0.0 <= self.retain_fraction < 1.0:
            raise ValueError("retain_fraction must be in [0, 1)")

    def active_at(self, step: int) -> bool:
        return self.start <= step <= self.end


@dataclass
class IncidentSchedule:
    """A set of incidents over a trace horizon."""

    incidents: List[Incident] = field(default_factory=list)

    def add(self, incident: Incident) -> "IncidentSchedule":
        self.incidents.append(incident)
        return self

    def active_at(self, step: int) -> List[Incident]:
        return [i for i in self.incidents if i.active_at(step)]

    def truth_at(self, step: int) -> List[AttributeCombination]:
        """Ground-truth affected scopes at *step* (may be empty)."""
        return [i.pattern for i in self.active_at(step)]

    @property
    def incident_steps(self) -> List[int]:
        steps: List[int] = []
        for incident in self.incidents:
            steps.extend(range(incident.start, incident.end + 1))
        return sorted(set(steps))


@dataclass(frozen=True)
class TraceStep:
    """One materialized interval of the trace."""

    index: int
    #: Simulator minute this interval samples.
    simulator_step: int
    values: np.ndarray
    truth: Tuple[AttributeCombination, ...]


def generate_trace(
    simulator: CDNSimulator,
    schedule: IncidentSchedule,
    n_steps: int,
    sample_every: int = 30,
    start_minute: int = 0,
) -> Iterator[TraceStep]:
    """Yield trace intervals with the schedule's incidents applied.

    Each interval samples the simulator ``sample_every`` minutes apart;
    active incidents multiply their scope's leaf values by
    ``retain_fraction``.  Overlapping incidents compose multiplicatively.
    """
    if n_steps < 0:
        raise ValueError("n_steps must be non-negative")
    if sample_every < 1:
        raise ValueError("sample_every must be positive")
    codes = None
    masks = {}
    for index in range(n_steps):
        minute = start_minute + index * sample_every
        snapshot = simulator.snapshot(minute)
        if codes is None:
            codes = snapshot.codes
            probe = snapshot.to_dataset()
            for incident in schedule.incidents:
                masks[incident.pattern] = probe.mask_of(incident.pattern)
        values = snapshot.v.copy()
        active = schedule.active_at(index)
        for incident in active:
            values[masks[incident.pattern]] *= incident.retain_fraction
        yield TraceStep(
            index=index,
            simulator_step=minute,
            values=values,
            truth=tuple(i.pattern for i in active),
        )
