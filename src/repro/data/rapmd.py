"""RAPMD: the paper's semi-synthetic CDN localization dataset (§V-A).

The paper creates RAPMD by taking 105 random time points of a 35-day
ISP-operated CDN trace and injecting failures with two kinds of randomness:

* **Randomness 1** — each time point receives between 1 and 3 RAPs; *any*
  dimension can be selected for each RAP and the RAPs of one time point may
  live in different cuboids (unlike the Squeeze dataset).
* **Randomness 2** — every fine-grained leaf below a RAP draws its own
  relative deviation ``Dev ~ U[0.1, 0.9]`` while normal leaves draw
  ``Dev ~ U[-0.02, 0.09]``; forecasts are rebuilt through Eq. 5.  This
  deliberately breaks Squeeze's vertical assumption (descendants of one RAP
  no longer share a magnitude) and its horizontal assumption (deviations of
  different failures may coincide).

We reproduce the construction on top of the synthetic CDN substrate
(:mod:`repro.data.cdn_simulator`), which replaces the proprietary trace —
see DESIGN.md §2 for why only the background marginal matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.attribute import AttributeSchema
from .cdn_simulator import STEPS_PER_DAY, CDNSimulator, CDNSimulatorConfig
from .injection import InjectionConfig, LocalizationCase, inject_failures, sample_raps

__all__ = ["RAPMDConfig", "generate_rapmd"]


@dataclass
class RAPMDConfig:
    """Generation knobs; defaults match the paper's description."""

    #: Number of injected time points (the paper injects 105 failures).
    n_cases: int = 105
    #: Days of background data the time points are drawn from.
    n_days: int = 35
    #: Inclusive range of the per-case RAP count (Randomness 1).
    rap_count_range: Tuple[int, int] = (1, 3)
    #: Candidate RAP dimensions; the paper observes many 3-dimensional RAPs.
    rap_dimensions: Tuple[int, ...] = (1, 2, 3)
    #: Deviation ranges and labelling (Randomness 2).
    injection: InjectionConfig = field(default_factory=InjectionConfig)
    #: Minimum leaf support a sampled RAP must have.
    min_rap_support: int = 4
    seed: int = 0


def generate_rapmd(
    schema: Optional[AttributeSchema] = None,
    config: Optional[RAPMDConfig] = None,
    simulator_config: Optional[CDNSimulatorConfig] = None,
) -> List[LocalizationCase]:
    """Generate the RAPMD benchmark: labelled cases with mixed-cuboid RAPs.

    Parameters
    ----------
    schema:
        CDN schema; defaults to the full Table I schema.  Tests pass a
        scaled-down schema for speed.

    Returns
    -------
    A list of :class:`LocalizationCase`; ``metadata`` records the sampled
    time step and the per-case RAP count.
    """
    cfg = config if config is not None else RAPMDConfig()
    rng = np.random.default_rng(cfg.seed)
    sim_cfg = simulator_config if simulator_config is not None else CDNSimulatorConfig(
        seed=cfg.seed + 1
    )
    simulator = CDNSimulator(schema, sim_cfg)

    horizon = cfg.n_days * STEPS_PER_DAY
    steps = rng.choice(horizon, size=cfg.n_cases, replace=False)

    cases: List[LocalizationCase] = []
    for case_index, step in enumerate(sorted(int(s) for s in steps)):
        snapshot = simulator.snapshot(step)
        background = snapshot.to_dataset()
        n_raps = int(rng.integers(cfg.rap_count_range[0], cfg.rap_count_range[1] + 1))
        raps = sample_raps(
            background,
            n_raps,
            rng,
            dimensions=cfg.rap_dimensions,
            min_support=cfg.min_rap_support,
        )
        labelled, truth = inject_failures(background, raps, rng, cfg.injection)
        cases.append(
            LocalizationCase(
                case_id=f"rapmd-{case_index:03d}",
                dataset=labelled,
                true_raps=tuple(raps),
                metadata={
                    "step": step,
                    "n_raps": n_raps,
                    "ground_truth_anomalous_leaves": int(truth.sum()),
                },
            )
        )
    return cases
