"""Squeeze-style semi-synthetic dataset (ISSRE'19), as used in Fig. 8(a)/9(a).

The published Squeeze dataset groups cases by ``(n_dim, n_raps)`` — the
dimension of the cuboid the RAPs live in and how many RAPs one failure has —
and obeys two assumptions the RAPMiner paper calls out:

* **Vertical assumption** — every fine-grained descendant of the same RAP
  carries the *same* relative anomaly magnitude.
* **Horizontal assumption** — different failures (cases) carry *different*
  magnitudes.

Additionally all RAPs of one case live in a single cuboid.  Noise levels
(B0, B1, ...) perturb the leaf anomaly labels; the paper evaluates on B0
(clean labels), which is our default.

The original dataset's background values come from a production system we
do not have; we draw heavy-tailed lognormal leaf volumes instead, which
preserves the only property the search algorithms see — a skewed, sparse
leaf-volume marginal (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.attribute import AttributeSchema
from ..core.cuboid import cuboids_in_layer
from .dataset import FineGrainedDataset
from .injection import InjectionConfig, LocalizationCase, inject_failures, sample_raps
from .schema import schema_from_sizes

__all__ = ["SqueezeDatasetConfig", "NOISE_LEVELS", "generate_squeeze_dataset"]

#: Label-flip probability per published noise level; the paper uses B0.
NOISE_LEVELS: Dict[str, float] = {"B0": 0.0, "B1": 0.01, "B2": 0.05, "B3": 0.10}

#: The paper's Fig. 8(a)/9(a) group keys: (RAP dimension, RAP count).
DEFAULT_GROUPS: Tuple[Tuple[int, int], ...] = (
    (1, 1), (1, 2), (1, 3),
    (2, 1), (2, 2), (2, 3),
    (3, 1), (3, 2), (3, 3),
)


@dataclass
class SqueezeDatasetConfig:
    """Generation knobs for the Squeeze-style grouped dataset."""

    #: Element counts per attribute of the synthetic schema.
    attribute_sizes: Tuple[int, ...] = (10, 8, 6, 5)
    #: Cases generated per (n_dim, n_raps) group.
    cases_per_group: int = 25
    #: Group keys to generate.
    groups: Tuple[Tuple[int, int], ...] = DEFAULT_GROUPS
    #: Noise level name from :data:`NOISE_LEVELS`.
    noise_level: str = "B0"
    #: Range the per-case anomaly magnitude is drawn from (horizontal assumption).
    case_dev_range: Tuple[float, float] = (0.15, 0.85)
    #: Deviation ranges for normal leaves and the detection threshold.
    injection: InjectionConfig = field(default_factory=InjectionConfig)
    #: Lognormal parameters of the background leaf volumes.
    volume_log_mean: float = 4.0
    volume_log_sigma: float = 1.2
    #: Minimum leaf support a sampled RAP must have.
    min_rap_support: int = 4
    seed: int = 0


def _background(
    schema: AttributeSchema, cfg: SqueezeDatasetConfig, rng: np.random.Generator
) -> FineGrainedDataset:
    """Heavy-tailed leaf volumes over the full cross product."""
    n = schema.n_leaves
    v = rng.lognormal(mean=cfg.volume_log_mean, sigma=cfg.volume_log_sigma, size=n)
    return FineGrainedDataset.full(schema, v, v.copy())


def generate_squeeze_dataset(
    config: Optional[SqueezeDatasetConfig] = None,
) -> List[LocalizationCase]:
    """Generate grouped cases under the vertical/horizontal assumptions.

    Each case's ``metadata`` carries ``group`` (its ``(n_dim, n_raps)`` key),
    the shared case deviation, and the noise level, so experiment runners can
    slice results exactly like Fig. 8(a)/9(a).
    """
    cfg = config if config is not None else SqueezeDatasetConfig()
    if cfg.noise_level not in NOISE_LEVELS:
        raise KeyError(f"unknown noise level {cfg.noise_level!r}")
    label_noise = NOISE_LEVELS[cfg.noise_level]
    rng = np.random.default_rng(cfg.seed)
    schema = schema_from_sizes(cfg.attribute_sizes)
    max_dim = max(dim for dim, _ in cfg.groups)
    if max_dim >= schema.n_attributes:
        raise ValueError(
            "group dimensions must be below the attribute count so RAPs stay non-leaf"
        )

    injection = InjectionConfig(
        anomalous_dev_range=cfg.injection.anomalous_dev_range,
        normal_dev_range=cfg.injection.normal_dev_range,
        detection_threshold=cfg.injection.detection_threshold,
        label_noise=label_noise,
        epsilon=cfg.injection.epsilon,
    )

    # Horizontal assumption: draw distinct per-case magnitudes by spacing
    # them over the configured range with a small jitter.
    total_cases = len(cfg.groups) * cfg.cases_per_group
    low, high = cfg.case_dev_range
    magnitudes = np.linspace(low, high, total_cases)
    magnitudes += rng.uniform(-0.5, 0.5, total_cases) * (high - low) / max(total_cases, 1)
    magnitudes = np.clip(magnitudes, injection.anomalous_dev_range[0] + 0.01, 0.95)
    rng.shuffle(magnitudes)

    cases: List[LocalizationCase] = []
    case_counter = 0
    for group in cfg.groups:
        n_dim, n_raps = group
        layer_cuboids = cuboids_in_layer(schema.n_attributes, n_dim)
        # A combination of a cuboid covers n_leaves / |cuboid| leaves; skip
        # cuboids too fine for the configured minimum support (their RAPs
        # could never be sampled), falling back to all when none qualifies.
        feasible = [
            c
            for c in layer_cuboids
            if schema.n_leaves // c.length(schema) >= cfg.min_rap_support
        ]
        usable_cuboids = feasible if feasible else layer_cuboids
        for i in range(cfg.cases_per_group):
            background = _background(schema, cfg, rng)
            cuboid = usable_cuboids[int(rng.integers(len(usable_cuboids)))]
            min_support = min(
                cfg.min_rap_support, schema.n_leaves // cuboid.length(schema)
            )
            raps = sample_raps(
                background,
                n_raps,
                rng,
                cuboid=cuboid,
                min_support=max(1, min_support),
            )
            case_dev = float(magnitudes[case_counter])
            # Vertical assumption: all leaves of every RAP of this case share
            # the case's magnitude.
            labelled, truth = inject_failures(
                background, raps, rng, injection, per_rap_dev=[case_dev] * len(raps)
            )
            cases.append(
                LocalizationCase(
                    case_id=f"squeeze-{cfg.noise_level}-{n_dim}{n_raps}-{i:03d}",
                    dataset=labelled,
                    true_raps=tuple(raps),
                    metadata={
                        "group": group,
                        "noise_level": cfg.noise_level,
                        "case_dev": case_dev,
                        "cuboid": cuboid.attribute_indices,
                        "ground_truth_anomalous_leaves": int(truth.sum()),
                    },
                )
            )
            case_counter += 1
    return cases
