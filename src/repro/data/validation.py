"""Well-posedness validation of localization cases and bundles.

Generated or imported benchmarks can silently violate the assumptions the
algorithms and metrics rely on; :func:`validate_case` audits one
:class:`~repro.data.injection.LocalizationCase` and returns a structured
list of findings instead of failing on first error:

* **errors** (the case is unusable as ground truth):
  schema violations; duplicate / ancestor-related RAPs (Definition 1
  cannot hold for both); RAPs with zero support in the leaf table;
* **warnings** (legal but suspicious):
  RAPs whose anomaly confidence is below a plausibility floor (a
  "ground-truth" scope that is mostly healthy); anomalous leaves entirely
  outside every RAP (label noise beyond the declared level); RAPs covering
  most of the table (near-degenerate localization).

``repro validate --cases bundle.json`` runs this over a saved bundle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .injection import LocalizationCase

__all__ = ["Finding", "ValidationReport", "validate_case", "validate_cases"]


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    case_id: str
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.case_id}: {self.message}"


@dataclass
class ValidationReport:
    """All findings over a case collection."""

    findings: List[Finding] = field(default_factory=list)
    n_cases: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not self.errors

    def render(self) -> str:
        lines = [
            f"validated {self.n_cases} cases: "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        ]
        lines.extend(str(f) for f in self.findings)
        return "\n".join(lines)


def validate_case(
    case: LocalizationCase,
    min_rap_confidence: float = 0.5,
    max_unexplained_ratio: float = 0.1,
    max_rap_coverage: float = 0.8,
) -> List[Finding]:
    """Audit one case; returns findings (empty = clean)."""
    findings: List[Finding] = []
    dataset = case.dataset

    def error(message: str) -> None:
        findings.append(Finding(case.case_id, "error", message))

    def warning(message: str) -> None:
        findings.append(Finding(case.case_id, "warning", message))

    if not case.true_raps:
        error("case has no ground-truth RAPs")
        return findings

    # Schema conformance.
    for rap in case.true_raps:
        try:
            dataset.schema.validate(rap)
        except (KeyError, ValueError) as exc:
            error(f"RAP {rap} does not fit the schema: {exc}")
            return findings
        if rap.layer == 0:
            error("the all-wildcard combination cannot be a RAP")

    # Mutual incomparability (Definition 1 must be satisfiable).
    raps = list(case.true_raps)
    for i, a in enumerate(raps):
        for b in raps[i + 1 :]:
            if a == b:
                error(f"duplicate RAP {a}")
            elif a.is_ancestor_of(b):
                error(f"RAP {a} is an ancestor of RAP {b}")
            elif b.is_ancestor_of(a):
                error(f"RAP {b} is an ancestor of RAP {a}")

    covered = np.zeros(dataset.n_rows, dtype=bool)
    for rap in raps:
        mask = dataset.mask_of(rap)
        support = int(mask.sum())
        if support == 0:
            error(f"RAP {rap} covers no leaf rows")
            continue
        covered |= mask
        confidence = float(dataset.labels[mask].sum()) / support
        if confidence < min_rap_confidence:
            warning(
                f"RAP {rap} has anomaly confidence {confidence:.2f} "
                f"(< {min_rap_confidence}) — ground truth is mostly healthy"
            )
        if support > max_rap_coverage * dataset.n_rows:
            warning(
                f"RAP {rap} covers {support}/{dataset.n_rows} leaves "
                f"(> {max_rap_coverage:.0%}) — near-degenerate scope"
            )

    n_anomalous = dataset.n_anomalous
    if n_anomalous == 0:
        warning("no leaf is labelled anomalous")
    else:
        unexplained = int((dataset.labels & ~covered).sum())
        ratio = unexplained / n_anomalous
        if ratio > max_unexplained_ratio:
            warning(
                f"{unexplained}/{n_anomalous} anomalous leaves "
                f"({ratio:.0%}) lie outside every RAP"
            )
    return findings


def validate_cases(cases: Sequence[LocalizationCase], **kwargs) -> ValidationReport:
    """Audit a whole collection."""
    report = ValidationReport(n_cases=len(cases))
    seen_ids = set()
    for case in cases:
        if case.case_id in seen_ids:
            report.findings.append(
                Finding(case.case_id, "error", "duplicate case_id in bundle")
            )
        seen_ids.add(case.case_id)
        report.findings.extend(validate_case(case, **kwargs))
    return report
