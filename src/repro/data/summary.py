"""Workload digests: describe a case collection before evaluating on it.

Localization scores are only interpretable against the workload's shape —
how many RAPs per case, at which dimensions, covering what share of the
leaves, over how skewed a volume distribution.  :func:`summarize_cases`
computes that digest; ``repro generate`` prints it so a saved bundle is
self-describing, and EXPERIMENTS.md's workload descriptions come from it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .injection import LocalizationCase

__all__ = ["WorkloadSummary", "summarize_cases"]


@dataclass
class WorkloadSummary:
    """Aggregate shape of a case collection."""

    n_cases: int = 0
    n_leaf_rows_min: int = 0
    n_leaf_rows_max: int = 0
    #: Distribution of per-case RAP counts, e.g. {1: 40, 2: 35, 3: 30}.
    rap_count_distribution: Counter = field(default_factory=Counter)
    #: Distribution of RAP dimensions over all RAPs.
    rap_dimension_distribution: Counter = field(default_factory=Counter)
    #: Per-case anomalous-leaf ratios.
    anomaly_ratios: List[float] = field(default_factory=list)
    #: Per-RAP leaf-coverage fractions.
    rap_coverages: List[float] = field(default_factory=list)
    #: Share of total volume held by the top decile of leaves, per case.
    volume_top_decile_shares: List[float] = field(default_factory=list)
    #: Fraction of cases whose RAPs span more than one cuboid.
    mixed_cuboid_fraction: float = 0.0

    @property
    def total_raps(self) -> int:
        return sum(self.rap_dimension_distribution.values())

    @property
    def mean_anomaly_ratio(self) -> float:
        if not self.anomaly_ratios:
            return 0.0
        return float(np.mean(self.anomaly_ratios))

    @property
    def median_rap_coverage(self) -> float:
        if not self.rap_coverages:
            return 0.0
        return float(np.median(self.rap_coverages))

    def render(self) -> str:
        lines = [
            f"{self.n_cases} cases, {self.n_leaf_rows_min}-{self.n_leaf_rows_max} leaf rows each",
            "RAPs per case:  "
            + ", ".join(
                f"{count}x{n}" for n, count in sorted(self.rap_count_distribution.items())
            ),
            "RAP dimensions: "
            + ", ".join(
                f"{count}x{d}-dim"
                for d, count in sorted(self.rap_dimension_distribution.items())
            ),
            f"mean anomalous-leaf ratio: {self.mean_anomaly_ratio * 100:.1f}%",
            f"median RAP leaf coverage:  {self.median_rap_coverage * 100:.2f}%",
            f"mixed-cuboid cases:        {self.mixed_cuboid_fraction * 100:.0f}%",
        ]
        if self.volume_top_decile_shares:
            lines.append(
                "volume skew (top-decile share): "
                f"{float(np.mean(self.volume_top_decile_shares)) * 100:.0f}%"
            )
        return "\n".join(lines)


def summarize_cases(cases: Sequence[LocalizationCase]) -> WorkloadSummary:
    """Compute the digest of *cases*."""
    summary = WorkloadSummary(n_cases=len(cases))
    if not cases:
        return summary
    row_counts = [case.dataset.n_rows for case in cases]
    summary.n_leaf_rows_min = min(row_counts)
    summary.n_leaf_rows_max = max(row_counts)
    mixed = 0
    for case in cases:
        dataset = case.dataset
        summary.rap_count_distribution[case.n_raps] += 1
        summary.anomaly_ratios.append(dataset.anomaly_ratio)
        cuboids = set()
        for rap in case.true_raps:
            summary.rap_dimension_distribution[rap.layer] += 1
            cuboids.add(rap.specified_indices)
            support = dataset.support_count(rap)
            summary.rap_coverages.append(
                support / dataset.n_rows if dataset.n_rows else 0.0
            )
        if len(cuboids) > 1:
            mixed += 1
        if dataset.n_rows:
            ordered = np.sort(dataset.v)[::-1]
            top = ordered[: max(1, len(ordered) // 10)].sum()
            total = ordered.sum()
            summary.volume_top_decile_shares.append(
                float(top / total) if total > 0 else 0.0
            )
    summary.mixed_cuboid_fraction = mixed / len(cases)
    return summary
