"""Failure injection into leaf snapshots (the paper's §V-A procedure).

Injection follows the paper exactly: a set of ground-truth RAPs is chosen;
every leaf that descends from a RAP receives a relative deviation ``Dev``
drawn from the anomalous range, every other leaf a ``Dev`` from the normal
range, and the forecast is reconstructed from the actual value through
Eq. 5::

    Dev = (f - v) / (f + eps)                 (Eq. 4)
    f   = (v + Dev * eps) / (1 - Dev)         (Eq. 5)

so the *actual* values keep the background trace's distribution while the
*forecast* encodes the injected anomaly.  Leaf anomaly labels — the input
RAPMiner consumes — are then produced by thresholding ``Dev`` midway
between the two ranges, optionally flipped with a noise probability to
emulate imperfect detectors (the Squeeze dataset's B1+ noise levels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.attribute import AttributeCombination, AttributeSchema
from ..core.cuboid import Cuboid, cuboids_in_layer
from .dataset import EPSILON, FineGrainedDataset

__all__ = [
    "LocalizationCase",
    "InjectionConfig",
    "sample_raps",
    "inject_failures",
]


@dataclass
class LocalizationCase:
    """One labelled anomaly-localization problem instance.

    ``dataset`` carries the leaf table with detection labels; ``true_raps``
    is the injected ground truth the localizers must recover.
    """

    case_id: str
    dataset: FineGrainedDataset
    true_raps: Tuple[AttributeCombination, ...]
    #: Free-form provenance (group key, injected deviations, noise level, ...).
    metadata: Dict = field(default_factory=dict)

    @property
    def n_raps(self) -> int:
        return len(self.true_raps)


@dataclass
class InjectionConfig:
    """Deviation ranges and labelling knobs of the injection procedure.

    Defaults are the paper's Randomness 2 ranges: anomalous leaves get
    ``Dev ~ U[0.1, 0.9]``, normal leaves ``Dev ~ U[-0.02, 0.09]``.
    """

    anomalous_dev_range: Tuple[float, float] = (0.1, 0.9)
    normal_dev_range: Tuple[float, float] = (-0.02, 0.09)
    #: Detection threshold on Dev; None = midpoint of the two ranges.
    detection_threshold: Optional[float] = None
    #: Probability of flipping each leaf label (0.0 = the B0 noise level).
    label_noise: float = 0.0
    epsilon: float = EPSILON

    def threshold(self) -> float:
        if self.detection_threshold is not None:
            return self.detection_threshold
        return 0.5 * (self.normal_dev_range[1] + self.anomalous_dev_range[0])


def _is_redundant(candidate: AttributeCombination, chosen: Sequence[AttributeCombination]) -> bool:
    """True when *candidate* overlaps the ancestry of any already-chosen RAP."""
    for other in chosen:
        if candidate == other:
            return True
        if candidate.is_ancestor_of(other) or other.is_ancestor_of(candidate):
            return True
    return False


def sample_raps(
    dataset: FineGrainedDataset,
    n_raps: int,
    rng: np.random.Generator,
    dimensions: Optional[Sequence[int]] = None,
    cuboid: Optional[Cuboid] = None,
    min_support: int = 2,
    max_coverage: float = 0.5,
    max_attempts: int = 500,
) -> List[AttributeCombination]:
    """Draw *n_raps* mutually incomparable RAPs with real support in *dataset*.

    Parameters
    ----------
    dimensions:
        Candidate RAP dimensions (cuboid layers).  The paper's Randomness 1
        allows any dimension per RAP; the Squeeze dataset instead fixes one
        ``cuboid`` for all RAPs of a case — pass it to enforce that.
    min_support:
        Minimum number of leaf rows a RAP must cover (avoids degenerate
        ground truths that no method could distinguish from noise).
    max_coverage:
        Upper bound on the fraction of all leaf rows one RAP may cover
        (a RAP covering everything would make the case trivial/ill-posed).

    Raises
    ------
    RuntimeError:
        If no valid draw is found within *max_attempts* (e.g. the dataset is
        too small for the requested number of disjoint RAPs).
    """
    schema = dataset.schema
    if dimensions is None:
        dimensions = list(range(1, schema.n_attributes))
    chosen: List[AttributeCombination] = []
    attempts = 0
    while len(chosen) < n_raps:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not sample {n_raps} disjoint RAPs after {max_attempts} attempts"
            )
        if cuboid is not None:
            target_cuboid = cuboid
        else:
            dim = int(rng.choice(np.asarray(list(dimensions))))
            layer_cuboids = cuboids_in_layer(schema.n_attributes, dim)
            target_cuboid = layer_cuboids[int(rng.integers(len(layer_cuboids)))]
        values: List[Optional[str]] = [None] * schema.n_attributes
        for attr_index in target_cuboid.attribute_indices:
            elements = schema.elements(attr_index)
            values[attr_index] = elements[int(rng.integers(len(elements)))]
        candidate = AttributeCombination(values)
        if _is_redundant(candidate, chosen):
            continue
        support = dataset.support_count(candidate)
        if support < min_support:
            continue
        if support > max_coverage * dataset.n_rows:
            continue
        chosen.append(candidate)
    return chosen


def inject_failures(
    dataset: FineGrainedDataset,
    raps: Sequence[AttributeCombination],
    rng: np.random.Generator,
    config: Optional[InjectionConfig] = None,
    per_rap_dev: Optional[Sequence[float]] = None,
) -> Tuple[FineGrainedDataset, np.ndarray]:
    """Overwrite forecasts of *dataset* so the given *raps* become anomalous.

    Parameters
    ----------
    per_rap_dev:
        When given, all leaves under RAP ``i`` share deviation
        ``per_rap_dev[i]`` — the Squeeze dataset's *vertical assumption*.
        When omitted, each anomalous leaf draws its own deviation from the
        anomalous range — RAPMD's Randomness 2, which deliberately breaks
        that assumption.

    Returns
    -------
    (labelled_dataset, ground_truth_mask):
        The dataset with reconstructed forecasts and detector labels, plus
        the noise-free ground-truth anomalous-leaf mask.
    """
    cfg = config if config is not None else InjectionConfig()
    if per_rap_dev is not None and len(per_rap_dev) != len(raps):
        raise ValueError("per_rap_dev must supply one deviation per RAP")

    n = dataset.n_rows
    dev = rng.uniform(cfg.normal_dev_range[0], cfg.normal_dev_range[1], size=n)
    truth = np.zeros(n, dtype=bool)
    for i, rap in enumerate(raps):
        mask = dataset.mask_of(rap)
        if per_rap_dev is not None:
            dev[mask] = per_rap_dev[i]
        else:
            dev[mask] = rng.uniform(
                cfg.anomalous_dev_range[0], cfg.anomalous_dev_range[1], size=int(mask.sum())
            )
        truth |= mask

    # Eq. 5: rebuild the forecast from the kept actual values.
    f = (dataset.v + dev * cfg.epsilon) / (1.0 - dev)

    labels = dev > cfg.threshold()
    if cfg.label_noise > 0.0:
        flips = rng.random(n) < cfg.label_noise
        labels = labels ^ flips

    labelled = FineGrainedDataset(dataset.schema, dataset.codes, dataset.v, f, labels)
    return labelled, truth
