"""Canonical attribute schemas used throughout the reproduction.

:func:`cdn_schema` reproduces Table I of the paper — the four-attribute
schema of the ISP-operated CDN (Location x 33, Access Type x 4, OS x 4,
Website x 20, hence 10 560 leaf combinations).  :func:`small_schema` and
:func:`paper_example_schema` build the small lattices the paper uses in its
worked examples (Fig. 6 / Fig. 7 / Table V).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.attribute import AttributeSchema

__all__ = ["cdn_schema", "paper_example_schema", "small_schema", "schema_from_sizes"]


def cdn_schema(
    n_locations: int = 33,
    n_access_types: int = 4,
    n_os: int = 4,
    n_websites: int = 20,
) -> AttributeSchema:
    """The paper's CDN schema (Table I), optionally scaled down.

    Element names follow the paper: ``L1..L33`` for locations,
    ``Site1..Site20`` for websites; access types and operating systems use
    the paper's concrete names when the requested count allows, falling back
    to generated names beyond them.
    """
    access_names = ["Wireless", "Fixed", "Cellular", "Satellite"]
    os_names = ["Android", "IOS", "Windows", "Linux"]

    def named(prefix: Sequence[str], count: int, fallback: str) -> list:
        if count <= len(prefix):
            return list(prefix[:count])
        return list(prefix) + [f"{fallback}{i}" for i in range(len(prefix) + 1, count + 1)]

    return AttributeSchema(
        {
            "location": [f"L{i}" for i in range(1, n_locations + 1)],
            "access_type": named(access_names, n_access_types, "Access"),
            "os": named(os_names, n_os, "OS"),
            "website": [f"Site{i}" for i in range(1, n_websites + 1)],
        }
    )


def paper_example_schema() -> AttributeSchema:
    """The 3-attribute (3, 2, 2) example of Fig. 6 / Fig. 7 / Table V."""
    return AttributeSchema(
        {
            "A": ["a1", "a2", "a3"],
            "B": ["b1", "b2"],
            "C": ["c1", "c2"],
        }
    )


def schema_from_sizes(sizes: Sequence[int], prefix: str = "attr") -> AttributeSchema:
    """A generic schema with the given element counts per attribute.

    Attribute ``i`` is named ``{prefix}{i}``; its elements are ``e{i}_{j}``.
    Used by the synthetic dataset generators and by property-based tests.
    """
    attributes: Dict[str, list] = {}
    for i, size in enumerate(sizes):
        if size < 1:
            raise ValueError("every attribute needs at least one element")
        attributes[f"{prefix}{i}"] = [f"e{i}_{j}" for j in range(size)]
    return AttributeSchema(attributes)


def small_schema() -> AttributeSchema:
    """A 4-attribute schema small enough for exhaustive brute-force checks."""
    return schema_from_sizes([4, 3, 3, 2])
