/* Native kernels for the hot aggregation trio (see docs/architecture.md).
 *
 * Contract with the numpy reference backend (repro/native/backend.py):
 *
 *   - All index/key/count buffers are C-contiguous int64; all value
 *     buffers are C-contiguous float64.  Output buffers arrive zeroed.
 *   - Per-bucket float additions happen in ascending row order within
 *     each disjoint key block, exactly as ``np.bincount`` accumulates,
 *     so the float lanes are bit-identical to the numpy path (every
 *     bucket is touched by exactly one block/case, and rows are walked
 *     ascending).  Integer lanes are exact in any order.
 *   - Every computed key is bounds-checked against its dense capacity;
 *     kernels return RAP_E_KEY_RANGE instead of writing out of bounds
 *     (the Python wrapper raises — this never fires for keys produced
 *     by the engine's validated geometry).
 *   - No libm calls: the entropy math stays in (batch-invariant) numpy
 *     because SIMD ``np.log`` is not bit-identical to libm ``log``.
 *
 * Compiled with ``cc -O3 -fPIC -shared -ffp-contract=off`` by
 * repro/native/build.py; -ffp-contract=off forbids FMA contraction so
 * accumulation rounding matches numpy's scalar adds.
 */

#include <stdint.h>
#include <stdlib.h>

#define RAPMINER_ABI_VERSION 1

#define RAP_OK 0
#define RAP_E_KEY_RANGE (-1)
#define RAP_E_ALLOC (-2)

int64_t rapminer_abi_version(void) { return RAPMINER_ABI_VERSION; }

/* Per-block compressed stride plan: the attribute positions with a
 * non-zero stride for one cuboid column of the stride matrix. */
typedef struct {
    int64_t n_terms;
    const int64_t *attrs;   /* into a shared scratch buffer */
    const int64_t *strides;
} block_plan;

static int build_plans(const int64_t *stride_matrix, int64_t n_attrs,
                       int64_t n_blocks, block_plan *plans,
                       int64_t **scratch_out) {
    int64_t *scratch = malloc((size_t)(2 * n_attrs * n_blocks) * sizeof(int64_t));
    if (scratch == NULL && n_attrs * n_blocks > 0) return RAP_E_ALLOC;
    int64_t used = 0;
    for (int64_t j = 0; j < n_blocks; j++) {
        int64_t *attrs = scratch + used;
        int64_t *strides = scratch + used + n_attrs;
        int64_t n_terms = 0;
        for (int64_t a = 0; a < n_attrs; a++) {
            int64_t stride = stride_matrix[a * n_blocks + j];
            if (stride != 0) {
                attrs[n_terms] = a;
                strides[n_terms] = stride;
                n_terms++;
            }
        }
        plans[j].n_terms = n_terms;
        plans[j].attrs = attrs;
        plans[j].strides = strides;
        used += 2 * n_attrs;
    }
    *scratch_out = scratch;
    return RAP_OK;
}

static inline int64_t row_key(const int64_t *row, const block_plan *plan) {
    int64_t key = 0;
    for (int64_t t = 0; t < plan->n_terms; t++)
        key += row[plan->attrs[t]] * plan->strides[t];
    return key;
}

/* Kernel 1 — fused layer aggregation: support, anomalous support and the
 * v/f sums of every cuboid of one batched pass, in one walk over the
 * rows per cuboid (no key concatenation, no weight tiling). */
int rapminer_fused_batch(
    const int64_t *codes, int64_t n_rows, int64_t n_attrs,
    const int64_t *stride_matrix,   /* n_attrs x n_blocks */
    const int64_t *offsets,         /* n_blocks */
    int64_t n_blocks, int64_t total,
    const int64_t *label_rows, int64_t n_label_rows,
    const double *v, const double *f,
    int64_t *support, int64_t *anomalous, double *v_sum, double *f_sum) {
    block_plan plans_stack[16];
    block_plan *plans = plans_stack;
    if (n_blocks > 16) {
        plans = malloc((size_t)n_blocks * sizeof(block_plan));
        if (plans == NULL) return RAP_E_ALLOC;
    }
    int64_t *scratch = NULL;
    int status = build_plans(stride_matrix, n_attrs, n_blocks, plans, &scratch);
    if (status == RAP_OK) {
        for (int64_t j = 0; j < n_blocks && status == RAP_OK; j++) {
            const block_plan *plan = &plans[j];
            const int64_t base = offsets[j];
            for (int64_t i = 0; i < n_rows; i++) {
                int64_t key = base + row_key(codes + i * n_attrs, plan);
                if ((uint64_t)key >= (uint64_t)total) {
                    status = RAP_E_KEY_RANGE;
                    break;
                }
                support[key] += 1;
                v_sum[key] += v[i];
                f_sum[key] += f[i];
            }
            for (int64_t r = 0; r < n_label_rows && status == RAP_OK; r++) {
                int64_t i = label_rows[r];
                int64_t key = base + row_key(codes + i * n_attrs, plan);
                if ((uint64_t)key >= (uint64_t)total) {
                    status = RAP_E_KEY_RANGE;
                    break;
                }
                anomalous[key] += 1;
            }
        }
    }
    free(scratch);
    if (plans != plans_stack) free(plans);
    return status;
}

/* Kernel 1b — stacked-weights bincount (the roll-up fast path): lane l
 * of bucket k accumulates weights[l][i] over rows with keys[i] == k,
 * ascending i, matching the interleaved-key numpy formulation. */
int rapminer_fused_bincount(
    const int64_t *keys, int64_t n,
    const double *weights,          /* lanes x n */
    int64_t lanes, int64_t capacity,
    double *out) {                  /* capacity x lanes */
    for (int64_t i = 0; i < n; i++) {
        int64_t key = keys[i];
        if ((uint64_t)key >= (uint64_t)capacity) return RAP_E_KEY_RANGE;
        double *row = out + key * lanes;
        for (int64_t l = 0; l < lanes; l++)
            row[l] += weights[l * n + i];
    }
    return RAP_OK;
}

int rapminer_count_bincount(
    const int64_t *keys, int64_t n, int64_t capacity, int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        int64_t key = keys[i];
        if ((uint64_t)key >= (uint64_t)capacity) return RAP_E_KEY_RANGE;
        out[key] += 1;
    }
    return RAP_OK;
}

int rapminer_weighted_bincount(
    const int64_t *keys, int64_t n, const double *weights,
    int64_t capacity, double *out) {
    for (int64_t i = 0; i < n; i++) {
        int64_t key = keys[i];
        if ((uint64_t)key >= (uint64_t)capacity) return RAP_E_KEY_RANGE;
        out[key] += weights[i];
    }
    return RAP_OK;
}

/* Kernel 2 — case-stacked anomalous supports: every (case, cuboid,
 * group) count of one chunk in a single pass, keyed by
 * ``case * total_capacity + offsets[cuboid] + linear_key`` without
 * materializing the stacked key matrix. */
int rapminer_stacked_anomalous(
    const int64_t *const *key_columns, int64_t n_cuboids,
    const int64_t *offsets,          /* per cuboid */
    int64_t total_capacity,
    const int64_t *rows_cat,         /* concatenated per-case label rows */
    const int64_t *lengths, int64_t n_cases,
    int64_t *out) {                  /* n_cases x total_capacity */
    int64_t position = 0;
    for (int64_t c = 0; c < n_cases; c++) {
        int64_t *case_out = out + c * total_capacity;
        const int64_t stop = position + lengths[c];
        for (int64_t j = 0; j < n_cuboids; j++) {
            const int64_t *keys = key_columns[j];
            const int64_t base = offsets[j];
            for (int64_t p = position; p < stop; p++) {
                int64_t key = base + keys[rows_cat[p]];
                if ((uint64_t)key >= (uint64_t)total_capacity)
                    return RAP_E_KEY_RANGE;
                case_out[key] += 1;
            }
        }
        position = stop;
    }
    return RAP_OK;
}

/* Kernel 2b — case-stacked weighted sums (the v/f lanes of
 * StackedCaseEngine.aggregates): case-major, ascending leaf-row order
 * per case, so per-bucket float additions replay a cold per-case
 * engine's order exactly. */
int rapminer_stacked_weighted(
    const int64_t *keys, int64_t n_rows, int64_t capacity,
    const double *const *weight_rows, int64_t n_cases,
    double *out) {                   /* n_cases x capacity */
    for (int64_t c = 0; c < n_cases; c++) {
        const double *weights = weight_rows[c];
        double *case_out = out + c * capacity;
        for (int64_t i = 0; i < n_rows; i++) {
            int64_t key = keys[i];
            if ((uint64_t)key >= (uint64_t)capacity) return RAP_E_KEY_RANGE;
            case_out[key] += weights[i];
        }
    }
    return RAP_OK;
}

/* Kernel 3 — streaming delta patch: dense per-group deltas of every
 * cached cuboid from the changed rows only (subtract-old/add-new folded
 * into the precomputed v/f delta columns by the caller). */
int rapminer_delta_patch(
    const int64_t *codes, int64_t n_rows, int64_t n_attrs,
    const int64_t *stride_matrix,   /* n_attrs x n_blocks */
    const int64_t *offsets, int64_t n_blocks, int64_t total,
    const uint8_t *gained, const uint8_t *lost, int64_t have_labels,
    const double *v_delta, const double *f_delta,
    int64_t *anomalous_delta, double *v_dense, double *f_dense) {
    block_plan plans_stack[16];
    block_plan *plans = plans_stack;
    if (n_blocks > 16) {
        plans = malloc((size_t)n_blocks * sizeof(block_plan));
        if (plans == NULL) return RAP_E_ALLOC;
    }
    int64_t *scratch = NULL;
    int status = build_plans(stride_matrix, n_attrs, n_blocks, plans, &scratch);
    if (status == RAP_OK) {
        for (int64_t j = 0; j < n_blocks && status == RAP_OK; j++) {
            const block_plan *plan = &plans[j];
            const int64_t base = offsets[j];
            for (int64_t i = 0; i < n_rows; i++) {
                int64_t key = base + row_key(codes + i * n_attrs, plan);
                if ((uint64_t)key >= (uint64_t)total) {
                    status = RAP_E_KEY_RANGE;
                    break;
                }
                v_dense[key] += v_delta[i];
                f_dense[key] += f_delta[i];
                if (have_labels) {
                    if (gained[i]) anomalous_delta[key] += 1;
                    if (lost[i]) anomalous_delta[key] -= 1;
                }
            }
        }
    }
    free(scratch);
    if (plans != plans_stack) free(plans);
    return status;
}
