"""Kernel backend registry: compiled-C vs numpy for the aggregation trio.

Every hot aggregation pass of the engine family goes through one of two
interchangeable backends:

* :class:`NumpyBackend` — the reference implementation; verbatim the
  vectorized numpy formulations the engines used before the native
  backend existed (key matmul + ``np.bincount`` lanes).
* :class:`NativeBackend` — thin ctypes wrappers over the compiled
  kernels of ``kernels.c``, loaded through :mod:`repro.native.build`.
  Integer lanes are exact and float lanes accumulate in the same row
  order as ``np.bincount``, so results are **bitwise identical** to the
  numpy backend (enforced by ``tests/native/test_equivalence.py``).

Selection precedence (first match wins):

1. an explicit ``backend=`` argument / ``RAPMinerConfig.backend`` knob;
2. the ``RAPMINER_BACKEND`` environment variable;
3. ``auto``: native when a compiler (or cached library) is available,
   else numpy.

A native request that cannot be satisfied — no compiler, failed
compile, corrupt cache that will not rebuild — **never raises**: the
registry emits a single :class:`RuntimeWarning` per process, bumps
``engine_backend_fallback_total{reason}``, records the event in
:data:`FALLBACK_EVENTS` and hands back the numpy backend.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..obs import trace as _trace
from .build import NativeBuildError, load_library

__all__ = [
    "BACKEND_NAMES",
    "FALLBACK_EVENTS",
    "KernelBackend",
    "NativeBackend",
    "NumpyBackend",
    "backend_info",
    "coerce_backend",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
]

#: Valid values for ``backend=`` knobs and ``RAPMINER_BACKEND``.
BACKEND_NAMES: Tuple[str, ...] = ("auto", "numpy", "native")

#: ``(requested, reason)`` pairs of every native->numpy fallback this
#: process took (at most one warning is issued, but every event is kept).
FALLBACK_EVENTS: List[Tuple[str, str]] = []


def _stacked_key_dtype(n_slots: int, capacity: int) -> np.dtype:
    # Local mirror of repro.core.stacked.stacked_key_dtype (importing it
    # would cycle core -> native -> core); the overflow contract is
    # asserted equal in tests/native/test_backend.py.
    if n_slots < 0 or capacity < 0:
        raise ValueError("n_slots and capacity must be non-negative")
    span = int(n_slots) * int(capacity)
    if span > 2**63:
        raise OverflowError(
            f"stacked key space of {n_slots} cases x {capacity} groups "
            f"({span} keys) exceeds int64; chunk the batch"
        )
    if span <= 2**32:
        return np.dtype(np.uint32)
    return np.dtype(np.int64)


class KernelBackend:
    """Interface of one aggregation-kernel implementation.

    All methods share the geometry conventions of
    :meth:`repro.core.engine.AggregationEngine._aggregate_batch`: keys
    are int64, dense key spaces are disjoint per block/case after
    offsetting, and float accumulation order is ascending row order
    within each block (the ``np.bincount`` order).
    """

    name = "abstract"

    def info(self) -> Dict[str, object]:
        """Identity of this backend for gauges and benchmark reports."""
        return {"backend": self.name}

    # Each op documents its contract on the numpy implementation below.

    def fused_batch(self, codes, stride_matrix, offsets, total, label_rows, v, f):
        raise NotImplementedError

    def fused_bincount(self, keys, weight_columns, capacity):
        raise NotImplementedError

    def count_bincount(self, keys, minlength):
        raise NotImplementedError

    def weighted_bincount(self, keys, weights, minlength):
        raise NotImplementedError

    def stacked_anomalous(self, key_columns, offsets, total_capacity, rows_cat, lengths):
        raise NotImplementedError

    def stacked_weighted(self, keys, capacity, lanes):
        raise NotImplementedError

    def delta_patch(self, codes, stride_matrix, offsets, total, gained, lost, v_delta, f_delta):
        raise NotImplementedError


class NumpyBackend(KernelBackend):
    """Reference backend: the engines' original vectorized formulations."""

    name = "numpy"

    def fused_batch(
        self,
        codes: np.ndarray,
        stride_matrix: np.ndarray,
        offsets: np.ndarray,
        total: int,
        label_rows: np.ndarray,
        v: np.ndarray,
        f: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(support, anomalous, v_sum, f_sum)`` of one batched pass.

        ``stride_matrix`` is ``(n_attrs, n_blocks)`` with column ``j``
        holding cuboid ``j``'s strides; ``offsets`` shifts each cuboid's
        key range to be disjoint; ``total`` is the summed capacity.
        """
        n_blocks = stride_matrix.shape[1]
        combined = (codes @ stride_matrix + offsets).T.ravel()
        support = np.bincount(combined, minlength=total)
        if label_rows.size:
            anomalous_keys = (
                combined[label_rows]
                if n_blocks == 1
                else combined.reshape(n_blocks, -1)[:, label_rows].ravel()
            )
            anomalous = np.bincount(anomalous_keys, minlength=total)
        else:
            anomalous = np.zeros(total, dtype=np.int64)
        v_tiled = v if n_blocks == 1 else np.tile(v, n_blocks)
        f_tiled = f if n_blocks == 1 else np.tile(f, n_blocks)
        v_sum = np.bincount(combined, weights=v_tiled, minlength=total)
        f_sum = np.bincount(combined, weights=f_tiled, minlength=total)
        return support, anomalous, v_sum, f_sum

    def fused_bincount(
        self,
        keys: np.ndarray,
        weight_columns: Sequence[np.ndarray],
        capacity: int,
    ) -> np.ndarray:
        """Stacked-weights bincount, shape ``(capacity, lanes)``.

        Lane ``i`` of row ``k`` is ``sum(weight_columns[i][keys == k])``
        with per-bucket additions in ascending row order.
        """
        lanes = len(weight_columns)
        if lanes == 1:
            return np.bincount(
                keys, weights=weight_columns[0], minlength=capacity
            ).reshape(capacity, 1)
        fused_keys = (keys[:, None] * lanes + np.arange(lanes)).ravel()
        fused_weights = np.stack(weight_columns, axis=1).ravel()
        totals = np.bincount(
            fused_keys, weights=fused_weights, minlength=capacity * lanes
        )
        return totals.reshape(capacity, lanes)

    def count_bincount(self, keys: np.ndarray, minlength: int) -> np.ndarray:
        """Integer bincount (int64) over keys known to be ``< minlength``."""
        return np.bincount(keys, minlength=minlength)

    def weighted_bincount(
        self, keys: np.ndarray, weights: np.ndarray, minlength: int
    ) -> np.ndarray:
        """Weighted bincount (float64) in ascending-row accumulation order."""
        out = np.bincount(keys, weights=weights, minlength=minlength)
        # np.bincount returns int64 when keys are empty; the op's contract
        # is float64 regardless of input shape (no-op copy when already so).
        return out.astype(np.float64, copy=False)

    def stacked_anomalous(
        self,
        key_columns: Sequence[np.ndarray],
        offsets: Sequence[int],
        total_capacity: int,
        rows_cat: np.ndarray,
        lengths: Sequence[int],
    ) -> np.ndarray:
        """Dense ``(n_cases, total_capacity)`` anomalous counts of one chunk.

        ``rows_cat`` concatenates each case's anomalous-row indices
        (``lengths[c]`` of them per case); keys are shifted by
        ``case * total_capacity + offsets[cuboid]`` so one bincount
        yields every (case, cuboid, group) count.
        """
        n_cases = len(lengths)
        dtype = _stacked_key_dtype(n_cases, total_capacity)
        case_base = np.repeat(
            np.arange(n_cases, dtype=np.int64) * total_capacity, lengths
        )
        key_matrix = np.empty((len(key_columns), rows_cat.size), dtype=np.int64)
        for j, keys in enumerate(key_columns):
            np.add(keys[rows_cat], case_base + offsets[j], out=key_matrix[j])
        return np.bincount(
            key_matrix.ravel().astype(dtype, copy=False),
            minlength=n_cases * total_capacity,
        ).reshape(n_cases, total_capacity)

    def stacked_weighted(
        self,
        keys: np.ndarray,
        capacity: int,
        lanes: Sequence[Sequence[np.ndarray]],
    ) -> List[np.ndarray]:
        """Per-lane ``(n_cases, capacity)`` weighted sums, case-major.

        ``lanes`` holds one sequence of per-case weight columns per lane
        (e.g. ``[v_rows, f_rows]``); concatenation is case-major in
        leaf-row order, replaying a cold per-case engine's float order.
        """
        n_cases = len(lanes[0])
        _stacked_key_dtype(n_cases, capacity)  # overflow guard
        stacked_keys = (
            keys[None, :]
            + (np.arange(n_cases, dtype=np.int64) * capacity)[:, None]
        ).ravel()
        minlength = n_cases * capacity
        return [
            np.bincount(
                stacked_keys,
                weights=np.concatenate(list(weight_rows)),
                minlength=minlength,
            ).reshape(n_cases, capacity)
            for weight_rows in lanes
        ]

    def delta_patch(
        self,
        codes: np.ndarray,
        stride_matrix: np.ndarray,
        offsets: np.ndarray,
        total: int,
        gained: np.ndarray,
        lost: np.ndarray,
        v_delta: np.ndarray,
        f_delta: np.ndarray,
    ) -> Tuple[Optional[np.ndarray], np.ndarray, np.ndarray]:
        """Dense deltas of one streaming patch over the changed rows only.

        Returns ``(anomalous_delta | None, v_dense, f_dense)``;
        ``anomalous_delta`` is ``None`` when no label flipped.
        """
        n_blocks = stride_matrix.shape[1]
        combined = codes @ stride_matrix + offsets
        flat = combined.T.ravel()
        anomalous_delta: Optional[np.ndarray] = None
        if gained.any() or lost.any():
            anomalous_delta = np.zeros(total, dtype=np.int64)
            if gained.any():
                anomalous_delta += np.bincount(
                    combined[gained].T.ravel(), minlength=total
                )
            if lost.any():
                anomalous_delta -= np.bincount(
                    combined[lost].T.ravel(), minlength=total
                )
        v_tiled = v_delta if n_blocks == 1 else np.tile(v_delta, n_blocks)
        f_tiled = f_delta if n_blocks == 1 else np.tile(f_delta, n_blocks)
        v_dense = np.bincount(flat, weights=v_tiled, minlength=total)
        f_dense = np.bincount(flat, weights=f_tiled, minlength=total)
        return anomalous_delta, v_dense, f_dense


def _contig_i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def _contig_f64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


class NativeBackend(KernelBackend):
    """ctypes wrappers over the compiled kernels (bit-identical to numpy)."""

    name = "native"

    def __init__(self, library, build_info: Dict[str, object]):
        import ctypes

        self._ctypes = ctypes
        self._lib = library
        self._build_info = dict(build_info)

    def info(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"backend": self.name}
        payload.update(self._build_info)
        return payload

    # -- call plumbing -----------------------------------------------------

    def _ptr(self, array: np.ndarray):
        return self._ctypes.c_void_p(array.ctypes.data)

    def _i64(self, value: int):
        return self._ctypes.c_int64(int(value))

    def _call(self, kernel: str, *args) -> None:
        if _trace.ACTIVE:
            obs.inc("native_kernel_calls_total", kernel=kernel[len("rapminer_"):])
        status = getattr(self._lib, kernel)(*args)
        if status != 0:
            raise RuntimeError(
                f"native kernel {kernel} failed with status {status} "
                "(key out of dense range or allocation failure)"
            )

    def _pointer_array(self, arrays: Sequence[np.ndarray]):
        ctypes = self._ctypes
        holder = (ctypes.c_void_p * len(arrays))(
            *[array.ctypes.data for array in arrays]
        )
        return holder

    # -- kernels -----------------------------------------------------------

    def fused_batch(self, codes, stride_matrix, offsets, total, label_rows, v, f):
        codes = _contig_i64(codes)
        stride_matrix = _contig_i64(stride_matrix)
        offsets = _contig_i64(offsets)
        label_rows = _contig_i64(label_rows)
        v = _contig_f64(v)
        f = _contig_f64(f)
        n_rows, n_attrs = codes.shape
        support = np.zeros(total, dtype=np.int64)
        anomalous = np.zeros(total, dtype=np.int64)
        v_sum = np.zeros(total, dtype=np.float64)
        f_sum = np.zeros(total, dtype=np.float64)
        self._call(
            "rapminer_fused_batch",
            self._ptr(codes),
            self._i64(n_rows),
            self._i64(n_attrs),
            self._ptr(stride_matrix),
            self._ptr(offsets),
            self._i64(stride_matrix.shape[1]),
            self._i64(total),
            self._ptr(label_rows),
            self._i64(label_rows.size),
            self._ptr(v),
            self._ptr(f),
            self._ptr(support),
            self._ptr(anomalous),
            self._ptr(v_sum),
            self._ptr(f_sum),
        )
        return support, anomalous, v_sum, f_sum

    def fused_bincount(self, keys, weight_columns, capacity):
        keys = _contig_i64(keys)
        weights = _contig_f64(np.stack([np.asarray(c) for c in weight_columns]))
        lanes = weights.shape[0]
        out = np.zeros((capacity, lanes), dtype=np.float64)
        self._call(
            "rapminer_fused_bincount",
            self._ptr(keys),
            self._i64(keys.size),
            self._ptr(weights),
            self._i64(lanes),
            self._i64(capacity),
            self._ptr(out),
        )
        return out

    def count_bincount(self, keys, minlength):
        keys = _contig_i64(keys)
        out = np.zeros(minlength, dtype=np.int64)
        self._call(
            "rapminer_count_bincount",
            self._ptr(keys),
            self._i64(keys.size),
            self._i64(minlength),
            self._ptr(out),
        )
        return out

    def weighted_bincount(self, keys, weights, minlength):
        keys = _contig_i64(keys)
        weights = _contig_f64(weights)
        out = np.zeros(minlength, dtype=np.float64)
        self._call(
            "rapminer_weighted_bincount",
            self._ptr(keys),
            self._i64(keys.size),
            self._ptr(weights),
            self._i64(minlength),
            self._ptr(out),
        )
        return out

    def stacked_anomalous(self, key_columns, offsets, total_capacity, rows_cat, lengths):
        _stacked_key_dtype(len(lengths), total_capacity)  # overflow guard
        key_columns = [_contig_i64(keys) for keys in key_columns]
        offsets_arr = _contig_i64(np.asarray(offsets))
        rows_cat = _contig_i64(rows_cat)
        lengths_arr = _contig_i64(np.asarray(lengths))
        out = np.zeros((len(lengths), total_capacity), dtype=np.int64)
        self._call(
            "rapminer_stacked_anomalous",
            self._pointer_array(key_columns),
            self._i64(len(key_columns)),
            self._ptr(offsets_arr),
            self._i64(total_capacity),
            self._ptr(rows_cat),
            self._ptr(lengths_arr),
            self._i64(len(lengths)),
            self._ptr(out),
        )
        return out

    def stacked_weighted(self, keys, capacity, lanes):
        n_cases = len(lanes[0])
        _stacked_key_dtype(n_cases, capacity)  # overflow guard
        keys = _contig_i64(keys)
        results = []
        for weight_rows in lanes:
            rows = [_contig_f64(row) for row in weight_rows]
            out = np.zeros((n_cases, capacity), dtype=np.float64)
            self._call(
                "rapminer_stacked_weighted",
                self._ptr(keys),
                self._i64(keys.size),
                self._i64(capacity),
                self._pointer_array(rows),
                self._i64(n_cases),
                self._ptr(out),
            )
            results.append(out)
        return results

    def delta_patch(self, codes, stride_matrix, offsets, total, gained, lost, v_delta, f_delta):
        codes = _contig_i64(codes)
        stride_matrix = _contig_i64(stride_matrix)
        offsets = _contig_i64(offsets)
        gained = np.ascontiguousarray(gained, dtype=bool)
        lost = np.ascontiguousarray(lost, dtype=bool)
        v_delta = _contig_f64(v_delta)
        f_delta = _contig_f64(f_delta)
        have_labels = bool(gained.any() or lost.any())
        anomalous_delta = (
            np.zeros(total, dtype=np.int64) if have_labels else np.zeros(0, dtype=np.int64)
        )
        v_dense = np.zeros(total, dtype=np.float64)
        f_dense = np.zeros(total, dtype=np.float64)
        n_rows = codes.shape[0]
        self._call(
            "rapminer_delta_patch",
            self._ptr(codes),
            self._i64(n_rows),
            self._i64(codes.shape[1] if codes.ndim == 2 else 0),
            self._ptr(stride_matrix),
            self._ptr(offsets),
            self._i64(stride_matrix.shape[1]),
            self._i64(total),
            self._ptr(gained.view(np.uint8)),
            self._ptr(lost.view(np.uint8)),
            self._i64(1 if have_labels else 0),
            self._ptr(v_delta),
            self._ptr(f_delta),
            self._ptr(anomalous_delta),
            self._ptr(v_dense),
            self._ptr(f_dense),
        )
        return (anomalous_delta if have_labels else None), v_dense, f_dense


# -- registry ---------------------------------------------------------------

_NUMPY = NumpyBackend()
_native_backend: Optional[NativeBackend] = None
_native_error: Optional[NativeBuildError] = None
_default_backend: Optional[KernelBackend] = None
_fallback_warned = False


def _load_native() -> NativeBackend:
    """Load (or reuse) the native backend; raises :class:`NativeBuildError`."""
    global _native_backend, _native_error
    if _native_backend is not None:
        return _native_backend
    if _native_error is not None:
        raise _native_error
    try:
        library, info = load_library()
    except NativeBuildError as exc:
        _native_error = exc
        raise
    _native_backend = NativeBackend(library, info)
    if _trace.ACTIVE:
        obs.set_gauge(
            "engine_backend_compile_seconds", float(info["compile_seconds"])
        )
    return _native_backend


def _note_fallback(requested: str, error: NativeBuildError) -> None:
    global _fallback_warned
    reason = getattr(error, "reason", None) or "build_failed"
    FALLBACK_EVENTS.append((requested, reason))
    obs.inc("engine_backend_fallback_total", reason=reason)
    if not _fallback_warned:
        _fallback_warned = True
        warnings.warn(
            f"native kernel backend unavailable ({error}); "
            "falling back to the numpy backend "
            "(set RAPMINER_BACKEND=numpy to silence)",
            RuntimeWarning,
            stacklevel=3,
        )


def _normalize(spec: Optional[str]) -> str:
    if spec is None:
        spec = os.environ.get("RAPMINER_BACKEND") or "auto"
    name = str(spec).strip().lower()
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {spec!r}; expected one of {BACKEND_NAMES}"
        )
    return name


def resolve_backend(
    spec: Optional[str] = None, strict: bool = False
) -> KernelBackend:
    """The backend for *spec* (``None`` -> ``RAPMINER_BACKEND`` -> ``auto``).

    ``auto`` and ``native`` both try the compiled backend first and fall
    back to numpy (warning + counter) when it cannot be built; with
    ``strict=True`` the :class:`~repro.native.build.NativeBuildError`
    propagates instead — used by tooling that must not silently degrade
    (e.g. ``make bench-native``).
    """
    name = _normalize(spec)
    if name == "numpy":
        return _NUMPY
    try:
        return _load_native()
    except NativeBuildError as error:
        if strict:
            raise
        _note_fallback(name, error)
        return _NUMPY


def get_default_backend() -> KernelBackend:
    """The process-default backend, resolved once on first use."""
    global _default_backend
    if _default_backend is None:
        _default_backend = resolve_backend(None)
    return _default_backend


def set_default_backend(spec: Optional[str]) -> KernelBackend:
    """Pin the process-default backend (``None`` re-reads the environment)."""
    global _default_backend
    _default_backend = resolve_backend(spec)
    return _default_backend


def coerce_backend(
    spec: Union[None, str, KernelBackend]
) -> KernelBackend:
    """Backend from a knob value: instance as-is, name resolved, None -> default."""
    if spec is None:
        return get_default_backend()
    if isinstance(spec, KernelBackend):
        return spec
    return resolve_backend(spec)


def backend_info(backend: Optional[KernelBackend] = None) -> Dict[str, object]:
    """Identity dict of *backend* (default: the process default)."""
    return (backend or get_default_backend()).info()


def _reset_registry_for_tests() -> None:
    """Forget every cached resolution (tests monkeypatching the loader)."""
    global _native_backend, _native_error, _default_backend, _fallback_warned
    _native_backend = None
    _native_error = None
    _default_backend = None
    _fallback_warned = False
    FALLBACK_EVENTS.clear()
