"""Compiled kernel backend for the hot aggregation trio.

One dependency-free C file (``kernels.c``) implements the three hot
kernels — fused layer aggregation, the case-stacked variant and the
streaming delta patch — compiled on first use through
:mod:`repro.native.build` and selected through the backend registry of
:mod:`repro.native.backend`.  Results are bitwise identical to the
numpy reference backend; when the host cannot build the library the
registry degrades to numpy with a single :class:`RuntimeWarning`.

Selection: ``RAPMinerConfig(backend=...)`` / ``repro --backend`` /
``RAPMINER_BACKEND`` env var / ``auto`` (native when buildable).  See
``docs/operational.md`` for the precedence table and cache location.
"""

from .backend import (
    BACKEND_NAMES,
    FALLBACK_EVENTS,
    KernelBackend,
    NativeBackend,
    NumpyBackend,
    backend_info,
    coerce_backend,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from .build import ABI_VERSION, NativeBuildError, cache_root, find_compiler

__all__ = [
    "ABI_VERSION",
    "BACKEND_NAMES",
    "FALLBACK_EVENTS",
    "KernelBackend",
    "NativeBackend",
    "NativeBuildError",
    "NumpyBackend",
    "backend_info",
    "cache_root",
    "coerce_backend",
    "find_compiler",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
]
