"""Compile, verify and micro-time the native kernels.

``python -m repro.native.selfcheck`` (the ``make kernels-check``
entry point) builds the library strictly (no silent numpy fallback),
runs randomized bitwise-equivalence spot checks of every kernel against
the numpy reference backend, and prints per-kernel micro-timings so a
regression in either correctness or speed is visible from one command.

Exit status: 0 when every kernel matches bitwise, non-zero otherwise.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Tuple

import numpy as np

from .backend import NumpyBackend, resolve_backend

#: (rows, attrs, sizes) grid the spot checks draw from.
_SHAPES = [
    (616, 4, (33, 4, 4, 20)),
    (2000, 5, (7, 5, 4, 3, 6)),
    (97, 3, (5, 3, 2)),
]


def _random_inputs(rng: np.random.Generator, n_rows: int, sizes) -> dict:
    n_attrs = len(sizes)
    codes = np.stack(
        [rng.integers(0, size, size=n_rows) for size in sizes], axis=1
    ).astype(np.int64)
    labels = rng.random(n_rows) < 0.2
    strides = [1] * n_attrs
    for i in range(n_attrs - 2, -1, -1):
        strides[i] = strides[i + 1] * sizes[i + 1]
    # Two blocks: the full cuboid and the first attribute alone.
    stride_matrix = np.zeros((n_attrs, 2), dtype=np.int64)
    stride_matrix[:, 0] = strides
    stride_matrix[0, 1] = 1
    total_full = int(np.prod(sizes))
    offsets = np.array([0, total_full], dtype=np.int64)
    return {
        "codes": codes,
        "labels": labels,
        "label_rows": np.flatnonzero(labels),
        "v": rng.random(n_rows),
        "f": rng.random(n_rows),
        "stride_matrix": stride_matrix,
        "offsets": offsets,
        "total": total_full + sizes[0],
        "keys": (codes @ stride_matrix[:, :1]).ravel(),
        "capacity": total_full,
    }


def _check(name: str, numpy_out, native_out) -> List[str]:
    problems: List[str] = []
    numpy_list = numpy_out if isinstance(numpy_out, (tuple, list)) else [numpy_out]
    native_list = native_out if isinstance(native_out, (tuple, list)) else [native_out]
    for lane, (a, b) in enumerate(zip(numpy_list, native_list)):
        if a is None and b is None:
            continue
        if a is None or b is None:
            problems.append(f"{name}[lane {lane}]: one backend returned None")
            continue
        if not np.array_equal(np.asarray(a), np.asarray(b)):
            problems.append(f"{name}[lane {lane}]: outputs differ bitwise")
    return problems


def _time(call: Callable[[], object], repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - started)
    return best


def run_selfcheck(verbose: bool = True) -> int:
    try:
        native = resolve_backend("native", strict=True)
    except Exception as exc:  # NativeBuildError or loader failure
        print(f"selfcheck: cannot build native backend: {exc}", file=sys.stderr)
        return 2
    reference = NumpyBackend()
    info = native.info()
    if verbose:
        print(f"backend: {info.get('backend')}")
        print(f"compiler: {info.get('compiler')} ({info.get('compiler_version')})")
        print(f"library: {info.get('library')}")
        print(f"compile_seconds: {info.get('compile_seconds'):.3f}")

    problems: List[str] = []
    timings: List[Tuple[str, float, float]] = []
    rng = np.random.default_rng(7)
    for n_rows, __, sizes in _SHAPES:
        data = _random_inputs(rng, n_rows, sizes)
        cases: List[Tuple[str, Callable[[], object], Callable[[], object]]] = [
            (
                "fused_batch",
                lambda b=reference, d=data: b.fused_batch(
                    d["codes"], d["stride_matrix"], d["offsets"], d["total"],
                    d["label_rows"], d["v"], d["f"],
                ),
                lambda b=native, d=data: b.fused_batch(
                    d["codes"], d["stride_matrix"], d["offsets"], d["total"],
                    d["label_rows"], d["v"], d["f"],
                ),
            ),
            (
                "fused_bincount",
                lambda b=reference, d=data: b.fused_bincount(
                    d["keys"], (d["v"], d["f"], d["v"] + d["f"], d["v"] - d["f"]),
                    d["capacity"],
                ),
                lambda b=native, d=data: b.fused_bincount(
                    d["keys"], (d["v"], d["f"], d["v"] + d["f"], d["v"] - d["f"]),
                    d["capacity"],
                ),
            ),
            (
                "stacked_anomalous",
                lambda b=reference, d=data: b.stacked_anomalous(
                    [d["keys"], d["codes"][:, 0].copy()],
                    [0, d["capacity"]],
                    d["total"],
                    np.concatenate([d["label_rows"]] * 3),
                    [d["label_rows"].size] * 3,
                ),
                lambda b=native, d=data: b.stacked_anomalous(
                    [d["keys"], d["codes"][:, 0].copy()],
                    [0, d["capacity"]],
                    d["total"],
                    np.concatenate([d["label_rows"]] * 3),
                    [d["label_rows"].size] * 3,
                ),
            ),
            (
                "stacked_weighted",
                lambda b=reference, d=data: b.stacked_weighted(
                    d["keys"], d["capacity"],
                    [[d["v"], d["f"], d["v"]], [d["f"], d["v"], d["f"]]],
                ),
                lambda b=native, d=data: b.stacked_weighted(
                    d["keys"], d["capacity"],
                    [[d["v"], d["f"], d["v"]], [d["f"], d["v"], d["f"]]],
                ),
            ),
            (
                "delta_patch",
                lambda b=reference, d=data: b.delta_patch(
                    d["codes"][: n_rows // 2],
                    d["stride_matrix"], d["offsets"], d["total"],
                    d["labels"][: n_rows // 2],
                    ~d["labels"][: n_rows // 2],
                    d["v"][: n_rows // 2], d["f"][: n_rows // 2],
                ),
                lambda b=native, d=data: b.delta_patch(
                    d["codes"][: n_rows // 2],
                    d["stride_matrix"], d["offsets"], d["total"],
                    d["labels"][: n_rows // 2],
                    ~d["labels"][: n_rows // 2],
                    d["v"][: n_rows // 2], d["f"][: n_rows // 2],
                ),
            ),
            (
                "count_bincount",
                lambda b=reference, d=data: b.count_bincount(d["keys"], d["capacity"]),
                lambda b=native, d=data: b.count_bincount(d["keys"], d["capacity"]),
            ),
            (
                "weighted_bincount",
                lambda b=reference, d=data: b.weighted_bincount(
                    d["keys"], d["v"], d["capacity"]
                ),
                lambda b=native, d=data: b.weighted_bincount(
                    d["keys"], d["v"], d["capacity"]
                ),
            ),
        ]
        for name, numpy_call, native_call in cases:
            problems.extend(_check(f"{name}@{sizes}", numpy_call(), native_call()))
            timings.append(
                (f"{name}@{n_rows}x{len(sizes)}", _time(numpy_call), _time(native_call))
            )

    if verbose:
        print(f"\n{'kernel':<28} {'numpy':>10} {'native':>10} {'speedup':>8}")
        for name, numpy_s, native_s in timings:
            ratio = numpy_s / native_s if native_s > 0 else float("inf")
            print(
                f"{name:<28} {numpy_s * 1e6:>8.1f}us {native_s * 1e6:>8.1f}us "
                f"{ratio:>7.2f}x"
            )
    if problems:
        for problem in problems:
            print(f"MISMATCH: {problem}", file=sys.stderr)
        return 1
    if verbose:
        print(f"\nall {len(timings)} kernel checks bitwise-equal across backends")
    return 0


if __name__ == "__main__":
    sys.exit(run_selfcheck())
