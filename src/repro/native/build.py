"""Compile-on-first-use loader for the native kernel library.

``kernels.c`` ships as plain source — no wheels, no build backend, no
Numba/Cython — and is compiled with the host's C compiler into a shared
library cached under the user cache directory, keyed by a content hash
of the source, the compile flags, the compiler identity and the ABI
version.  The cache survives across processes and sessions; any change
to the inputs lands in a fresh directory, so a stale library can never
be loaded.  A corrupt cache entry (truncated file, wrong architecture,
missing or mismatched ABI symbol) is deleted and rebuilt once rather
than loaded.

Nothing in here raises at import time: the only entry points are
functions, and every failure mode surfaces as :class:`NativeBuildError`
for the backend registry to turn into a numpy fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ABI_VERSION",
    "CFLAGS",
    "NativeBuildError",
    "cache_root",
    "compiler_version",
    "find_compiler",
    "library_path",
    "load_library",
    "source_path",
]

#: Bumped whenever a kernel signature changes; checked against the
#: ``rapminer_abi_version`` symbol of a cached library before use.
ABI_VERSION = 1

#: ``-ffp-contract=off`` forbids FMA contraction so the float lanes
#: accumulate with exactly numpy's scalar rounding; no ``-ffast-math``
#: for the same reason.
CFLAGS: Tuple[str, ...] = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: Exported kernels and their ctypes signatures (all pointers as
#: ``c_void_p``; wrappers pass ``array.ctypes.data``).
_SIGNATURES: Dict[str, int] = {
    "rapminer_fused_batch": 15,
    "rapminer_fused_bincount": 6,
    "rapminer_count_bincount": 4,
    "rapminer_weighted_bincount": 5,
    "rapminer_stacked_anomalous": 8,
    "rapminer_stacked_weighted": 6,
    "rapminer_delta_patch": 14,
}


class NativeBuildError(RuntimeError):
    """The native backend cannot be built or loaded on this host.

    ``reason`` is a short label suitable for the
    ``engine_backend_fallback_total{reason}`` counter.
    """

    def __init__(self, message: str, reason: str = "build_failed"):
        super().__init__(message)
        self.reason = reason


def source_path() -> Path:
    return Path(__file__).with_name("kernels.c")


def find_compiler() -> Optional[str]:
    """Path of the C compiler to use, or ``None`` when the host has none.

    ``RAPMINER_CC`` overrides discovery (useful to pin a compiler or, set
    to a non-existent path, to exercise the fallback); otherwise the
    first of ``cc``/``gcc``/``clang`` on ``PATH`` wins.
    """
    override = os.environ.get("RAPMINER_CC")
    if override:
        return shutil.which(override) or (
            override if Path(override).is_file() else None
        )
    for candidate in _COMPILER_CANDIDATES:
        found = shutil.which(candidate)
        if found:
            return found
    return None


def compiler_version(compiler: str) -> str:
    """First line of ``<compiler> --version`` (``"unknown"`` on failure)."""
    try:
        probe = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    first = (probe.stdout or probe.stderr).splitlines()
    return first[0].strip() if first else "unknown"


def cache_root() -> Path:
    """Build-cache directory: ``$RAPMINER_NATIVE_CACHE`` or
    ``${XDG_CACHE_HOME:-~/.cache}/rapminer/native``."""
    override = os.environ.get("RAPMINER_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "rapminer" / "native"


def _content_digest(source: str, compiler: str, version: str) -> str:
    hasher = hashlib.sha256()
    for part in (
        source,
        "\x00".join(CFLAGS),
        compiler,
        version,
        f"abi={ABI_VERSION}",
    ):
        hasher.update(part.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]


def library_path(compiler: str, version: str) -> Path:
    """Cache path of the library for this (source, flags, compiler) tuple."""
    digest = _content_digest(source_path().read_text(), compiler, version)
    return cache_root() / f"librapminer-{digest}.so"


def _compile(compiler: str, target: Path) -> float:
    """Compile the kernels into *target* atomically; returns seconds."""
    target.parent.mkdir(parents=True, exist_ok=True)
    started = time.perf_counter()
    handle, temp_name = tempfile.mkstemp(
        suffix=".so", prefix=target.stem + ".", dir=target.parent
    )
    os.close(handle)
    command: List[str] = [
        compiler,
        *CFLAGS,
        "-o",
        temp_name,
        str(source_path()),
    ]
    try:
        result = subprocess.run(
            command, capture_output=True, text=True, timeout=120, check=False
        )
        if result.returncode != 0:
            raise NativeBuildError(
                f"{compiler} failed (exit {result.returncode}): "
                f"{result.stderr.strip() or result.stdout.strip()}",
                reason="compile_failed",
            )
        os.replace(temp_name, target)
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(
            f"could not run {compiler}: {exc}", reason="compiler_unavailable"
        ) from exc
    finally:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
    return time.perf_counter() - started


def _validate(library: ctypes.CDLL) -> None:
    """Raise unless *library* exports the expected ABI and symbols."""
    try:
        probe = library.rapminer_abi_version
    except AttributeError as exc:
        raise NativeBuildError(
            "library lacks rapminer_abi_version", reason="invalid_library"
        ) from exc
    probe.restype = ctypes.c_int64
    probe.argtypes = []
    found = int(probe())
    if found != ABI_VERSION:
        raise NativeBuildError(
            f"library ABI {found} does not match expected {ABI_VERSION}",
            reason="invalid_library",
        )
    for name in _SIGNATURES:
        if not hasattr(library, name):
            raise NativeBuildError(
                f"library lacks kernel symbol {name}", reason="invalid_library"
            )
        handle = getattr(library, name)
        handle.restype = ctypes.c_int
        handle.argtypes = None  # varied scalars/pointers; wrappers coerce


def load_library() -> Tuple[ctypes.CDLL, Dict[str, object]]:
    """Load (building if needed) the kernel library.

    Returns ``(library, info)`` where ``info`` records the compiler, its
    version banner, the cache path and the compile time (``0.0`` on a
    cache hit).  Raises :class:`NativeBuildError` when the host has no
    compiler, the compile fails, or a rebuilt library is still invalid.
    """
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError(
            "no C compiler found (looked for $RAPMINER_CC, cc, gcc, clang)",
            reason="no_compiler",
        )
    version = compiler_version(compiler)
    target = library_path(compiler, version)
    compile_seconds = 0.0
    if not target.is_file():
        compile_seconds = _compile(compiler, target)
    try:
        library = ctypes.CDLL(str(target))
        _validate(library)
    except (OSError, NativeBuildError):
        # Corrupt or stale cache entry: rebuild once rather than load it.
        try:
            target.unlink()
        except OSError:
            pass
        compile_seconds = _compile(compiler, target)
        try:
            library = ctypes.CDLL(str(target))
        except OSError as exc:
            raise NativeBuildError(
                f"rebuilt library failed to load: {exc}", reason="load_failed"
            ) from exc
        _validate(library)
    info: Dict[str, object] = {
        "compiler": compiler,
        "compiler_version": version,
        "library": str(target),
        "compile_seconds": compile_seconds,
        "abi_version": ABI_VERSION,
    }
    return library, info
