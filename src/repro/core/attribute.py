"""Attribute schema and wildcard attribute combinations.

This module provides the vocabulary of the paper's data model:

* :class:`AttributeSchema` — the ordered list of attributes of the monitored
  system together with the element set of every attribute (Table I of the
  paper: Location x 33, Access Type x 4, OS x 4, Website x 20).
* :class:`AttributeCombination` — a tuple such as ``(L1, *, *, Site1)``
  where ``*`` is a wildcard meaning "any element".  The most fine-grained
  combinations (no wildcard at all) are the *leaf* combinations; every other
  combination covers the set of leaves it matches.

Attribute combinations form a lattice ordered by the parent/child relation:
``p`` is a *parent* of ``c`` when ``p`` can be obtained from ``c`` by
replacing exactly one specified attribute with a wildcard.  ``p`` is an
*ancestor* of ``c`` when ``p`` matches every leaf that ``c`` matches and
specifies a strict subset of ``c``'s attributes with identical elements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["WILDCARD", "AttributeSchema", "AttributeCombination"]

#: The textual wildcard used by the paper's notation, e.g. ``(L1, *, *, Site1)``.
WILDCARD = "*"


class AttributeSchema:
    """Ordered attributes of a monitored system and their element sets.

    The schema is immutable.  Elements are identified both by their string
    name and by a dense integer *code* (their index in the element tuple),
    which is what the vectorized dataset operations use.

    Parameters
    ----------
    attributes:
        Mapping from attribute name to the sequence of its elements, in
        order.  A regular ``dict`` preserves insertion order, which defines
        the attribute order of the schema.

    Examples
    --------
    >>> schema = AttributeSchema({"location": ["L1", "L2"], "os": ["android", "ios"]})
    >>> schema.names
    ('location', 'os')
    >>> schema.size('location')
    2
    >>> schema.n_leaves
    4
    """

    __slots__ = ("_names", "_elements", "_name_index", "_element_index")

    def __init__(self, attributes: Mapping[str, Sequence[str]]):
        if not attributes:
            raise ValueError("schema needs at least one attribute")
        names: List[str] = []
        elements: List[Tuple[str, ...]] = []
        for name, elems in attributes.items():
            elems = tuple(elems)
            if not elems:
                raise ValueError(f"attribute {name!r} has no elements")
            if len(set(elems)) != len(elems):
                raise ValueError(f"attribute {name!r} has duplicate elements")
            if WILDCARD in elems:
                raise ValueError(f"attribute {name!r} uses the reserved element {WILDCARD!r}")
            names.append(name)
            elements.append(elems)
        self._names: Tuple[str, ...] = tuple(names)
        self._elements: Tuple[Tuple[str, ...], ...] = tuple(elements)
        self._name_index: Dict[str, int] = {n: i for i, n in enumerate(self._names)}
        self._element_index: Tuple[Dict[str, int], ...] = tuple(
            {e: i for i, e in enumerate(elems)} for elems in self._elements
        )

    # -- basic introspection -------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names, in schema order."""
        return self._names

    @property
    def n_attributes(self) -> int:
        """Number of attributes (``n`` in the paper)."""
        return len(self._names)

    def elements(self, attribute) -> Tuple[str, ...]:
        """Element names of *attribute* (given by name or index)."""
        return self._elements[self.index_of(attribute)]

    def size(self, attribute) -> int:
        """``l(attr)``: the number of elements of *attribute*."""
        return len(self.elements(attribute))

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Element counts per attribute, in schema order."""
        return tuple(len(e) for e in self._elements)

    @property
    def n_leaves(self) -> int:
        """Size of the most fine-grained cuboid (product of all sizes)."""
        total = 1
        for s in self.sizes:
            total *= s
        return total

    def index_of(self, attribute) -> int:
        """Resolve an attribute given by name or index to its index."""
        if isinstance(attribute, int):
            if not 0 <= attribute < self.n_attributes:
                raise IndexError(f"attribute index {attribute} out of range")
            return attribute
        try:
            return self._name_index[attribute]
        except KeyError:
            raise KeyError(f"unknown attribute {attribute!r}") from None

    # -- element encoding ----------------------------------------------------

    def encode(self, attribute, element: str) -> int:
        """Integer code of *element* within *attribute*."""
        idx = self.index_of(attribute)
        try:
            return self._element_index[idx][element]
        except KeyError:
            raise KeyError(
                f"unknown element {element!r} for attribute {self._names[idx]!r}"
            ) from None

    def decode(self, attribute, code: int) -> str:
        """Element name for integer *code* within *attribute*."""
        idx = self.index_of(attribute)
        elems = self._elements[idx]
        if not 0 <= code < len(elems):
            raise IndexError(f"code {code} out of range for attribute {self._names[idx]!r}")
        return elems[code]

    # -- leaf enumeration ----------------------------------------------------

    def iter_leaf_values(self) -> Iterator[Tuple[str, ...]]:
        """Iterate all leaf value tuples in lexicographic (row-major) order."""
        return itertools.product(*self._elements)

    def leaf(self, values: Sequence[str]) -> "AttributeCombination":
        """Build the fully-specified (leaf) combination for *values*."""
        ac = AttributeCombination(values)
        if ac.layer != self.n_attributes:
            raise ValueError("a leaf combination must specify every attribute")
        self.validate(ac)
        return ac

    def validate(self, combination: "AttributeCombination") -> None:
        """Raise if *combination* does not fit this schema."""
        if len(combination.values) != self.n_attributes:
            raise ValueError(
                f"combination has {len(combination.values)} positions, "
                f"schema has {self.n_attributes} attributes"
            )
        for i, value in enumerate(combination.values):
            if value is not None and value not in self._element_index[i]:
                raise KeyError(
                    f"unknown element {value!r} for attribute {self._names[i]!r}"
                )

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AttributeSchema)
            and self._names == other._names
            and self._elements == other._elements
        )

    def __hash__(self) -> int:
        return hash((self._names, self._elements))

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(e)}]" for n, e in zip(self._names, self._elements))
        return f"AttributeSchema({parts})"


@dataclass(frozen=True)
class AttributeCombination:
    """A (possibly wildcarded) attribute combination such as ``(L1, *, *, Site1)``.

    ``values`` holds one entry per schema attribute; ``None`` is the wildcard.
    Instances are immutable, hashable, and ordered lexicographically with
    wildcards sorting first, so combination sets have a deterministic order.
    """

    values: Tuple[Optional[str], ...]

    def __init__(self, values: Iterable[Optional[str]]):
        normalized = tuple(None if v in (None, WILDCARD) else v for v in values)
        object.__setattr__(self, "values", normalized)

    # -- structure -----------------------------------------------------------

    @property
    def layer(self) -> int:
        """Number of specified (non-wildcard) attributes; the BFS layer index."""
        return sum(1 for v in self.values if v is not None)

    @property
    def specified_indices(self) -> Tuple[int, ...]:
        """Indices of the specified attributes (the combination's cuboid)."""
        return tuple(i for i, v in enumerate(self.values) if v is not None)

    @property
    def is_total(self) -> bool:
        """True for the all-wildcard combination covering the entire system."""
        return self.layer == 0

    def is_leaf(self, schema: AttributeSchema) -> bool:
        """True when every attribute of *schema* is specified."""
        return self.layer == len(schema.names) == len(self.values)

    # -- lattice relations ---------------------------------------------------

    def matches(self, leaf_values: Sequence[Optional[str]]) -> bool:
        """True when this combination covers the (leaf) value tuple."""
        if len(leaf_values) != len(self.values):
            raise ValueError("value tuple length does not match combination arity")
        return all(v is None or v == w for v, w in zip(self.values, leaf_values))

    def is_ancestor_of(self, other: "AttributeCombination") -> bool:
        """Strict ancestor: covers *other* and is strictly coarser."""
        if len(other.values) != len(self.values):
            raise ValueError("combination arities differ")
        if self.layer >= other.layer:
            return False
        return all(v is None or v == w for v, w in zip(self.values, other.values))

    def is_descendant_of(self, other: "AttributeCombination") -> bool:
        """Strict descendant: the converse of :meth:`is_ancestor_of`."""
        return other.is_ancestor_of(self)

    def parents(self) -> List["AttributeCombination"]:
        """Direct parents: one specified attribute replaced by a wildcard.

        The total combination (layer 0) has no parents, matching the paper's
        ``Parents()`` — layer-1 combinations are the roots of the DAG in
        Fig. 7.
        """
        result = []
        for i in self.specified_indices:
            values = list(self.values)
            values[i] = None
            result.append(AttributeCombination(values))
        return result

    def children(self, schema: AttributeSchema) -> List["AttributeCombination"]:
        """Direct children: one wildcard attribute bound to each of its elements."""
        schema.validate(self)
        result = []
        for i, v in enumerate(self.values):
            if v is not None:
                continue
            for element in schema.elements(i):
                values = list(self.values)
                values[i] = element
                result.append(AttributeCombination(values))
        return result

    def ancestors(self) -> List["AttributeCombination"]:
        """All strict ancestors (every sub-specification), excluding layer 0."""
        spec = self.specified_indices
        result = []
        for r in range(1, len(spec)):
            for keep in itertools.combinations(spec, r):
                values: List[Optional[str]] = [None] * len(self.values)
                for i in keep:
                    values[i] = self.values[i]
                result.append(AttributeCombination(values))
        return result

    def n_covered_leaves(self, schema: AttributeSchema) -> int:
        """Number of leaf combinations covered (product of free attribute sizes)."""
        schema.validate(self)
        total = 1
        for i, v in enumerate(self.values):
            if v is None:
                total *= schema.size(i)
        return total

    # -- formatting ----------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "AttributeCombination":
        """Parse the paper's notation, e.g. ``"(L1, *, *, Site1)"``."""
        inner = text.strip()
        if inner.startswith("(") and inner.endswith(")"):
            inner = inner[1:-1]
        parts = [p.strip() for p in inner.split(",")]
        if parts == [""]:
            raise ValueError(f"cannot parse combination from {text!r}")
        return cls(parts)

    def __str__(self) -> str:
        return "(" + ", ".join(WILDCARD if v is None else v for v in self.values) + ")"

    def sort_key(self) -> Tuple:
        """Deterministic ordering key (wildcards first, then element names)."""
        return tuple(("", "") if v is None else ("~", v) for v in self.values)

    def __lt__(self, other: "AttributeCombination") -> bool:
        return self.sort_key() < other.sort_key()
