"""The RAPMiner facade: the paper's full two-stage pipeline (Fig. 5).

:class:`RAPMiner` wires Algorithm 1 (CP-based redundant attribute deletion)
into Algorithm 2 (AC-guided layer-by-layer top-down search) and ranks the
surviving candidates with RAPScore (Eq. 3).  Its :meth:`RAPMiner.localize`
method implements the :class:`~repro.baselines.base.Localizer` interface
shared with every baseline, so the experiment harness treats all methods
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..data.dataset import FineGrainedDataset
from ..native import coerce_backend
from ..obs import trace as _trace
from ..resilience.budget import Budget
from ..resilience.degrade import DegradationDecision, DegradationPolicy
from .attribute import AttributeCombination
from .classification_power import AttributeDeletionResult, delete_redundant_attributes
from .config import RAPMinerConfig
from .engine import AggregationEngine, engine_for
from .scoring import RAPCandidate, rank_candidates
from .search import (
    SearchStats,
    batched_layerwise_topdown_search,
    layerwise_topdown_search,
)
from .stacked import StackedCaseEngine, group_datasets_by_layout

__all__ = ["LocalizationResult", "RAPMiner"]


@dataclass
class LocalizationResult:
    """Everything one RAPMiner run produced.

    ``candidates`` is the ranked list (RAPScore descending, truncated to the
    requested ``k``); ``deletion`` and ``stats`` expose stage-1 and stage-2
    diagnostics for the ablation and sensitivity experiments.
    """

    candidates: List[RAPCandidate]
    deletion: Optional[AttributeDeletionResult]
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def patterns(self) -> List[AttributeCombination]:
        """The ranked root anomaly patterns (what Eq. 7's ``Pred`` consumes)."""
        return [c.combination for c in self.candidates]

    def top(self, k: int) -> List[AttributeCombination]:
        """The ``k`` best-ranked patterns."""
        return self.patterns[:k]


class RAPMiner:
    """Root Anomaly Pattern Miner (the paper's contribution).

    Examples
    --------
    >>> from repro.core.config import RAPMinerConfig
    >>> miner = RAPMiner(RAPMinerConfig(t_cp=0.02, t_conf=0.8))
    >>> result = miner.run(labelled_dataset)          # doctest: +SKIP
    >>> result.patterns[:3]                            # doctest: +SKIP
    [(L1, *, *, Site1), ...]
    """

    #: Display name used by the experiment harness and reports.
    name = "RAPMiner"

    def __init__(self, config: Optional[RAPMinerConfig] = None):
        self.config = config if config is not None else RAPMinerConfig()

    def run(
        self,
        dataset: FineGrainedDataset,
        k: Optional[int] = None,
        engine: Optional["AggregationEngine"] = None,
        budget: Optional[Budget] = None,
        degradation: Optional[DegradationPolicy] = None,
        _decision: Optional[DegradationDecision] = None,
    ) -> LocalizationResult:
        """Execute both stages on a labelled leaf table.

        Parameters
        ----------
        dataset:
            Leaf table with anomaly labels attached (the detector's output).
        k:
            Number of RAPs to return; ``None`` returns every candidate,
            ranked.
        engine:
            Aggregation engine for stage 2; defaults to the dataset's
            shared engine.
        budget:
            Cooperative deadline for this run; defaults to a fresh budget
            from ``config.deadline_ms`` (``None`` = unlimited).  Expiry
            ends the search at a layer boundary with
            ``stats.stop_reason == "deadline"`` and the candidates found
            so far.
        degradation:
            Ladder policy overriding ``config.degradation`` (``None``
            inherits it).  The chosen rung lands on
            ``stats.degradation_tier``.

        Returns
        -------
        :class:`LocalizationResult` with ranked candidates and diagnostics.
        """
        cfg = self.config
        if budget is None:
            budget = self._budget_from_config()
        policy = degradation if degradation is not None else cfg.degradation
        with obs.span(
            "miner.run",
            k=k,
            t_cp=cfg.t_cp,
            t_conf=cfg.t_conf,
            attribute_deletion=cfg.enable_attribute_deletion,
        ) as run_span:
            if _trace.ACTIVE:
                obs.inc("miner_runs_total")
            if engine is None:
                # Resolve up front (honouring ``config.backend``) so stage 1,
                # stage 2 and the span's backend tag all see the same engine.
                engine = engine_for(dataset, backend=cfg.backend)
            run_span.set(backend=engine.backend.name)
            decision = _decision
            if decision is None and policy is not None:
                decision = policy.decide_serial(dataset.n_rows, budget)
            if decision is not None and decision.degraded:
                obs.inc(
                    "resilience_degrade_total",
                    tier=decision.tier,
                    reason=decision.reason or "none",
                )
            tier = decision.tier if decision is not None else None
            max_layer = cfg.max_layer
            if decision is not None and decision.max_layer is not None:
                max_layer = (
                    decision.max_layer
                    if max_layer is None
                    else min(max_layer, decision.max_layer)
                )
            deletion: Optional[AttributeDeletionResult] = None
            if cfg.enable_attribute_deletion:
                deletion = delete_redundant_attributes(dataset, cfg.t_cp)
                attribute_indices = deletion.kept_indices
            else:
                attribute_indices = tuple(range(dataset.schema.n_attributes))

            if dataset.n_anomalous == 0:
                run_span.set(n_candidates=0, outcome="no_anomalous_leaves")
                return LocalizationResult(
                    candidates=[],
                    deletion=deletion,
                    stats=SearchStats(
                        stop_reason="no_anomalous_leaves", degradation_tier=tier
                    ),
                )

            outcome = layerwise_topdown_search(
                dataset,
                attribute_indices,
                t_conf=cfg.t_conf,
                early_stop=cfg.early_stop,
                max_layer=max_layer,
                engine=engine,
                n_jobs=cfg.n_jobs,
                budget=budget,
            )
            outcome.stats.degradation_tier = tier
            ranked = self._rank(outcome.candidates, k)
            run_span.set(n_candidates=len(ranked), outcome="localized")
            return LocalizationResult(
                candidates=ranked, deletion=deletion, stats=outcome.stats
            )

    def _budget_from_config(self) -> Optional[Budget]:
        """A fresh budget from ``config.deadline_ms`` (``None`` = unlimited)."""
        cfg = self.config
        if cfg.deadline_clock is not None:
            return Budget.from_ms(cfg.deadline_ms, clock=cfg.deadline_clock)
        return Budget.from_ms(cfg.deadline_ms)

    def _rank(
        self, candidates: List[RAPCandidate], k: Optional[int]
    ) -> List[RAPCandidate]:
        """The configured ranking (Eq. 3 or raw confidence), truncated to *k*."""
        if self.config.layer_normalized_ranking:
            return rank_candidates(candidates, k)
        ranked = sorted(
            candidates,
            key=lambda c: (-c.confidence, -c.support, c.combination.sort_key()),
        )
        if k is not None:
            ranked = ranked[:k]
        return ranked

    def run_batch(
        self,
        datasets: Sequence[FineGrainedDataset],
        k: Optional[int] = None,
        budget: Optional[Budget] = None,
        degradation: Optional[DegradationPolicy] = None,
    ) -> List["LocalizationResult"]:
        """Both stages over a batch of leaf tables, case-stacked.

        Datasets sharing a ``(schema, leaf-index)`` layout are grouped
        and localized together through a
        :class:`~repro.core.stacked.StackedCaseEngine`: Algorithm 1's CP
        bincounts, each BFS layer's aggregation and the Criteria-2
        threshold probe run once per group instead of once per case,
        while per-case control flow (attribute deletion outcomes,
        Criteria-3 pruning, coverage early stop, ranking) replays the
        serial semantics exactly.  The returned results — candidates,
        scores, stats and stop reasons — are bit-identical to calling
        :meth:`run` on every dataset individually, in input order.

        This is the in-process kernel behind
        :func:`repro.parallel.batch.batch_localize`'s ``"vectorized"``
        mode; it composes with process sharding (each worker stacks its
        shard).

        ``budget`` and ``degradation`` behave as in :meth:`run`, with the
        budget shared by the whole batch.  A policy that steps off the
        ``vectorized`` rung (budget drained, or the stacked volume above
        ``stacked_element_limit``) reruns the batch through the serial
        per-case loop — still under the shared budget, re-deciding the
        depth cap per case as the budget drains.
        """
        cfg = self.config
        if budget is None:
            budget = self._budget_from_config()
        policy = degradation if degradation is not None else cfg.degradation
        datasets = list(datasets)
        results: List[Optional[LocalizationResult]] = [None] * len(datasets)
        if not datasets:
            return []
        if policy is not None:
            batch_decision = policy.decide_batch(
                len(datasets), max(d.n_rows for d in datasets), budget
            )
        else:
            batch_decision = None
        if batch_decision is not None and batch_decision.tier != "vectorized":
            obs.inc(
                "resilience_degrade_total",
                tier=batch_decision.tier,
                reason=batch_decision.reason or "none",
            )
            for index, dataset in enumerate(datasets):
                if batch_decision.tier == "layer_capped":
                    case_decision = batch_decision
                else:
                    case_decision = policy.decide_serial(
                        dataset.n_rows, budget, base_tier="serial"
                    )
                results[index] = self.run(
                    dataset, k, budget=budget, _decision=case_decision
                )
            return [result for result in results if result is not None]
        batch_tier = batch_decision.tier if batch_decision is not None else None
        groups = group_datasets_by_layout(datasets)
        with obs.span(
            "miner.run_batch",
            n_cases=len(datasets),
            n_groups=len(groups),
            k=k,
            t_cp=cfg.t_cp,
            t_conf=cfg.t_conf,
            backend=coerce_backend(cfg.backend).name,
        ) as run_span:
            if _trace.ACTIVE:
                obs.inc("stacked_groups_total", len(groups))
                obs.inc("stacked_batch_cases_total", len(datasets))
            for group in groups:
                stacked = StackedCaseEngine(
                    [datasets[i] for i in group], backend=cfg.backend
                )
                if cfg.enable_attribute_deletion:
                    deletions: List[Optional[AttributeDeletionResult]] = list(
                        stacked.attribute_deletions(cfg.t_cp)
                    )
                else:
                    deletions = [None] * len(group)
                # Cases diverge after stage 1: sub-batch by the surviving
                # attribute set so each fused search shares one lattice.
                subgroups: Dict[Tuple[int, ...], List[int]] = {}
                for slot, case_index in enumerate(group):
                    if datasets[case_index].n_anomalous == 0:
                        results[case_index] = LocalizationResult(
                            candidates=[],
                            deletion=deletions[slot],
                            stats=SearchStats(
                                stop_reason="no_anomalous_leaves",
                                degradation_tier=batch_tier,
                            ),
                        )
                        continue
                    if deletions[slot] is not None:
                        kept = deletions[slot].kept_indices
                    else:
                        kept = tuple(range(stacked.schema.n_attributes))
                    subgroups.setdefault(
                        tuple(sorted(set(kept))), []
                    ).append(slot)
                for kept_indices, slots in subgroups.items():
                    outcomes = batched_layerwise_topdown_search(
                        stacked,
                        slots,
                        kept_indices,
                        t_conf=cfg.t_conf,
                        early_stop=cfg.early_stop,
                        max_layer=cfg.max_layer,
                        budget=budget,
                    )
                    for slot, outcome in zip(slots, outcomes):
                        outcome.stats.degradation_tier = batch_tier
                        results[group[slot]] = LocalizationResult(
                            candidates=self._rank(outcome.candidates, k),
                            deletion=deletions[slot],
                            stats=outcome.stats,
                        )
            run_span.set(n_cases=len(datasets), outcome="localized")
        return results

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        """Uniform :class:`~repro.baselines.base.Localizer` entry point."""
        return self.run(dataset, k).patterns
