"""Anomaly Confidence (Criteria 2 of §IV-D).

``Confidence(ac => Anomaly)`` is the anomaly ratio of an attribute
combination: among the most fine-grained rows of ``D`` it covers, the
fraction labelled anomalous::

    Confidence(ac => Anomaly) = support_count_D(ac, Anomaly) / support_count_D(ac)

Criteria 2 declares ``ac`` anomalous when the confidence exceeds the
threshold ``t_conf`` (a *relatively* large value — large enough to demand
that most descendants are anomalous per Insight 2, but below 1.0 so a few
mislabelled leaves do not mask a true RAP).

The per-combination computation lives on
:meth:`repro.data.dataset.FineGrainedDataset.confidence`; this module adds
the criteria check and the bulk per-cuboid evaluation the search uses.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..data.dataset import CuboidAggregate, FineGrainedDataset
from .attribute import AttributeCombination
from .cuboid import Cuboid
from .engine import AggregationEngine, engine_for

__all__ = ["anomaly_confidence", "is_anomalous", "cuboid_confidences"]


def anomaly_confidence(dataset: FineGrainedDataset, combination: AttributeCombination) -> float:
    """``Confidence(ac => Anomaly)`` over the leaf table (0.0 on empty support)."""
    return dataset.confidence(combination)


def is_anomalous(
    dataset: FineGrainedDataset,
    combination: AttributeCombination,
    t_conf: float,
) -> bool:
    """Criteria 2: ``Confidence(ac => Anomaly) > t_conf``."""
    if not 0.0 < t_conf < 1.0:
        raise ValueError("t_conf must lie in (0, 1)")
    return anomaly_confidence(dataset, combination) > t_conf


def cuboid_confidences(
    dataset: FineGrainedDataset,
    cuboid: Cuboid,
    engine: Optional[AggregationEngine] = None,
) -> Tuple[CuboidAggregate, np.ndarray]:
    """Confidence of every occupied combination of *cuboid*, vectorized.

    Returns the aggregate (for decoding combinations and supports) together
    with the per-combination confidence array.  Aggregation goes through
    the dataset's shared :class:`AggregationEngine` so repeated calls (and
    other consumers of the same interval) hit one cache.
    """
    if engine is None:
        engine = engine_for(dataset)
    aggregate = engine.aggregate(cuboid)
    return aggregate, aggregate.confidence
