"""Warm-start localization across consecutive time points of one incident.

The paper localizes each alarmed time point independently, but a real
incident spans many collection intervals (the paper's trace alarms every
60 s) and its root anomaly patterns rarely change between adjacent
intervals.  :class:`IncrementalRAPMiner` exploits that in two tiers:

1. **Prescreen** — re-verify the previous interval's patterns against the
   new labels through the engine's inverted index: Criteria 2 per pattern,
   no parent lit up, and the old patterns still explain at least
   ``min_coverage`` of the new anomalous leaves.  This costs a handful of
   posting-list intersections and fails fast on the common churn cases
   (pattern went quiet, incident widened, new unexplained anomalies).
2. **Exact replay** — when the prescreen passes, the full two-stage
   pipeline still runs, but on a *warm* :class:`AggregationEngine` cloned
   from the previous interval: linear keys, posting lists and per-cuboid
   occupancy/support all survive (they depend only on the leaf codes,
   which are stable across the intervals of one incident), so each cuboid
   visit is one fused label/value bincount over cached keys instead of a
   cold aggregation.  If the replay reproduces the cached pattern set the
   interval counts as a fast-path hit; either way the caller receives
   exactly what a stateless :class:`RAPMiner` would have produced.

Why replay instead of trusting the verified patterns?  Per-pattern checks
cannot be sound on their own: the stateless search may return a *different*
decomposition even when every cached pattern is still individually valid —
a sibling combination in an earlier-visited cuboid can become confident and
either join the result or, under early stop, displace later patterns
entirely.  Detecting that requires visiting the same cuboids the search
visits, so the cheapest *exact* fast path is the search itself on warm
caches.  The prescreen merely avoids even that when the incident visibly
changed.

:class:`StreamingRAPMiner` goes one step further down the same road: where
the incremental miner re-aggregates each cuboid it visits from the leaves
(cheap bincounts over warm keys), the streaming miner drives a
:class:`~repro.core.delta.DeltaSession` that *patches* the previous tick's
cached aggregates from the changed rows alone — the right tool when ticks
arrive as a low-churn stream over one leaf population.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import obs
from ..data.dataset import FineGrainedDataset
from ..obs import trace as _trace
from ..resilience.budget import Budget
from ..resilience.degrade import DegradationPolicy
from .attribute import AttributeCombination
from .config import RAPMinerConfig
from .delta import DeltaConfig, DeltaSession, DeltaStats
from .engine import AggregationEngine, engine_for
from .miner import LocalizationResult, RAPMiner

__all__ = ["IncrementalStats", "IncrementalRAPMiner", "StreamingRAPMiner"]


@dataclass
class IncrementalStats:
    """How often each path ran."""

    fast_path_hits: int = 0
    full_runs: int = 0

    @property
    def total(self) -> int:
        return self.fast_path_hits + self.full_runs


class IncrementalRAPMiner:
    """RAPMiner with cross-interval warm starting.

    Results are always identical to a stateless :class:`RAPMiner` run on
    the same interval; the warm start changes only the cost.  An interval
    counts as a *fast-path hit* when the prescreen accepted the cached
    patterns and the (warm) replay reproduced them exactly.

    Parameters
    ----------
    config:
        Underlying :class:`RAPMinerConfig` (shared by both paths).
    min_coverage:
        Fraction of the new interval's anomalous leaves the previous
        patterns must still explain for the prescreen to pass.  Purely a
        prescreen knob — it decides how eagerly the cached patterns are
        abandoned, never what the caller receives.
    """

    name = "IncrementalRAPMiner"

    def __init__(
        self,
        config: Optional[RAPMinerConfig] = None,
        min_coverage: float = 0.95,
    ):
        if not 0.0 < min_coverage <= 1.0:
            raise ValueError("min_coverage must be in (0, 1]")
        self._miner = RAPMiner(config)
        self.config = self._miner.config
        self.min_coverage = min_coverage
        self.stats = IncrementalStats()
        self._previous: Optional[List[AttributeCombination]] = None
        self._engine: Optional[AggregationEngine] = None

    def reset(self) -> None:
        """Forget the cached patterns (e.g. after an incident closes)."""
        self._previous = None
        self._engine = None

    # -- engine adoption ----------------------------------------------------------

    def _adopt_engine(
        self, dataset: FineGrainedDataset
    ) -> "Tuple[AggregationEngine, bool]":
        """The engine for this interval (plus whether it was warm-cloned).

        A clone is taken when the new interval has the same schema and leaf
        codes as the previous one (the persisted-incident case): every
        code-derived cache survives, only label/value-dependent aggregates
        are recomputed.  Otherwise the dataset's own shared engine is used.
        Holding the engine keeps (at most) one previous interval alive.
        """
        previous = self._engine
        warm_cloned = (
            previous is not None
            and previous.dataset is not dataset
            and previous.compatible_with(dataset)
        )
        if warm_cloned:
            engine = previous.warm_clone(dataset)
        else:
            engine = engine_for(dataset)
        self._engine = engine
        return engine, warm_cloned

    # -- fast-path prescreen ------------------------------------------------------

    def _prescreen(self, dataset: FineGrainedDataset, engine: AggregationEngine) -> bool:
        """Cheap necessary conditions for the cached patterns to survive."""
        assert self._previous is not None
        t_conf = self.config.t_conf
        n_anomalous = dataset.n_anomalous
        if n_anomalous == 0:
            return False
        explained = 0
        seen = None
        for pattern in self._previous:
            rows = engine.rows_of(pattern)
            support = int(rows.size)
            if support == 0:
                return False
            anomalous_support = int(dataset.labels[rows].sum())
            if anomalous_support <= t_conf * support:
                return False  # the pattern went quiet
            for parent in pattern.parents():
                if parent.layer >= 1 and engine.confidence(parent) > t_conf:
                    return False  # incident widened: a coarser scope lit up
            anomalous_rows = rows[dataset.labels[rows]]
            if seen is None:
                seen = set(anomalous_rows.tolist())
            else:
                seen.update(anomalous_rows.tolist())
            explained = len(seen)
        # New anomalies the old patterns cannot explain force a cold look.
        return explained >= self.min_coverage * n_anomalous

    # -- public API -----------------------------------------------------------------

    def run(self, dataset: FineGrainedDataset, k: Optional[int] = None) -> LocalizationResult:
        """Localize one interval, warm-starting from the previous result."""
        with obs.span("incremental.run", k=k) as run_span:
            engine, warm_cloned = self._adopt_engine(dataset)
            if self._previous:
                prescreen = "passed" if self._prescreen(dataset, engine) else "failed"
            else:
                prescreen = "no_previous"
            replay_expected = prescreen == "passed"
            # Run untruncated and cache the complete candidate list, so a small
            # k does not starve the next interval's verification.
            full = self._miner.run(dataset, None, engine=engine)
            found = [c.combination for c in full.candidates]
            fast_path = replay_expected and set(found) == set(self._previous or [])
            if fast_path:
                self.stats.fast_path_hits += 1
            else:
                self.stats.full_runs += 1
            self._previous = found or None
            run_span.set(
                warm_cloned=warm_cloned,
                prescreen=prescreen,
                fast_path=fast_path,
                n_candidates=len(found),
            )
            if _trace.ACTIVE:
                obs.inc(
                    "incremental_runs_total",
                    path="fast_path" if fast_path else "full_run",
                )
                obs.inc("incremental_prescreen_total", outcome=prescreen)
            if k is None:
                return full
            return LocalizationResult(
                candidates=full.candidates[:k], deletion=full.deletion, stats=full.stats
            )

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        """Uniform :class:`~repro.baselines.base.Localizer` entry point."""
        return self.run(dataset, k).patterns


class StreamingRAPMiner:
    """RAPMiner over a tick stream, with delta-patched aggregation.

    Each :meth:`run` call is one tick.  The session diffs the incoming
    leaf table against the previous tick's and, below the crossover
    threshold, patches every cached cuboid aggregate instead of
    re-aggregating cold (see :mod:`repro.core.delta` for the exact
    bitwise-equivalence contract).  Candidates are always identical to a
    stateless :class:`RAPMiner` on the same tick; only the cost — and,
    under a :class:`~repro.resilience.DegradationPolicy`, the reported
    ``degradation_tier`` (``"delta"`` on patched ticks) — differs.

    Parameters
    ----------
    config:
        Underlying :class:`RAPMinerConfig`, shared with the wrapped
        miner (deadline and degradation defaults apply per tick).
    delta:
        :class:`~repro.core.delta.DeltaConfig` steering the session
        (crossover threshold, re-base cadence).
    """

    name = "StreamingRAPMiner"

    def __init__(
        self,
        config: Optional[RAPMinerConfig] = None,
        delta: Optional[DeltaConfig] = None,
    ):
        self._miner = RAPMiner(config)
        self.session = DeltaSession(delta)

    @property
    def config(self) -> RAPMinerConfig:
        """The wrapped miner's config (rebinding it retunes both paths)."""
        return self._miner.config

    @config.setter
    def config(self, value: RAPMinerConfig) -> None:
        self._miner.config = value

    @property
    def stats(self) -> DeltaStats:
        """The session's tick mix (patched vs cold, re-bases, churn)."""
        return self.session.stats

    def reset(self) -> None:
        """Drop cross-tick state (the next tick aggregates cold)."""
        self.session.reset()

    def run(
        self,
        dataset: FineGrainedDataset,
        k: Optional[int] = None,
        budget: Optional[Budget] = None,
        degradation: Optional[DegradationPolicy] = None,
    ) -> LocalizationResult:
        """Localize one tick against the delta-patched engine."""
        if budget is None:
            budget = self._miner._budget_from_config()
        policy = degradation if degradation is not None else self.config.degradation
        with obs.span("streaming.run", k=k) as run_span:
            started = time.perf_counter()
            tick = self.session.begin_tick(dataset, budget=budget, policy=policy)
            result = self._miner.run(
                dataset,
                k,
                engine=tick.engine,
                budget=budget,
                degradation=policy,
                _decision=tick.decision,
            )
            self.session.record_tick_seconds(tick, time.perf_counter() - started)
            run_span.set(
                path=tick.path,
                reason=tick.reason or "none",
                changed_rows=tick.changed_rows,
                n_candidates=len(result.candidates),
            )
            return result

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        """Uniform :class:`~repro.baselines.base.Localizer` entry point."""
        return self.run(dataset, k).patterns
