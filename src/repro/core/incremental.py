"""Warm-start localization across consecutive time points of one incident.

The paper localizes each alarmed time point independently, but a real
incident spans many collection intervals (the paper's trace alarms every
60 s) and its root anomaly patterns rarely change between adjacent
intervals.  :class:`IncrementalRAPMiner` exploits that:

1. **Fast path** — re-verify the previous interval's patterns against the
   new labels (Criteria 2 per pattern, plus the coverage condition: the
   old patterns still explain at least ``min_coverage`` of the new
   anomalous leaves, and none of their parents has become anomalous).
   Verification costs one ``mask_of`` pass per previous pattern — orders
   of magnitude below a lattice search.
2. **Fallback** — anything changed (a pattern went quiet, a parent lit
   up, coverage dropped), run the full two-stage RAPMiner and cache the
   fresh result.

The fast path is *sound* for the persisted-incident case: a verified
pattern satisfies Definition 1 on the new data exactly when it is
anomalous and its parents are not — both are checked directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..data.dataset import FineGrainedDataset
from .attribute import AttributeCombination
from .config import RAPMinerConfig
from .miner import LocalizationResult, RAPMiner
from .scoring import RAPCandidate, rank_candidates

__all__ = ["IncrementalStats", "IncrementalRAPMiner"]


@dataclass
class IncrementalStats:
    """How often each path ran."""

    fast_path_hits: int = 0
    full_runs: int = 0

    @property
    def total(self) -> int:
        return self.fast_path_hits + self.full_runs


class IncrementalRAPMiner:
    """RAPMiner with cross-interval warm starting.

    Parameters
    ----------
    config:
        Underlying :class:`RAPMinerConfig` (shared by both paths).
    min_coverage:
        Fraction of the new interval's anomalous leaves the previous
        patterns must still explain for the fast path to be taken.
    """

    name = "IncrementalRAPMiner"

    def __init__(
        self,
        config: Optional[RAPMinerConfig] = None,
        min_coverage: float = 0.95,
    ):
        if not 0.0 < min_coverage <= 1.0:
            raise ValueError("min_coverage must be in (0, 1]")
        self._miner = RAPMiner(config)
        self.config = self._miner.config
        self.min_coverage = min_coverage
        self.stats = IncrementalStats()
        self._previous: Optional[List[AttributeCombination]] = None

    def reset(self) -> None:
        """Forget the cached patterns (e.g. after an incident closes)."""
        self._previous = None

    # -- fast-path verification --------------------------------------------------

    def _verify_previous(
        self, dataset: FineGrainedDataset
    ) -> Optional[List[RAPCandidate]]:
        """Check the cached patterns against the new labels; None = fail."""
        assert self._previous is not None
        t_conf = self.config.t_conf
        n_anomalous = dataset.n_anomalous
        if n_anomalous == 0:
            return None
        candidates: List[RAPCandidate] = []
        covered = np.zeros(dataset.n_rows, dtype=bool)
        for pattern in self._previous:
            mask = dataset.mask_of(pattern)
            support = int(mask.sum())
            if support == 0:
                return None
            anomalous_support = int(dataset.labels[mask].sum())
            confidence = anomalous_support / support
            if confidence <= t_conf:
                return None  # the pattern went quiet
            for parent in pattern.parents():
                if parent.layer >= 1 and dataset.confidence(parent) > t_conf:
                    return None  # incident widened: a coarser scope lit up
            covered |= mask
            candidates.append(
                RAPCandidate(
                    combination=pattern,
                    confidence=confidence,
                    layer=pattern.layer,
                    support=support,
                    anomalous_support=anomalous_support,
                )
            )
        explained = int((covered & dataset.labels).sum())
        if explained < self.min_coverage * n_anomalous:
            return None  # new anomalies the old patterns cannot explain
        return candidates

    # -- public API -----------------------------------------------------------------

    def run(self, dataset: FineGrainedDataset, k: Optional[int] = None) -> LocalizationResult:
        """Localize one interval, warm-starting from the previous result."""
        if self._previous:
            verified = self._verify_previous(dataset)
            if verified is not None:
                self.stats.fast_path_hits += 1
                ranked = rank_candidates(verified, k)
                return LocalizationResult(candidates=ranked, deletion=None)
        # Run untruncated and cache the complete candidate list, so a small
        # k does not starve the next interval's verification.
        full = self._miner.run(dataset, None)
        self.stats.full_runs += 1
        self._previous = [c.combination for c in full.candidates] or None
        if k is None:
            return full
        return LocalizationResult(
            candidates=full.candidates[:k], deletion=full.deletion, stats=full.stats
        )

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        """Uniform :class:`~repro.baselines.base.Localizer` entry point."""
        return self.run(dataset, k).patterns
