"""The cuboid lattice over attribute sets (Fig. 2 of the paper).

A *cuboid* is the set of attribute combinations that specify exactly the
same attributes; e.g. in the CDN schema ``Cub_{L,S}`` is the set of all
``(location, *, *, website)`` combinations.  With ``n`` attributes there are
``2**n - 1`` cuboids, arranged in ``n`` layers by how many attributes they
specify; layer ``d`` contains the ``C(n, d)`` cuboids of dimension ``d``.

Deleting ``k`` redundant attributes shrinks the lattice to ``2**(n-k) - 1``
cuboids; :func:`decrease_ratio` is the closed form of the paper's Eq. 2 that
Table IV tabulates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from .attribute import AttributeCombination, AttributeSchema

__all__ = [
    "Cuboid",
    "enumerate_cuboids",
    "cuboids_in_layer",
    "cuboid_count",
    "decrease_ratio",
    "lattice_vertex_labels",
]


@dataclass(frozen=True)
class Cuboid:
    """A cuboid identified by the sorted indices of its specified attributes."""

    attribute_indices: Tuple[int, ...]

    def __init__(self, attribute_indices: Sequence[int]):
        indices = tuple(sorted(set(int(i) for i in attribute_indices)))
        if not indices:
            raise ValueError("a cuboid must specify at least one attribute")
        if indices[0] < 0:
            raise ValueError("attribute indices must be non-negative")
        object.__setattr__(self, "attribute_indices", indices)

    @property
    def dimension(self) -> int:
        """Number of specified attributes; equals the layer this cuboid sits in."""
        return len(self.attribute_indices)

    # Alias matching the paper's vocabulary.
    layer = dimension

    def length(self, schema: AttributeSchema) -> int:
        """Number of attribute combinations in this cuboid (product of sizes)."""
        total = 1
        for i in self.attribute_indices:
            total *= schema.size(i)
        return total

    def names(self, schema: AttributeSchema) -> Tuple[str, ...]:
        """Attribute names of this cuboid, in schema order."""
        return tuple(schema.names[i] for i in self.attribute_indices)

    def is_parent_of(self, other: "Cuboid") -> bool:
        """Direct parent in the lattice: one attribute fewer, all shared."""
        return (
            self.dimension + 1 == other.dimension
            and set(self.attribute_indices) < set(other.attribute_indices)
        )

    def combinations(self, schema: AttributeSchema) -> Iterator[AttributeCombination]:
        """Iterate every attribute combination of this cuboid, in element order."""
        if self.attribute_indices and self.attribute_indices[-1] >= schema.n_attributes:
            raise IndexError("cuboid attribute index out of range for schema")
        element_choices = [schema.elements(i) for i in self.attribute_indices]
        for chosen in itertools.product(*element_choices):
            values: List = [None] * schema.n_attributes
            for idx, element in zip(self.attribute_indices, chosen):
                values[idx] = element
            yield AttributeCombination(values)

    def __str__(self) -> str:
        return "Cub(" + ",".join(str(i) for i in self.attribute_indices) + ")"


def cuboid_count(n_attributes: int) -> int:
    """Total cuboids over *n_attributes*: ``2**n - 1`` (Fig. 2's generalized form)."""
    if n_attributes < 0:
        raise ValueError("attribute count must be non-negative")
    return 2**n_attributes - 1


def enumerate_cuboids(n_attributes: int) -> List[Cuboid]:
    """All cuboids, ordered by layer then lexicographically (BFS order)."""
    result: List[Cuboid] = []
    for layer in range(1, n_attributes + 1):
        result.extend(cuboids_in_layer(n_attributes, layer))
    return result


def cuboids_in_layer(n_attributes: int, layer: int) -> List[Cuboid]:
    """The ``C(n, layer)`` cuboids of the given *layer*, lexicographically."""
    if not 1 <= layer <= n_attributes:
        return []
    return [Cuboid(c) for c in itertools.combinations(range(n_attributes), layer)]


def decrease_ratio(n_attributes: int, k_deleted: int) -> float:
    """Fraction of cuboids removed by deleting *k_deleted* attributes (Eq. 2).

    ``DecreaseRatio@k = (2**n - 2**(n-k)) / (2**n - 1) > (2**k - 1) / 2**k``.
    Table IV reports the limit lower bound ``(2**k - 1) / 2**k``; this
    function returns the exact ratio for a concrete *n_attributes*.
    """
    if not 0 <= k_deleted <= n_attributes:
        raise ValueError("must delete between 0 and n attributes")
    if n_attributes == 0:
        return 0.0
    total = cuboid_count(n_attributes)
    remaining = cuboid_count(n_attributes - k_deleted)
    return (total - remaining) / total


def decrease_ratio_lower_bound(k_deleted: int) -> float:
    """The paper's Table IV values: ``(2**k - 1) / 2**k``."""
    if k_deleted < 0:
        raise ValueError("k must be non-negative")
    return (2**k_deleted - 1) / 2**k_deleted


def lattice_vertex_labels(
    schema: AttributeSchema, max_layer: int | None = None
) -> Dict[str, AttributeCombination]:
    """Label combinations ``"layer-index"`` as in Table V of the paper.

    Within a layer, vertices are ordered position by position with a
    specified element (in schema element order) sorting before a wildcard —
    e.g. in layer 2 of the paper's (3, 2, 2) example: ``(a1, b1, *)``,
    ``(a1, b2, *)``, ``(a1, *, c1)``, …, ``(*, b2, c2)``.  This reproduces
    Table V exactly.
    """

    def table_v_key(combination: AttributeCombination) -> Tuple:
        key = []
        for i, value in enumerate(combination.values):
            if value is None:
                key.append((1, -1))
            else:
                key.append((0, schema.encode(i, value)))
        return tuple(key)

    n = schema.n_attributes
    limit = n if max_layer is None else min(max_layer, n)
    labels: Dict[str, AttributeCombination] = {}
    for layer in range(1, limit + 1):
        combos = [
            combination
            for cuboid in cuboids_in_layer(n, layer)
            for combination in cuboid.combinations(schema)
        ]
        combos.sort(key=table_v_key)
        for index, combination in enumerate(combos, start=1):
            labels[f"{layer}-{index}"] = combination
    return labels
