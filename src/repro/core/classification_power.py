"""Classification Power and redundant-attribute deletion (§IV-C, Algorithm 1).

The Classification Power (CP) of an attribute measures how much splitting
the leaf table on that attribute reduces the label entropy (Eq. 1)::

    CP_attr = (Info(D) - Info_attr(D)) / Info(D)

``Info(D)`` is the Shannon entropy of the anomalous/normal label
distribution; ``Info_attr(D)`` is the support-weighted entropy after
partitioning by the attribute's elements (Fig. 6).  This is the relative
information gain of ID3 decision trees applied to the anomaly labels.

Criteria 1 says an attribute belonging to any RAP must have ``CP > t_CP``;
attributes at or below the threshold are redundant and deleted, shrinking
the cuboid lattice by at least ``1 - 2**-k`` (Proof 1 / Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .. import obs
from ..data.dataset import FineGrainedDataset
from ..obs import trace as _trace

__all__ = [
    "binary_entropy",
    "classification_power",
    "cp_powers_from_counts",
    "all_classification_powers",
    "partition_attributes",
    "delete_redundant_attributes",
    "AttributeDeletionResult",
]


def binary_entropy(p_anomalous: float) -> float:
    """Shannon entropy (nats) of a two-class distribution; ``0 log 0 := 0``."""
    if not 0.0 <= p_anomalous <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    entropy = 0.0
    for p in (p_anomalous, 1.0 - p_anomalous):
        if p > 0.0:
            entropy -= p * np.log(p)
    return float(entropy)


def cp_powers_from_counts(support, anomalous, n_rows, info_d):
    """Vectorized Eq. 1 from full-capacity count arrays.

    ``support`` and ``anomalous`` are dense per-element counts (zeros at
    unoccupied codes) whose **last** axis enumerates one attribute's
    elements; leading axes broadcast (the case-stacked path passes one
    row per case).  ``info_d`` broadcasts over the leading axes.

    Batch invariance: every step is elementwise except one ``np.sum``
    over the last axis, so evaluating a stack of cases returns bitwise
    the same values as evaluating each case alone — which is what keeps
    :meth:`repro.core.stacked.StackedCaseEngine.classification_powers`
    bit-identical to the serial :func:`classification_power`.
    """
    support = np.asarray(support, dtype=float)
    anomalous = np.asarray(anomalous, dtype=float)
    support, anomalous = np.broadcast_arrays(support, anomalous)
    info_d = np.asarray(info_d, dtype=float)
    occupied = support > 0
    p_a = np.zeros(support.shape)
    np.divide(anomalous, support, out=p_a, where=occupied)
    branch_entropy = np.zeros(support.shape)
    for p in (p_a, 1.0 - p_a):
        positive = occupied & (p > 0.0)
        contribution = np.zeros(support.shape)
        contribution[positive] = p[positive] * np.log(p[positive])
        branch_entropy -= contribution
    info_attr = np.sum(support / n_rows * branch_entropy, axis=-1)
    safe = np.where(info_d > 0.0, info_d, 1.0)
    return np.where(info_d > 0.0, (info_d - info_attr) / safe, 0.0)


def classification_power(dataset: FineGrainedDataset, attribute) -> float:
    """``CP_attr`` (Eq. 1) of one attribute over the labelled leaf table.

    Degenerate case: when the leaf labels are all-normal or all-anomalous,
    ``Info(D) = 0`` and no attribute can classify anything — CP is defined
    as ``0`` for every attribute (nothing to localize / nothing to prune by).

    The per-element counts run on the dataset's shared engine backend
    (numpy or native — identical either way); the entropy reduction is
    the shared :func:`cp_powers_from_counts`.
    """
    from .engine import engine_for

    index = dataset.schema.index_of(attribute)
    n = dataset.n_rows
    if n == 0:
        return 0.0
    info_d = binary_entropy(dataset.n_anomalous / n)
    if info_d == 0.0:
        return 0.0

    backend = engine_for(dataset).backend
    column = np.ascontiguousarray(dataset.codes[:, index])
    size = dataset.schema.size(index)
    support = backend.count_bincount(column, size)
    label_rows = np.flatnonzero(dataset.labels)
    anomalous = backend.count_bincount(
        np.ascontiguousarray(column[label_rows]), size
    )
    return float(cp_powers_from_counts(support, anomalous, n, info_d))


def all_classification_powers(dataset: FineGrainedDataset) -> Dict[str, float]:
    """CP of every schema attribute, keyed by attribute name."""
    return {
        name: classification_power(dataset, i)
        for i, name in enumerate(dataset.schema.names)
    }


@dataclass
class AttributeDeletionResult:
    """Output of Algorithm 1.

    ``kept_indices`` is the surviving ``AttributeSet'`` sorted by CP
    descending (the algorithm's final sort); ``cp_values`` records the CP of
    *every* attribute for diagnostics and the sensitivity study.
    """

    kept_indices: Tuple[int, ...]
    deleted_indices: Tuple[int, ...]
    cp_values: Dict[str, float]

    def kept_names(self, dataset: FineGrainedDataset) -> Tuple[str, ...]:
        return tuple(dataset.schema.names[i] for i in self.kept_indices)

    def deleted_names(self, dataset: FineGrainedDataset) -> Tuple[str, ...]:
        return tuple(dataset.schema.names[i] for i in self.deleted_indices)


def partition_attributes(
    cp_values: Dict[str, float], names: Tuple[str, ...], t_cp: float
) -> Tuple[Tuple[int, ...], Tuple[int, ...], bool]:
    """Algorithm 1's keep/delete decision from precomputed CP values.

    Returns ``(kept, deleted, forced_keep_all)`` with ``kept`` sorted by CP
    descending.  Shared by :func:`delete_redundant_attributes` and the
    case-stacked batch path (:mod:`repro.core.stacked`), so both make the
    identical decision for identical CP values.
    """
    if t_cp < 0.0:
        raise ValueError("t_cp must be non-negative")
    kept: List[int] = []
    deleted: List[int] = []
    for i, name in enumerate(names):
        if cp_values[name] > t_cp:
            kept.append(i)
        else:
            deleted.append(i)
    forced_keep_all = not kept
    if forced_keep_all:
        kept = list(range(len(names)))
        deleted = []
    kept.sort(key=lambda i: cp_values[names[i]], reverse=True)
    return tuple(kept), tuple(deleted), forced_keep_all


def delete_redundant_attributes(
    dataset: FineGrainedDataset, t_cp: float = 0.005
) -> AttributeDeletionResult:
    """Algorithm 1: drop attributes with ``CP <= t_CP``, sort the rest by CP.

    Degenerate guard: if *every* attribute falls at or below the threshold
    (e.g. the labels are all-normal, making every CP zero) the deletion is
    skipped and all attributes are kept — deleting everything would leave no
    lattice to search, and the paper's criteria only ever talks about
    attributes *outside* ``AttributeSet(RAPs)``.
    """
    if t_cp < 0.0:
        raise ValueError("t_cp must be non-negative")
    with obs.span("cp.attribute_deletion", t_cp=t_cp) as deletion_span:
        schema = dataset.schema
        cp_values = all_classification_powers(dataset)
        kept, deleted, forced_keep_all = partition_attributes(
            cp_values, tuple(schema.names), t_cp
        )
        deletion_span.set(
            cp_values=cp_values,
            kept=[schema.names[i] for i in kept],
            deleted=[schema.names[i] for i in deleted],
            forced_keep_all=forced_keep_all,
        )
        if _trace.ACTIVE:
            obs.inc("cp_attributes_total", len(kept), decision="kept")
            obs.inc("cp_attributes_total", len(deleted), decision="deleted")
        return AttributeDeletionResult(
            kept_indices=tuple(kept),
            deleted_indices=tuple(deleted),
            cp_values=cp_values,
        )
