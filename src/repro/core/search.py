"""AC-guided layer-by-layer top-down search (§IV-D, Algorithm 2).

The search walks the cuboid lattice restricted to the attributes that
survived Algorithm 1, breadth-first from layer 1 downwards.  For every
occupied combination of every cuboid it evaluates the Anomaly Confidence in
bulk; combinations exceeding ``t_conf`` become RAP candidates unless they
descend from an existing candidate (Criteria 3 — a RAP's descendants cannot
be RAPs, so whole branches are pruned).  As soon as the candidate set
covers every anomalous leaf of ``D`` the search stops early.

Because BFS visits all ancestors of a combination before the combination
itself, the candidate-descendant check exactly enforces Definition 1: a
candidate's parents were all evaluated earlier and found non-anomalous
(otherwise the parent — or one of *its* ancestors — would already be a
candidate and the combination would have been pruned).

Aggregation goes through the dataset's shared :class:`AggregationEngine`
(:func:`repro.core.engine.engine_for`): per-cuboid linear keys are cached,
support/anomalous/v/f come from one fused bincount pass, sub-cuboids roll
up from a prepared base aggregate, and candidate coverage uses the
engine's inverted index instead of full-table masks.  Pass ``n_jobs > 1``
to fan each layer's cuboids across a thread pool; the candidate set is
identical either way.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..data.dataset import FineGrainedDataset
from ..obs import trace as _trace
from ..resilience.budget import Budget
from .cuboid import Cuboid
from .engine import AggregationEngine, CandidateIndex, engine_for
from .scoring import RAPCandidate

__all__ = [
    "SearchStats",
    "SearchOutcome",
    "layerwise_topdown_search",
    "batched_layerwise_topdown_search",
]


@functools.lru_cache(maxsize=4096)
def _layer_cuboids(indices: Tuple[int, ...], layer: int) -> Tuple[Cuboid, ...]:
    """The layer's cuboids in lexicographic order (cuboids are immutable,
    so the lists are shared across searches and threshold sweeps)."""
    return tuple(Cuboid(subset) for subset in itertools.combinations(indices, layer))


@dataclass
class SearchStats:
    """Instrumentation of one search run (used by the efficiency benches)."""

    n_cuboids_visited: int = 0
    n_combinations_evaluated: int = 0
    n_candidates: int = 0
    #: Confident combinations skipped because an ancestor was already a
    #: candidate (Criteria 3) — how much work the pruning rule saved.
    n_criteria3_pruned: int = 0
    deepest_layer_visited: int = 0
    early_stopped: bool = False
    #: Why the search ended (``coverage_early_stop``, ``lattice_exhausted``,
    #: ``max_layer_reached``, ``no_anomalous_leaves`` or ``deadline``) — the
    #: same string the run span records, kept on the stats so serial and
    #: batched runs can be compared without a trace collector.
    stop_reason: Optional[str] = None
    #: Degradation-ladder rung that produced this result (``None`` when no
    #: :class:`~repro.resilience.degrade.DegradationPolicy` was active) —
    #: plumbed into :class:`~repro.service.pipeline.IncidentReport` and the
    #: ``resilience_degrade_total`` counter family.
    degradation_tier: Optional[str] = None


@dataclass
class SearchOutcome:
    """Candidates found by Algorithm 2 plus run instrumentation."""

    candidates: List[RAPCandidate]
    stats: SearchStats = field(default_factory=SearchStats)


def layerwise_topdown_search(
    dataset: FineGrainedDataset,
    attribute_indices: Sequence[int],
    t_conf: float = 0.8,
    early_stop: bool = True,
    max_layer: Optional[int] = None,
    engine: Optional[AggregationEngine] = None,
    n_jobs: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> SearchOutcome:
    """Algorithm 2 over the cuboids spanned by *attribute_indices*.

    Parameters
    ----------
    attribute_indices:
        The surviving ``AttributeSet'`` of Algorithm 1 (schema indices).
        Order does not affect the result set — cuboids within a layer are
        visited in a deterministic lexicographic order.
    t_conf:
        Criteria 2 threshold in ``(0, 1)``.
    early_stop:
        Stop once candidates cover every anomalous leaf (the paper's early
        stop strategy).  Disable for the ablation benchmark.
    max_layer:
        Optional cap on the BFS depth (all layers when ``None``).
    engine:
        Aggregation engine to use; defaults to the dataset's shared engine
        (:func:`repro.core.engine.engine_for`), so repeated searches and
        other consumers of the same interval reuse one cache.
    n_jobs:
        Worker count for per-layer cuboid fan-out; ``None`` inherits the
        engine's default, ``1`` keeps the layer scan lazy (aggregating
        only the cuboids the early stop actually reaches).
    budget:
        Optional cooperative deadline (:class:`~repro.resilience.Budget`),
        checked before each BFS layer.  An exhausted budget ends the
        search with ``stop_reason="deadline"`` and the candidates found
        so far — exactly the result of a ``max_layer`` cap at the last
        completed layer, so partial results stay deterministic.

    Returns
    -------
    :class:`SearchOutcome` with candidates in discovery (BFS) order; ranking
    is a separate step (:func:`repro.core.scoring.rank_candidates`).
    """
    if not 0.0 < t_conf < 1.0:
        raise ValueError("t_conf must lie in (0, 1)")
    indices = sorted(set(int(i) for i in attribute_indices))
    if not indices:
        raise ValueError("search needs at least one attribute")

    stats = SearchStats()
    candidates: List[RAPCandidate] = []
    anomalous_leaves = dataset.labels
    n_anomalous = int(anomalous_leaves.sum())

    # The span machinery must cost ~nothing when tracing is off: the flag is
    # hoisted once and the disabled path reuses a shared no-op context, so
    # no span objects or attribute dicts are ever built.
    traced = _trace.ACTIVE
    run_cm = (
        obs.span(
            "search.run",
            n_attributes=len(indices),
            t_conf=t_conf,
            n_anomalous_leaves=n_anomalous,
        )
        if traced
        else _trace.NULL_SPAN_CONTEXT
    )
    with run_cm as run_span:
        if n_anomalous == 0:
            stats.stop_reason = "no_anomalous_leaves"
            run_span.set(stop_reason="no_anomalous_leaves", n_candidates=0)
            return SearchOutcome(candidates=[], stats=stats)

        if engine is None:
            engine = engine_for(dataset)
        if traced:
            run_span.set(backend=engine.backend.name)
        engine.prepare(indices)
        candidate_index = CandidateIndex()
        covered = np.zeros(dataset.n_rows, dtype=bool)
        n_covered_anomalous = 0

        depth = len(indices) if max_layer is None else min(max_layer, len(indices))
        index_tuple = tuple(indices)

        def finish(stop_reason: str) -> SearchOutcome:
            stats.n_candidates = len(candidates)
            stats.stop_reason = stop_reason
            if traced:
                run_span.set(
                    stop_reason=stop_reason,
                    n_candidates=stats.n_candidates,
                    n_cuboids=stats.n_cuboids_visited,
                    n_combinations=stats.n_combinations_evaluated,
                    n_criteria3_pruned=stats.n_criteria3_pruned,
                    deepest_layer=stats.deepest_layer_visited,
                    coverage_fraction=n_covered_anomalous / n_anomalous,
                )
                obs.inc("search_layers_total", stats.deepest_layer_visited)
                obs.inc("search_cuboids_total", stats.n_cuboids_visited)
                obs.inc("search_combinations_total", stats.n_combinations_evaluated)
                obs.inc("search_candidates_total", stats.n_candidates)
                obs.inc("search_criteria3_pruned_total", stats.n_criteria3_pruned)
                if stats.early_stopped:
                    obs.inc("search_early_stops_total")
                if stop_reason == "deadline":
                    obs.inc("resilience_deadline_exceeded_total", path="serial")
            return SearchOutcome(candidates=candidates, stats=stats)

        for layer in range(1, depth + 1):
            # The budget is cooperative: checked only at layer boundaries,
            # so an expired deadline yields whole completed layers — the
            # same candidate prefix an explicit max_layer cap returns.
            if budget is not None and budget.expired():
                return finish("deadline")
            stats.deepest_layer_visited = layer
            cuboids = _layer_cuboids(index_tuple, layer)
            if traced:
                # Per-layer deltas are recovered from stats snapshots in the
                # ``finally`` below, so the scan loop itself carries no
                # tracing bookkeeping.
                layer_cm = obs.span("search.layer", layer=layer)
                snap = (
                    stats.n_cuboids_visited,
                    stats.n_combinations_evaluated,
                    len(candidates),
                    stats.n_criteria3_pruned,
                )
            else:
                layer_cm = _trace.NULL_SPAN_CONTEXT
            with layer_cm as layer_span:
                try:
                    for cuboid, (aggregate, anomalous_rows) in zip(
                        cuboids, engine.layer_scan(cuboids, t_conf, n_jobs)
                    ):
                        stats.n_cuboids_visited += 1
                        stats.n_combinations_evaluated += len(aggregate)
                        if not anomalous_rows:
                            continue
                        confidences = aggregate.confidence
                        spec = cuboid.attribute_indices
                        spec_set = frozenset(spec)
                        positions = {attr: pos for pos, attr in enumerate(spec)}
                        group_codes = aggregate.codes
                        for row in anomalous_rows:
                            codes_row = group_codes[row]
                            # Criteria 3 pruning works on raw codes; combinations are
                            # only decoded for the (few) surviving candidates.
                            if candidate_index.has_ancestor_entry(
                                spec_set, lambda i: int(codes_row[positions[i]])
                            ):
                                stats.n_criteria3_pruned += 1
                                continue
                            combination = aggregate.combination(row)
                            candidate = RAPCandidate(
                                combination=combination,
                                confidence=float(confidences[row]),
                                layer=layer,
                                support=int(aggregate.support[row]),
                                anomalous_support=int(aggregate.anomalous_support[row]),
                            )
                            candidates.append(candidate)
                            candidate_index.add_entry(
                                spec, tuple(int(c) for c in codes_row)
                            )
                            rows = engine.group_rows(aggregate, row)
                            fresh = rows[~covered[rows]]
                            if fresh.size:
                                covered[fresh] = True
                                n_covered_anomalous += int(anomalous_leaves[fresh].sum())
                            if early_stop and n_covered_anomalous >= n_anomalous:
                                stats.early_stopped = True
                                return finish("coverage_early_stop")
                finally:
                    if traced:
                        layer_span.set(
                            n_cuboids=stats.n_cuboids_visited - snap[0],
                            n_combinations=stats.n_combinations_evaluated - snap[1],
                            n_candidates=len(candidates) - snap[2],
                            n_criteria3_pruned=stats.n_criteria3_pruned - snap[3],
                            coverage_fraction=n_covered_anomalous / n_anomalous,
                            early_stopped=stats.early_stopped,
                        )

        return finish(
            "max_layer_reached" if depth < len(indices) else "lattice_exhausted"
        )


# -- case-stacked batched search ----------------------------------------------


@dataclass
class _CaseSearchState:
    """Per-case mutable state of one batched search (mirrors the serial loop)."""

    slot: int
    n_anomalous: int
    labels: np.ndarray
    covered: np.ndarray
    stats: SearchStats = field(default_factory=SearchStats)
    candidates: List[RAPCandidate] = field(default_factory=list)
    index: CandidateIndex = field(default_factory=CandidateIndex)
    n_covered_anomalous: int = 0
    outcome: Optional[SearchOutcome] = None

    def finish(self, stop_reason: str, traced: bool) -> None:
        self.stats.n_candidates = len(self.candidates)
        self.stats.stop_reason = stop_reason
        if traced:
            obs.inc("search_layers_total", self.stats.deepest_layer_visited)
            obs.inc("search_cuboids_total", self.stats.n_cuboids_visited)
            obs.inc("search_combinations_total", self.stats.n_combinations_evaluated)
            obs.inc("search_candidates_total", self.stats.n_candidates)
            obs.inc("search_criteria3_pruned_total", self.stats.n_criteria3_pruned)
            if self.stats.early_stopped:
                obs.inc("search_early_stops_total")
        self.outcome = SearchOutcome(candidates=self.candidates, stats=self.stats)


def batched_layerwise_topdown_search(
    stacked,
    slots: Sequence[int],
    attribute_indices: Sequence[int],
    t_conf: float = 0.8,
    early_stop: bool = True,
    max_layer: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> List[SearchOutcome]:
    """Algorithm 2 for a batch of cases sharing a leaf layout, layers fused.

    Runs the exact serial search semantics for every case slot of a
    :class:`~repro.core.stacked.StackedCaseEngine` at once: each BFS
    layer's anomalous supports for all still-active cases come from one
    case-stacked bincount pass, the layer's Criteria-2 threshold is a
    single 2-D comparison over the ``(active cases, layer groups)``
    confidence matrix, and only the (few) confident combinations reach
    the per-case Python loop — candidate construction, Criteria-3
    pruning, coverage and the early stop, replayed in the serial visit
    order.  Cases diverge naturally through the active mask: an
    early-stopped case simply drops out of later fused passes.

    Parameters
    ----------
    stacked:
        The batch's :class:`~repro.core.stacked.StackedCaseEngine`.
    slots:
        Case slots of *stacked* to search (all sharing *attribute_indices*,
        e.g. one Algorithm 1 subgroup).
    attribute_indices, t_conf, early_stop, max_layer, budget:
        As in :func:`layerwise_topdown_search`.  The budget is shared by
        the whole batch and checked once per fused layer: expiry finishes
        every still-active case with ``stop_reason="deadline"`` while
        already-stopped cases keep their own reasons.

    Returns
    -------
    One :class:`SearchOutcome` per requested slot, in *slots* order, with
    candidates, stats and stop reasons identical to per-case
    :func:`layerwise_topdown_search` runs.
    """
    if not 0.0 < t_conf < 1.0:
        raise ValueError("t_conf must lie in (0, 1)")
    indices = sorted(set(int(i) for i in attribute_indices))
    if not indices:
        raise ValueError("search needs at least one attribute")

    traced = _trace.ACTIVE
    states: List[_CaseSearchState] = []
    for slot in slots:
        state = _CaseSearchState(
            slot=slot,
            n_anomalous=stacked.n_anomalous(slot),
            labels=stacked.labels(slot),
            covered=np.zeros(stacked.n_rows, dtype=bool),
        )
        if state.n_anomalous == 0:
            state.finish("no_anomalous_leaves", traced=False)
        states.append(state)

    active = [i for i, state in enumerate(states) if state.outcome is None]
    depth = len(indices) if max_layer is None else min(max_layer, len(indices))
    index_tuple = tuple(indices)

    deadline_hit = False
    for layer in range(1, depth + 1):
        if not active:
            break
        # Same cooperative layer-boundary contract as the serial path: an
        # expired budget leaves every active case with complete layers only.
        if budget is not None and budget.expired():
            deadline_hit = True
            break
        cuboids = _layer_cuboids(index_tuple, layer)
        active_slots = [states[i].slot for i in active]
        layer_cm = (
            obs.span(
                "search.stacked_layer",
                layer=layer,
                n_active=len(active),
                n_cuboids=len(cuboids),
                backend=stacked.backend.name,
            )
            if traced
            else _trace.NULL_SPAN_CONTEXT
        )
        with layer_cm as layer_span:
            layer_data = stacked.layer_counts(cuboids, active_slots)
            # The whole layer's Criteria-2 probe is one 2-D comparison:
            # anomalous counts are stacked per case, support is shared.
            blocks = [
                entry.anomalous / np.maximum(entry.support, 1)[None, :]
                for entry in layer_data
            ]
            confidences = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=1)
            hit_rows, hit_cols = np.nonzero(confidences > t_conf)
            boundaries = [0]
            for entry in layer_data:
                boundaries.append(boundaries[-1] + entry.n_groups)
            # np.nonzero is row-major: each case's hit columns are an
            # ascending contiguous run, exactly the serial scan order.
            splits = np.searchsorted(hit_rows, np.arange(len(active) + 1))
            if traced:
                obs.inc("stacked_layers_fused_total")
                obs.inc("stacked_cases_active_total", len(active))
            still_active = []
            n_layer_candidates = 0
            for position, state_index in enumerate(active):
                state = states[state_index]
                state.stats.deepest_layer_visited = layer
                cols = hit_cols[splits[position] : splits[position + 1]]
                before = len(state.candidates)
                stopped = _scan_case_layer(
                    state,
                    layer,
                    layer_data,
                    boundaries,
                    cols,
                    confidences[position],
                    position,
                    early_stop,
                    stacked,
                )
                n_layer_candidates += len(state.candidates) - before
                if stopped:
                    state.finish("coverage_early_stop", traced)
                else:
                    still_active.append(state_index)
            if traced:
                layer_span.set(
                    n_candidates=n_layer_candidates,
                    n_early_stopped=len(active) - len(still_active),
                )
            active = still_active

    if deadline_hit:
        tail_reason = "deadline"
        if traced:
            obs.inc(
                "resilience_deadline_exceeded_total", len(active), path="stacked"
            )
    else:
        tail_reason = (
            "max_layer_reached" if depth < len(indices) else "lattice_exhausted"
        )
    for state in states:
        if state.outcome is None:
            state.finish(tail_reason, traced)
    return [state.outcome for state in states]


def _scan_case_layer(
    state: "_CaseSearchState",
    layer: int,
    layer_data,
    boundaries: List[int],
    cols: np.ndarray,
    conf_row: np.ndarray,
    position: int,
    early_stop: bool,
    stacked,
) -> bool:
    """One case's pass over one fused layer; returns True on early stop.

    Replays the serial per-layer loop of :func:`layerwise_topdown_search`
    verbatim — same cuboid order, ascending group rows, identical stats
    bookkeeping — against the shared stacked structures.
    """
    stats = state.stats
    pointer = 0
    n_hits = len(cols)
    for block_index, entry in enumerate(layer_data):
        stats.n_cuboids_visited += 1
        stats.n_combinations_evaluated += entry.n_groups
        low, high = boundaries[block_index], boundaries[block_index + 1]
        rows: List[int] = []
        while pointer < n_hits and cols[pointer] < high:
            rows.append(int(cols[pointer]) - low)
            pointer += 1
        if not rows:
            continue
        cuboid = entry.cuboid
        spec = cuboid.attribute_indices
        spec_set = frozenset(spec)
        positions = {attr: pos for pos, attr in enumerate(spec)}
        group_codes = entry.codes
        for row in rows:
            codes_row = group_codes[row]
            if state.index.has_ancestor_entry(
                spec_set, lambda i: int(codes_row[positions[i]])
            ):
                stats.n_criteria3_pruned += 1
                continue
            combination = stacked.decode_combination(cuboid, codes_row)
            candidate = RAPCandidate(
                combination=combination,
                confidence=float(conf_row[low + row]),
                layer=layer,
                support=int(entry.support[row]),
                anomalous_support=int(entry.anomalous[position, row]),
            )
            state.candidates.append(candidate)
            state.index.add_entry(spec, tuple(int(c) for c in codes_row))
            covered_rows = stacked.group_rows(cuboid, row)
            fresh = covered_rows[~state.covered[covered_rows]]
            if fresh.size:
                state.covered[fresh] = True
                state.n_covered_anomalous += int(state.labels[fresh].sum())
            if early_stop and state.n_covered_anomalous >= state.n_anomalous:
                stats.early_stopped = True
                return True
    return False
