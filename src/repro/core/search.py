"""AC-guided layer-by-layer top-down search (§IV-D, Algorithm 2).

The search walks the cuboid lattice restricted to the attributes that
survived Algorithm 1, breadth-first from layer 1 downwards.  For every
occupied combination of every cuboid it evaluates the Anomaly Confidence in
bulk; combinations exceeding ``t_conf`` become RAP candidates unless they
descend from an existing candidate (Criteria 3 — a RAP's descendants cannot
be RAPs, so whole branches are pruned).  As soon as the candidate set
covers every anomalous leaf of ``D`` the search stops early.

Because BFS visits all ancestors of a combination before the combination
itself, the candidate-descendant check exactly enforces Definition 1: a
candidate's parents were all evaluated earlier and found non-anomalous
(otherwise the parent — or one of *its* ancestors — would already be a
candidate and the combination would have been pruned).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import FineGrainedDataset
from .attribute import AttributeCombination
from .cuboid import Cuboid
from .scoring import RAPCandidate

__all__ = ["SearchStats", "SearchOutcome", "layerwise_topdown_search"]


@dataclass
class SearchStats:
    """Instrumentation of one search run (used by the efficiency benches)."""

    n_cuboids_visited: int = 0
    n_combinations_evaluated: int = 0
    n_candidates: int = 0
    deepest_layer_visited: int = 0
    early_stopped: bool = False


@dataclass
class SearchOutcome:
    """Candidates found by Algorithm 2 plus run instrumentation."""

    candidates: List[RAPCandidate]
    stats: SearchStats = field(default_factory=SearchStats)


def _descends_from_any(
    combination: AttributeCombination, candidates: Sequence[RAPCandidate]
) -> bool:
    """Criteria 3 check: is *combination* below any existing candidate?"""
    return any(c.combination.is_ancestor_of(combination) for c in candidates)


def layerwise_topdown_search(
    dataset: FineGrainedDataset,
    attribute_indices: Sequence[int],
    t_conf: float = 0.8,
    early_stop: bool = True,
    max_layer: Optional[int] = None,
) -> SearchOutcome:
    """Algorithm 2 over the cuboids spanned by *attribute_indices*.

    Parameters
    ----------
    attribute_indices:
        The surviving ``AttributeSet'`` of Algorithm 1 (schema indices).
        Order does not affect the result set — cuboids within a layer are
        visited in a deterministic lexicographic order.
    t_conf:
        Criteria 2 threshold in ``(0, 1)``.
    early_stop:
        Stop once candidates cover every anomalous leaf (the paper's early
        stop strategy).  Disable for the ablation benchmark.
    max_layer:
        Optional cap on the BFS depth (all layers when ``None``).

    Returns
    -------
    :class:`SearchOutcome` with candidates in discovery (BFS) order; ranking
    is a separate step (:func:`repro.core.scoring.rank_candidates`).
    """
    if not 0.0 < t_conf < 1.0:
        raise ValueError("t_conf must lie in (0, 1)")
    indices = sorted(set(int(i) for i in attribute_indices))
    if not indices:
        raise ValueError("search needs at least one attribute")

    stats = SearchStats()
    candidates: List[RAPCandidate] = []
    anomalous_leaves = dataset.labels
    n_anomalous = int(anomalous_leaves.sum())
    if n_anomalous == 0:
        return SearchOutcome(candidates=[], stats=stats)
    covered = np.zeros(dataset.n_rows, dtype=bool)

    depth = len(indices) if max_layer is None else min(max_layer, len(indices))
    for layer in range(1, depth + 1):
        stats.deepest_layer_visited = layer
        for attr_subset in itertools.combinations(indices, layer):
            cuboid = Cuboid(attr_subset)
            stats.n_cuboids_visited += 1
            aggregate = dataset.aggregate(cuboid)
            confidences = aggregate.confidence
            stats.n_combinations_evaluated += len(aggregate)
            anomalous_rows = np.flatnonzero(confidences > t_conf)
            for row in anomalous_rows:
                combination = aggregate.combination(int(row))
                if _descends_from_any(combination, candidates):
                    continue
                candidate = RAPCandidate(
                    combination=combination,
                    confidence=float(confidences[row]),
                    layer=layer,
                    support=int(aggregate.support[row]),
                    anomalous_support=int(aggregate.anomalous_support[row]),
                )
                candidates.append(candidate)
                covered |= dataset.mask_of(combination)
                if early_stop and int((covered & anomalous_leaves).sum()) >= n_anomalous:
                    stats.n_candidates = len(candidates)
                    stats.early_stopped = True
                    return SearchOutcome(candidates=candidates, stats=stats)

    stats.n_candidates = len(candidates)
    return SearchOutcome(candidates=candidates, stats=stats)
