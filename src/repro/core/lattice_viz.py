"""Structural rendering of the cuboid hierarchy and the search DAG.

Regenerates the paper's two structural figures as text/Graphviz:

* :func:`render_cuboid_hierarchy` — Fig. 2: the ``2^n - 1`` cuboids in
  their layers with parent-child edges.
* :func:`search_dag` / :func:`render_search_dag_dot` — Fig. 7: the
  attribute-combination DAG with Table V's ``layer-index`` vertex labels,
  annotated with a search outcome (anomalous RAP candidates in red,
  visited-normal in blue, pruned-unvisited in white — the paper's color
  coding, expressed as DOT attributes).

DOT output renders with any Graphviz install; the ASCII variants are for
terminals and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..data.dataset import FineGrainedDataset
from .attribute import AttributeCombination, AttributeSchema
from .cuboid import Cuboid, cuboids_in_layer, enumerate_cuboids, lattice_vertex_labels
from .search import SearchOutcome

__all__ = [
    "render_cuboid_hierarchy",
    "VertexState",
    "search_dag",
    "render_search_dag_dot",
]


def render_cuboid_hierarchy(schema: AttributeSchema) -> str:
    """Fig. 2 as text: one line per layer, each cuboid with its length."""
    n = schema.n_attributes
    lines = []
    for layer in range(1, n + 1):
        entries = []
        for cuboid in cuboids_in_layer(n, layer):
            names = ",".join(cuboid.names(schema))
            entries.append(f"Cub_{{{names}}}({cuboid.length(schema)})")
        lines.append(f"layer {layer}: " + "  ".join(entries))
    return "\n".join(lines)


@dataclass(frozen=True)
class VertexState:
    """One DAG vertex with its Table V label and search status."""

    label: str
    combination: AttributeCombination
    #: "candidate" (red in Fig. 7), "visited" (blue), or "pruned" (white).
    status: str


def search_dag(
    dataset: FineGrainedDataset,
    outcome: SearchOutcome,
    max_layer: Optional[int] = None,
) -> Tuple[List[VertexState], List[Tuple[str, str]]]:
    """The Fig. 7 DAG for a finished search.

    Vertices carry Table V labels; edges are the direct parent-child
    relations between consecutive layers.  Status follows the paper's
    coloring: combinations below a candidate are ``pruned``; candidates
    are ``candidate``; everything else the BFS evaluated is ``visited``.
    """
    schema = dataset.schema
    limit = schema.n_attributes if max_layer is None else max_layer
    labels = lattice_vertex_labels(schema, max_layer=limit)
    by_combination = {combination: label for label, combination in labels.items()}
    candidates = [c.combination for c in outcome.candidates]

    vertices: List[VertexState] = []
    for label, combination in labels.items():
        if combination in candidates:
            status = "candidate"
        elif any(candidate.is_ancestor_of(combination) for candidate in candidates):
            status = "pruned"
        else:
            status = "visited"
        vertices.append(VertexState(label=label, combination=combination, status=status))

    edges: List[Tuple[str, str]] = []
    for label, combination in labels.items():
        for child in combination.children(schema):
            child_label = by_combination.get(child)
            if child_label is not None:
                edges.append((label, child_label))
    return vertices, edges


_DOT_STYLE = {
    "candidate": 'fillcolor="#e06666", style=filled',
    "visited": 'fillcolor="#6fa8dc", style=filled',
    "pruned": 'fillcolor="white", style=filled',
}


def render_search_dag_dot(
    dataset: FineGrainedDataset,
    outcome: SearchOutcome,
    max_layer: Optional[int] = None,
    graph_name: str = "search_dag",
) -> str:
    """Graphviz DOT for the Fig. 7 DAG of a finished search."""
    vertices, edges = search_dag(dataset, outcome, max_layer=max_layer)
    lines = [f"digraph {graph_name} {{", "  rankdir=TB;", "  node [shape=ellipse];"]
    layer_members: Dict[int, List[str]] = {}
    for vertex in vertices:
        style = _DOT_STYLE[vertex.status]
        tooltip = str(vertex.combination).replace('"', "'")
        lines.append(
            f'  "{vertex.label}" [label="{vertex.label}", tooltip="{tooltip}", {style}];'
        )
        layer = int(vertex.label.split("-")[0])
        layer_members.setdefault(layer, []).append(vertex.label)
    for layer, members in sorted(layer_members.items()):
        ranked = "; ".join(f'"{m}"' for m in members)
        lines.append(f"  {{ rank=same; {ranked} }}")
    for parent, child in edges:
        lines.append(f'  "{parent}" -> "{child}";')
    lines.append("}")
    return "\n".join(lines)
