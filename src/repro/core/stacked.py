"""Case-stacked vectorized aggregation: every case of a batch in one pass.

The paper's operating regime (§V) re-localizes the *same* leaf population
over and over: one ISP-CDN deployment re-evaluates 10 560 leaf
combinations every 60 s, and the RAPMD evaluation protocol replays long
runs of cases that share one schema.  The per-case execution path pays
the full per-search overhead each time — a key pass, four ``bincount``
passes and a Python search loop per case — even though everything that
depends only on the leaf *codes* is identical across the batch.

:class:`StackedCaseEngine` exploits that sharing.  For a batch of cases
over one ``(schema, leaf-index)`` layout it stacks the per-case
``value`` / ``forecast`` / ``anomaly`` columns into ``(n_cases, n_leaves)``
matrices and computes cuboid aggregates for **all cases at once**:

* **Shared geometry** — linear keys, group occupancy, per-group support
  and group codes depend only on the codes, so they are computed once per
  batch (through a private :class:`~repro.core.engine.AggregationEngine`,
  reusing its cached :meth:`~repro.core.engine.AggregationEngine.linear_keys`)
  and shared by every case.
* **Case-stacked bincount** — per-case anomalous supports of one BFS
  layer come from a single ``np.bincount`` over
  ``case_id * n_groups + linear_key``: each case's key range is disjoint
  after offsetting, so one pass replaces ``n_cases`` separate passes.
  Key construction is overflow-checked and promoted to the smallest safe
  integer dtype (:func:`stacked_key_dtype`: ``uint32`` → ``int64``).
* **Stacked values** — when a consumer needs ``v``/``f`` sums,
  :meth:`StackedCaseEngine.aggregates` runs the same case-offset trick
  with weighted passes; the concatenation is case-major in leaf-row
  order, so per-bucket float additions happen in exactly the order a
  cold per-case engine uses — the results are **bitwise identical** to
  per-case aggregation, not merely close.
* **Stacked Classification Power** — Algorithm 1's per-attribute
  bincounts are layer-1 cuboid aggregates, so one stacked pass yields
  every case's CP inputs; the scalar entropy math then replays the exact
  serial expressions per case, keeping the kept/deleted decision
  bit-identical to :func:`~repro.core.classification_power.delete_redundant_attributes`.

The batched top-down search
(:func:`repro.core.search.batched_layerwise_topdown_search`) drives this
engine layer by layer with an active-case mask: cases diverge naturally
(different CP-deleted attributes, Criteria-3 pruning, coverage early
stop) while the layers they share stay fused.  Only integer counts feed
the search (confidence is an elementwise integer division), which is why
candidates are bitwise identical to the serial loop regardless of how
the serial engine resolved its aggregates (leaf-level, roll-up or warm
refresh paths all agree on the integer lanes).

Memory footprint of one fused pass is bounded: the shared key matrix is
at most ``_MAX_STACKED_ELEMENTS`` int64 elements and each stacked
bincount allocates at most ``_MAX_STACKED_BINS`` bins; wider layers and
larger batches are chunked (chunking never changes results — the integer
lanes are order-free and the value lanes stay case-major).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..data.dataset import CuboidAggregate, FineGrainedDataset
from ..native import coerce_backend
from ..obs import trace as _trace
from .attribute import AttributeCombination
from .classification_power import (
    AttributeDeletionResult,
    binary_entropy,
    cp_powers_from_counts,
    partition_attributes,
)
from .cuboid import Cuboid
from .engine import AggregationEngine

__all__ = [
    "StackedCaseEngine",
    "StackedLayerCuboid",
    "stacked_key_dtype",
    "group_datasets_by_layout",
]

#: Upper bound on the element count of one shared key matrix
#: (``n_cuboids x n_rows``); wider layers are chunked.  Matches the
#: aggregation engine's batch budget so the two layers chunk alike.
_MAX_STACKED_ELEMENTS = 1 << 21

#: Upper bound on the bin count of one stacked ``bincount`` output
#: (``n_cases x sum(capacities)``); larger batches are chunked over
#: cases.  2^22 int64 bins = 32 MiB per pass.
_MAX_STACKED_BINS = 1 << 22


def stacked_key_dtype(n_slots: int, capacity: int) -> np.dtype:
    """Smallest integer dtype that holds ``slot * capacity + key`` safely.

    The stacked key space spans ``n_slots * capacity`` values (exact
    Python-int arithmetic, so the check itself cannot overflow).  Returns
    ``uint32`` when every key fits in 32 bits, else ``int64``; raises
    :class:`OverflowError` when even ``int64`` cannot represent the top
    key — the caller must chunk the batch instead of wrapping around.
    """
    if n_slots < 0 or capacity < 0:
        raise ValueError("n_slots and capacity must be non-negative")
    span = int(n_slots) * int(capacity)
    if span > 2**63:
        raise OverflowError(
            f"stacked key space of {n_slots} cases x {capacity} groups "
            f"({span} keys) exceeds int64; chunk the batch"
        )
    if span <= 2**32:
        return np.dtype(np.uint32)
    return np.dtype(np.int64)


def group_datasets_by_layout(
    datasets: Sequence[FineGrainedDataset],
) -> List[List[int]]:
    """Partition dataset indices into groups sharing a ``(schema, codes)`` layout.

    Groups preserve first-seen order and each group's member list is in
    input order, so batched results can be scattered back to input
    positions deterministically.  Codes equality is resolved by object
    identity first (consecutive snapshots of one KPI share buffers), then
    by content digest with an exact ``array_equal`` confirmation, so a
    digest collision can never merge distinct layouts.
    """
    groups: List[List[int]] = []
    reps: List[FineGrainedDataset] = []
    by_key: Dict[tuple, List[int]] = {}
    digest_cache: Dict[int, bytes] = {}

    def digest_of(codes: np.ndarray) -> bytes:
        cached = digest_cache.get(id(codes))
        if cached is None:
            cached = hashlib.blake2b(
                np.ascontiguousarray(codes).tobytes(), digest_size=16
            ).digest()
            digest_cache[id(codes)] = cached
        return cached

    for index, dataset in enumerate(datasets):
        key = (
            tuple(dataset.schema.names),
            tuple(dataset.schema.sizes),
            dataset.codes.shape,
            digest_of(dataset.codes),
        )
        candidates = by_key.get(key, [])
        placed = False
        for group_index in candidates:
            rep = reps[group_index]
            if dataset.codes is rep.codes or np.array_equal(
                dataset.codes, rep.codes
            ):
                groups[group_index].append(index)
                placed = True
                break
        if not placed:
            by_key.setdefault(key, []).append(len(groups))
            groups.append([index])
            reps.append(dataset)
    return groups


@dataclass
class _SharedShape:
    """Label-independent per-cuboid geometry, shared by every case."""

    #: Flat linear keys of the occupied groups, ascending.
    occupied: np.ndarray
    #: Leaf count per occupied group (int64).
    support: np.ndarray
    #: Element codes per occupied group, shape (G, d).
    codes: np.ndarray
    #: Linear-key capacity of the cuboid.
    capacity: int


@dataclass
class StackedLayerCuboid:
    """One cuboid's shared geometry plus the batch's stacked anomalous counts."""

    cuboid: Cuboid
    #: Element codes per occupied group, shape (G, d) — shared across cases.
    codes: np.ndarray
    #: Leaf support per occupied group — shared across cases.
    support: np.ndarray
    #: Anomalous support per (requested case, occupied group), shape (S, G).
    anomalous: np.ndarray

    @property
    def n_groups(self) -> int:
        return int(self.support.size)


class StackedCaseEngine:
    """Fused cuboid aggregation over cases sharing one leaf layout.

    Parameters
    ----------
    datasets:
        Non-empty sequence of leaf tables agreeing on schema and codes
        (labels, ``v`` and ``f`` may differ freely — nothing the stacked
        passes share depends on them).  Use
        :func:`group_datasets_by_layout` to split a mixed collection.
    backend:
        Kernel backend for the fused stacked passes (name, instance or
        ``None`` for the process default); both backends return
        bitwise-identical counts and sums.
    """

    def __init__(self, datasets: Sequence[FineGrainedDataset], backend=None):
        if not datasets:
            raise ValueError("StackedCaseEngine needs at least one dataset")
        first = datasets[0]
        for dataset in datasets[1:]:
            if dataset.schema != first.schema:
                raise ValueError("stacked cases must share one schema")
            if dataset.codes is not first.codes and not (
                dataset.codes.shape == first.codes.shape
                and np.array_equal(dataset.codes, first.codes)
            ):
                raise ValueError("stacked cases must share one leaf population")
        self.datasets = list(datasets)
        self.schema = first.schema
        self.n_rows = first.n_rows
        self.n_cases = len(self.datasets)
        self.backend = coerce_backend(backend)
        #: Private engine over the representative dataset — *not* installed
        #: in the shared per-dataset registry, so building a stacked batch
        #: never changes how a later serial run over the same dataset
        #: resolves its aggregates.
        self.engine = AggregationEngine(first, backend=self.backend)
        self._label_rows: List[np.ndarray] = [
            np.flatnonzero(dataset.labels) for dataset in self.datasets
        ]
        self._shapes: Dict[Tuple[int, ...], _SharedShape] = {}
        #: Covered-row cache per (cuboid indices, occupied group index),
        #: shared by every case's coverage bookkeeping.
        self._rows: Dict[Tuple[Tuple[int, ...], int], np.ndarray] = {}

    # -- per-case accessors ----------------------------------------------------

    def labels(self, slot: int) -> np.ndarray:
        return self.datasets[slot].labels

    def n_anomalous(self, slot: int) -> int:
        return int(self._label_rows[slot].size)

    # -- shared geometry -------------------------------------------------------

    def _shape(self, cuboid: Cuboid) -> _SharedShape:
        """Occupancy, support and group codes of *cuboid* (shared, cached)."""
        indices = cuboid.attribute_indices
        shape = self._shapes.get(indices)
        if shape is None:
            keys, capacity = self.engine.linear_keys(cuboid)
            support = self.backend.count_bincount(keys, capacity)
            if _trace.ACTIVE:
                obs.inc("stacked_bincount_passes_total", kind="support")
            occupied = np.flatnonzero(support)
            sizes = [self.schema.size(i) for i in indices]
            if len(sizes) == 1:
                codes = occupied.reshape(-1, 1)
            else:
                codes = np.stack(np.unravel_index(occupied, sizes), axis=1).astype(
                    np.int64
                )
            shape = _SharedShape(
                occupied=occupied,
                support=support[occupied].astype(np.int64, copy=False),
                codes=codes,
                capacity=capacity,
            )
            self._shapes[indices] = shape
        return shape

    def group_rows(self, cuboid: Cuboid, group_index: int) -> np.ndarray:
        """Covered leaf rows of one occupied group (shared across cases).

        Equivalent to ``AggregationEngine.group_rows`` on any case of the
        batch: membership depends only on the codes, so the rows of a
        candidate's combination are computed once and reused by every
        case's coverage update.
        """
        indices = cuboid.attribute_indices
        key = (indices, int(group_index))
        rows = self._rows.get(key)
        if rows is None:
            shape = self._shape(cuboid)
            keys, __ = self.engine.linear_keys(cuboid)
            rows = np.flatnonzero(keys == shape.occupied[group_index])
            self._rows[key] = rows
        return rows

    def decode_combination(
        self, cuboid: Cuboid, codes_row: np.ndarray
    ) -> AttributeCombination:
        """Decode one occupied group's codes (mirrors ``CuboidAggregate.combination``)."""
        values: List[Optional[str]] = [None] * self.schema.n_attributes
        for position, attr_index in enumerate(cuboid.attribute_indices):
            values[attr_index] = self.schema.decode(
                attr_index, int(codes_row[position])
            )
        return AttributeCombination(values)

    # -- fused stacked passes --------------------------------------------------

    def _stacked_anomalous(
        self,
        cuboids: Sequence[Cuboid],
        shapes: Sequence[_SharedShape],
        slots: Sequence[int],
    ) -> List[np.ndarray]:
        """Per-cuboid ``(len(slots), G)`` anomalous supports, one fused pass.

        Cuboid linear-key vectors are shifted into disjoint ranges and
        every case's anomalous-row keys are shifted by
        ``case_slot * total_capacity`` on top, so a single ``bincount``
        yields every (case, cuboid, group) count.  Counts are integers,
        so the concatenation order is irrelevant — chunking over cases
        cannot change the result.
        """
        n_slots = len(slots)
        offsets = []
        total_capacity = 0
        for shape in shapes:
            offsets.append(total_capacity)
            total_capacity += shape.capacity
        results = [
            np.zeros((n_slots, shape.occupied.size), dtype=np.int64)
            for shape in shapes
        ]
        if total_capacity == 0 or n_slots == 0:
            return results
        # Chunk cases so one pass allocates at most _MAX_STACKED_BINS bins.
        per_chunk = max(1, _MAX_STACKED_BINS // max(1, total_capacity))
        key_columns = [self.engine.linear_keys(cuboid)[0] for cuboid in cuboids]
        for chunk_start in range(0, n_slots, per_chunk):
            chunk = list(range(chunk_start, min(chunk_start + per_chunk, n_slots)))
            rows_per_case = [self._label_rows[slots[i]] for i in chunk]
            lengths = [rows.size for rows in rows_per_case]
            total_rows = sum(lengths)
            if total_rows == 0:
                continue
            rows_cat = np.concatenate(rows_per_case)
            stacked_key_dtype(len(chunk), total_capacity)  # overflow guard
            counts = self.backend.stacked_anomalous(
                key_columns, offsets, total_capacity, rows_cat, lengths
            )
            if _trace.ACTIVE:
                obs.inc("stacked_bincount_passes_total", kind="anomalous")
            for j, shape in enumerate(shapes):
                block = counts[:, offsets[j] : offsets[j] + shape.capacity]
                results[j][chunk, :] = block[:, shape.occupied]
        return results

    def layer_counts(
        self, cuboids: Sequence[Cuboid], slots: Sequence[int]
    ) -> List[StackedLayerCuboid]:
        """One BFS layer's stacked counts for the requested case slots.

        Support, occupancy and group codes are shared (cached across
        layers and searches of this batch); anomalous supports for all
        *slots* come from fused case-stacked bincounts.  Cuboid chunks
        respect the shared key-matrix budget.
        """
        shapes = [self._shape(cuboid) for cuboid in cuboids]
        per_chunk = max(1, _MAX_STACKED_ELEMENTS // max(1, self.n_rows))
        anomalous: List[np.ndarray] = []
        for start in range(0, len(cuboids), per_chunk):
            stop = min(start + per_chunk, len(cuboids))
            anomalous.extend(
                self._stacked_anomalous(
                    cuboids[start:stop], shapes[start:stop], slots
                )
            )
        return [
            StackedLayerCuboid(
                cuboid=cuboid,
                codes=shape.codes,
                support=shape.support,
                anomalous=counts,
            )
            for cuboid, shape, counts in zip(cuboids, shapes, anomalous)
        ]

    def aggregates(
        self, cuboid: Cuboid, slots: Optional[Sequence[int]] = None
    ) -> List[CuboidAggregate]:
        """Full per-case aggregates of *cuboid*, including ``v``/``f`` sums.

        The value lanes stack the per-case ``value``/``forecast`` columns
        with case-offset keys concatenated **case-major in leaf-row
        order**, so per-bucket float additions replay exactly the order a
        cold per-case engine uses — the returned aggregates are bitwise
        identical to ``AggregationEngine.aggregate`` on each case alone.
        """
        picked = list(range(self.n_cases)) if slots is None else list(slots)
        shape = self._shape(cuboid)
        keys, capacity = self.engine.linear_keys(cuboid)
        anomalous = self._stacked_anomalous([cuboid], [shape], picked)[0]
        n_slots = len(picked)
        v_sums = np.empty((n_slots, shape.occupied.size))
        f_sums = np.empty((n_slots, shape.occupied.size))
        # Case-major chunks bounded by the key-matrix budget.
        per_chunk = max(1, _MAX_STACKED_ELEMENTS // max(1, self.n_rows))
        for start in range(0, n_slots, per_chunk):
            chunk = picked[start : start + per_chunk]
            v_all, f_all = self.backend.stacked_weighted(
                keys,
                capacity,
                [
                    [self.datasets[s].v for s in chunk],
                    [self.datasets[s].f for s in chunk],
                ],
            )
            if _trace.ACTIVE:
                obs.inc("stacked_bincount_passes_total", 2, kind="values")
            v_sums[start : start + len(chunk)] = v_all[:, shape.occupied]
            f_sums[start : start + len(chunk)] = f_all[:, shape.occupied]
        return [
            CuboidAggregate(
                cuboid=cuboid,
                schema=self.schema,
                codes=shape.codes,
                support=shape.support,
                anomalous_support=anomalous[i],
                v_sum=v_sums[i],
                f_sum=f_sums[i],
            )
            for i in range(n_slots)
        ]

    # -- Algorithm 1, stacked --------------------------------------------------

    def classification_powers(self) -> np.ndarray:
        """CP of every attribute for every case, shape ``(n_cases, n_attributes)``.

        The per-attribute support/anomalous counts are layer-1 cuboid
        aggregates and come from one stacked pass on the active backend;
        the entropy reduction is the shared batch-invariant
        :func:`~repro.core.classification_power.cp_powers_from_counts`,
        so every CP value is bitwise equal to the serial
        :func:`~repro.core.classification_power.classification_power`.
        """
        n = self.n_rows
        n_attributes = self.schema.n_attributes
        powers = np.zeros((self.n_cases, n_attributes))
        if n == 0:
            return powers
        slots = list(range(self.n_cases))
        cuboids = [Cuboid((i,)) for i in range(n_attributes)]
        layer = self.layer_counts(cuboids, slots)
        info_d = np.array(
            [binary_entropy(self.n_anomalous(slot) / n) for slot in slots]
        )
        for attr_index, entry in enumerate(layer):
            size = self.schema.size(attr_index)
            shape = self._shapes[(attr_index,)]
            # cp_powers_from_counts expects full-capacity arrays (zeros
            # at unoccupied codes); scatter the shared counts back.
            support = np.zeros(size)
            support[shape.occupied] = shape.support
            anomalous = np.zeros((len(slots), size))
            anomalous[:, shape.occupied] = entry.anomalous
            powers[:, attr_index] = cp_powers_from_counts(
                support, anomalous, n, info_d
            )
        return powers

    def attribute_deletions(self, t_cp: float) -> List[AttributeDeletionResult]:
        """Algorithm 1 for every case, from one stacked CP pass.

        Decisions are made by the same
        :func:`~repro.core.classification_power.partition_attributes`
        helper the serial path uses, so kept/deleted sets and their
        CP-descending order are identical to per-case
        :func:`delete_redundant_attributes` calls.
        """
        if t_cp < 0.0:
            raise ValueError("t_cp must be non-negative")
        names = tuple(self.schema.names)
        powers = self.classification_powers()
        results = []
        traced = _trace.ACTIVE
        for slot in range(self.n_cases):
            cp_values = {
                name: float(powers[slot, i]) for i, name in enumerate(names)
            }
            kept, deleted, __ = partition_attributes(cp_values, names, t_cp)
            if traced:
                obs.inc("cp_attributes_total", len(kept), decision="kept")
                obs.inc("cp_attributes_total", len(deleted), decision="deleted")
            results.append(
                AttributeDeletionResult(
                    kept_indices=kept,
                    deleted_indices=deleted,
                    cp_values=cp_values,
                )
            )
        return results
