"""Streaming delta localization: patch cuboid aggregates across ticks.

Production CDN traffic arrives as a 60 s-interval stream over the *same*
leaf schema, yet a stateless run pays the full shared-aggregation cost
every tick even when only a small fraction of leaves changed.  A
:class:`DeltaSession` exploits the streaming structure:

* **Diff** — the incoming leaf table is compared element-wise against the
  previous tick's (``v``, ``f`` and labels); only the changed rows feed
  the patch pass.
* **Patch** — every cuboid aggregate cached on the previous engine is
  rebuilt by subtract-old/add-new on its lanes: the changed rows' linear
  keys for *all* cached cuboids come from one integer matmul (the same
  stride-matrix idiom as
  :meth:`~repro.core.engine.AggregationEngine._aggregate_batch`), and a
  handful of bincounts over those keys yields dense per-group deltas.
  Occupancy, support and group codes are label-independent and shared by
  reference; anomalous support is patched in **exact integer** arithmetic,
  so candidate sets, confidences and RAPScores are bit-identical to a
  cold run on every tick.  The float ``v``/``f`` lanes accumulate
  summation-order rounding instead, which is why they are
* **Re-based** — every :attr:`DeltaConfig.rebase_every` patched ticks, and
  immediately whenever the per-cuboid lane totals drift from the leaf
  table's true sums beyond :attr:`DeltaConfig.drift_rtol`, the float lanes
  are recomputed from the leaves over the engine's cached keys — the same
  summation order as a cold batched pass, so a re-base restores bitwise
  equality with a cold engine.
* **Cold fallback** — a schema/layout change (new attribute value, new
  leaf population) re-anchors the session on a fresh engine; a tick whose
  changed-leaf fraction exceeds the crossover threshold, or whose
  degradation policy steps off the ``delta`` tier, falls back to cold
  (warm-clone) aggregation.  The crossover is a config knob with an
  ``"auto"`` mode that *measures* the break-even point from observed cold
  and patched tick latencies instead of guessing.

The session only supplies engines; running the search stays with
:class:`~repro.core.incremental.StreamingRAPMiner` (the miner-level
wrapper) and :class:`~repro.service.pipeline.LocalizationService` (which
drives a session per monitored stream by default).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..data.dataset import CuboidAggregate, FineGrainedDataset
from ..obs import trace as _trace
from ..resilience.budget import Budget
from ..resilience.degrade import DegradationDecision, DegradationPolicy
from .engine import AggregationEngine, engine_for

__all__ = ["DeltaConfig", "DeltaStats", "DeltaTick", "DeltaSession"]


@dataclass
class DeltaConfig:
    """Knobs steering a :class:`DeltaSession`.

    Parameters
    ----------
    crossover:
        Changed-leaf fraction above which a tick falls back to cold
        aggregation.  A float in ``(0, 1]`` pins the threshold; the
        default ``"auto"`` measures it: the session keeps exponential
        moving averages of cold-tick latency and patched per-changed-row
        latency (fed by :meth:`DeltaSession.record_tick_seconds`) and
        solves for the break-even fraction, clamped to *auto_bounds*.
    auto_initial:
        Threshold used by ``"auto"`` until both sides of the break-even
        have been measured at least once.
    auto_bounds:
        ``(lo, hi)`` clamp on the measured auto threshold, so one noisy
        observation can never pin the session to all-cold or all-patched.
    rebase_every:
        Scheduled float-lane re-base period, in patched ticks.  Integer
        lanes are exact and never need it; this bounds how far the
        ``v``/``f`` sums can wander from cold bitwise equality.
    drift_rtol:
        Relative tolerance on the per-cuboid lane totals (each cuboid
        partitions the leaves, so its lane must sum to the table total).
        Exceeding it forces an immediate re-base.
    """

    crossover: Union[float, str] = "auto"
    auto_initial: float = 0.25
    auto_bounds: Tuple[float, float] = (0.02, 0.75)
    rebase_every: int = 64
    drift_rtol: float = 1e-7

    def __post_init__(self) -> None:
        if self.crossover != "auto":
            fraction = float(self.crossover)
            if not 0.0 < fraction <= 1.0:
                raise ValueError('crossover must be in (0, 1] or "auto"')
            self.crossover = fraction
        lo, hi = self.auto_bounds
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("auto_bounds must satisfy 0 < lo <= hi <= 1")
        if not lo <= self.auto_initial <= hi:
            raise ValueError("auto_initial must lie within auto_bounds")
        if self.rebase_every < 1:
            raise ValueError("rebase_every must be at least 1")
        if self.drift_rtol <= 0.0:
            raise ValueError("drift_rtol must be positive")


@dataclass
class DeltaStats:
    """Running tallies of one session's tick mix."""

    ticks: int = 0
    patched_ticks: int = 0
    cold_ticks: int = 0
    rebases: int = 0
    drift_rebases: int = 0
    changed_rows: int = 0
    patched_cuboids: int = 0
    patch_seconds: float = 0.0
    last_path: Optional[str] = None
    last_reason: Optional[str] = None
    last_changed_fraction: Optional[float] = None


@dataclass
class DeltaTick:
    """What :meth:`DeltaSession.begin_tick` resolved for one interval.

    ``path`` is ``"patched"`` or ``"cold"``; ``reason`` says why a cold
    tick went cold (``"first_tick"``, ``"layout_change"``,
    ``"fraction"``, ``"budget"`` or ``"leaf_count"``) and is ``None`` on
    the patched path.  ``changed_fraction`` is 1.0 when the tick went
    cold before the diff was computed.  ``decision`` carries the
    degradation rung to forward to the miner (``None`` without a
    policy).
    """

    engine: AggregationEngine
    path: str
    reason: Optional[str]
    changed_rows: int
    changed_fraction: float
    patched_cuboids: int
    patch_seconds: float
    rebased: bool
    decision: Optional[DegradationDecision]


class DeltaSession:
    """Cross-tick engine state for one monitored leaf population.

    Hold one session per stream; feed every tick's labelled dataset to
    :meth:`begin_tick` and run the search against the returned engine.
    Candidates are bit-identical to a stateless run on every tick —
    only the cost changes (see the module docstring for why).
    """

    #: EWMA weight of the newest latency observation in ``"auto"`` mode.
    _EWMA_ALPHA = 0.3

    def __init__(self, config: Optional[DeltaConfig] = None):
        self.config = config if config is not None else DeltaConfig()
        self.stats = DeltaStats()
        self._previous: Optional[FineGrainedDataset] = None
        self._engine: Optional[AggregationEngine] = None
        #: (cached-cuboid keys, stride matrix, offsets, metas, total
        #: capacity) — rebuilt only when the cached-cuboid set changes.
        self._plan: Optional[tuple] = None
        self._since_rebase = 0
        self._cold_seconds: Optional[float] = None
        self._patched_per_row: Optional[float] = None

    def reset(self) -> None:
        """Forget the previous tick (the next one aggregates cold)."""
        self._previous = None
        self._engine = None
        self._plan = None
        self._since_rebase = 0

    # -- crossover ---------------------------------------------------------

    @property
    def crossover(self) -> float:
        """The effective changed-fraction threshold for this tick."""
        cfg = self.config
        if cfg.crossover != "auto":
            return float(cfg.crossover)
        lo, hi = cfg.auto_bounds
        if (
            self._cold_seconds is None
            or self._patched_per_row is None
            or self._previous is None
            or self._previous.n_rows == 0
        ):
            return cfg.auto_initial
        # Patched cost is ~linear in changed rows; break even where a
        # fully-changed patch would cost as much as one cold tick.
        full_patch = self._patched_per_row * self._previous.n_rows
        if full_patch <= 0.0:
            return hi
        return min(hi, max(lo, self._cold_seconds / full_patch))

    def record_tick_seconds(self, tick: DeltaTick, seconds: float) -> None:
        """Feed one tick's end-to-end latency to the auto-crossover model.

        Callers that time the whole localization (diff + patch + search)
        should report it here; the session cannot observe the search cost
        itself.  Harmless no-op data-wise when ``crossover`` is pinned.
        """
        if seconds <= 0.0:
            return
        alpha = self._EWMA_ALPHA
        if tick.path == "cold":
            if self._cold_seconds is None:
                self._cold_seconds = seconds
            else:
                self._cold_seconds += alpha * (seconds - self._cold_seconds)
        elif tick.changed_rows > 0:
            per_row = seconds / tick.changed_rows
            if self._patched_per_row is None:
                self._patched_per_row = per_row
            else:
                self._patched_per_row += alpha * (per_row - self._patched_per_row)

    # -- tick resolution ---------------------------------------------------

    def begin_tick(
        self,
        dataset: FineGrainedDataset,
        budget: Optional[Budget] = None,
        policy: Optional[DegradationPolicy] = None,
    ) -> DeltaTick:
        """Resolve the engine for one interval's labelled leaf table.

        Returns a :class:`DeltaTick` whose engine is installed as the
        dataset's shared engine (so impact roll-ups and baselines reuse
        it) and whose ``decision`` should be forwarded to the miner when
        a degradation *policy* is active.
        """
        start = time.perf_counter()
        engine = self._engine
        if engine is None:
            return self._cold_tick(dataset, "first_tick", None, start)
        if not engine.compatible_with(dataset):
            self._plan = None
            return self._cold_tick(dataset, "layout_change", None, start)
        decision = None
        if policy is not None:
            decision = policy.decide_delta(dataset.n_rows, budget)
            if decision.tier != "delta":
                return self._cold_tick(
                    dataset, decision.reason or "budget", decision, start
                )
        previous = self._previous
        changed = np.flatnonzero(
            (previous.v != dataset.v)
            | (previous.f != dataset.f)
            | (previous.labels != dataset.labels)
        )
        n_rows = dataset.n_rows
        fraction = changed.size / n_rows if n_rows else 0.0
        if fraction > self.crossover:
            # Cold for cost reasons, not policy ones: let the miner make
            # its own serial-ladder decision instead of inheriting "delta".
            return self._cold_tick(
                dataset, "fraction", None, start, changed.size, fraction
            )
        clone, patched = self._patch(engine, previous, dataset, changed)
        self._previous = dataset
        self._engine = clone
        rebased = False
        if patched:
            self._since_rebase += 1
            scheduled = self._since_rebase >= self.config.rebase_every
            if scheduled or self._drifted(clone):
                self._refresh_float_lanes(clone)
                self._since_rebase = 0
                rebased = True
                self.stats.rebases += 1
                if not scheduled:
                    self.stats.drift_rebases += 1
                if _trace.ACTIVE:
                    obs.inc(
                        "delta_rebase_total",
                        reason="scheduled" if scheduled else "drift",
                    )
        tick = DeltaTick(
            engine=clone,
            path="patched",
            reason=None,
            changed_rows=int(changed.size),
            changed_fraction=fraction,
            patched_cuboids=patched,
            patch_seconds=time.perf_counter() - start,
            rebased=rebased,
            decision=decision,
        )
        self._note(tick)
        return tick

    def _cold_tick(
        self,
        dataset: FineGrainedDataset,
        reason: str,
        decision: Optional[DegradationDecision],
        start: float,
        changed_rows: int = 0,
        fraction: float = 1.0,
    ) -> DeltaTick:
        previous = self._engine
        if previous is not None and previous.compatible_with(dataset):
            # Same leaf population: code-derived caches survive, only the
            # label/value lanes re-aggregate (bitwise equal to fully cold).
            engine = previous.warm_clone(dataset)
        else:
            engine = engine_for(dataset)
        self._previous = dataset
        self._engine = engine
        self._since_rebase = 0
        tick = DeltaTick(
            engine=engine,
            path="cold",
            reason=reason,
            changed_rows=changed_rows,
            changed_fraction=fraction,
            patched_cuboids=0,
            patch_seconds=time.perf_counter() - start,
            rebased=False,
            decision=decision,
        )
        self._note(tick)
        return tick

    # -- the patch kernel --------------------------------------------------

    def _build_plan(self, engine: AggregationEngine, keys: List[tuple]) -> tuple:
        """Stride matrix + disjoint offsets over every cached cuboid.

        Mirrors the batched-aggregation layout: column ``j`` of the
        stride matrix maps a leaf's codes to cuboid ``j``'s linear key,
        and the offsets shift each cuboid's key space into a disjoint
        range so one bincount patches every cuboid at once.  Stable
        across ticks (the cached-cuboid set rarely changes), so it is
        memoized on the session.
        """
        stride_matrix = np.zeros((len(engine._sizes), len(keys)), dtype=np.int64)
        offsets = np.empty(len(keys), dtype=np.int64)
        metas: List[Tuple[tuple, int, int]] = []
        total = 0
        for j, indices in enumerate(keys):
            __, strides, capacity = engine._geometry(indices)
            for position, attr in enumerate(indices):
                stride_matrix[attr, j] = strides[position]
            offsets[j] = total
            metas.append((indices, total, capacity))
            total += capacity
        return (tuple(keys), stride_matrix, offsets, metas, total)

    def _patch(
        self,
        engine: AggregationEngine,
        old: FineGrainedDataset,
        new: FineGrainedDataset,
        changed: np.ndarray,
    ) -> Tuple[AggregationEngine, int]:
        """Warm clone of *engine* with every cached aggregate patched.

        Integer lanes (support, anomalous support) are patched exactly;
        ``v``/``f`` get subtract-old/add-new float deltas.  Aggregates
        are immutable by convention, so patched lanes land on *new*
        :class:`CuboidAggregate` objects — per-aggregate caches (the
        confidence vector) can never leak stale values across ticks.
        """
        clone = engine.warm_clone(new)
        keys = sorted(engine._aggregates)
        if not keys:
            return clone, 0
        if changed.size == 0:
            # Identical tick: every cached aggregate is still exact.
            clone._aggregates.update(engine._aggregates)
            return clone, len(keys)
        plan = self._plan
        if plan is None or plan[0] != tuple(keys):
            plan = self._build_plan(engine, keys)
            self._plan = plan
        __, stride_matrix, offsets, metas, total = plan
        n_blocks = len(metas)

        old_labels = old.labels[changed]
        new_labels = new.labels[changed]
        gained = new_labels & ~old_labels
        lost = old_labels & ~new_labels
        v_delta = new.v[changed] - old.v[changed]
        f_delta = new.f[changed] - old.f[changed]
        anomalous_delta, v_dense, f_dense = engine.backend.delta_patch(
            new.codes[changed], stride_matrix, offsets, total,
            gained, lost, v_delta, f_delta,
        )
        if _trace.ACTIVE:
            obs.inc(
                "engine_bincount_passes_total",
                2 + (2 if anomalous_delta is not None else 0),
                kind="delta_patch",
            )

        shapes = engine._shapes
        for indices, offset, capacity in metas:
            aggregate = engine._aggregates[indices]
            occupied = shapes[indices].occupied
            end = offset + capacity
            if anomalous_delta is None:
                anomalous = aggregate.anomalous_support
            else:
                anomalous = (
                    aggregate.anomalous_support + anomalous_delta[offset:end][occupied]
                )
            clone._aggregates[indices] = CuboidAggregate(
                cuboid=aggregate.cuboid,
                schema=new.schema,
                codes=aggregate.codes,
                support=aggregate.support,
                anomalous_support=anomalous,
                v_sum=aggregate.v_sum + v_dense[offset:end][occupied],
                f_sum=aggregate.f_sum + f_dense[offset:end][occupied],
            )
        return clone, n_blocks

    # -- float-lane hygiene ------------------------------------------------

    def _drifted(self, engine: AggregationEngine) -> bool:
        """True when any patched lane total left the drift tolerance.

        Every cuboid partitions the leaves, so each patched ``v``/``f``
        lane must sum to the leaf table's total up to summation-order
        rounding; incremental float adds slowly widen that gap.
        """
        rtol = self.config.drift_rtol
        dataset = engine.dataset
        total_v = float(dataset.v.sum())
        total_f = float(dataset.f.sum())
        bound_v = rtol * max(1.0, abs(total_v))
        bound_f = rtol * max(1.0, abs(total_f))
        for aggregate in engine._aggregates.values():
            if abs(float(aggregate.v_sum.sum()) - total_v) > bound_v:
                return True
            if abs(float(aggregate.f_sum.sum()) - total_f) > bound_f:
                return True
        return False

    def _refresh_float_lanes(self, engine: AggregationEngine) -> None:
        """Recompute every cached ``v``/``f`` lane from the leaves.

        One weighted bincount per lane over the engine's cached linear
        keys — the warm-refresh summation order, which is bitwise equal
        to a cold batched pass — so after a re-base the session's floats
        match a stateless engine exactly.
        """
        dataset = engine.dataset
        if _trace.ACTIVE:
            obs.inc(
                "engine_bincount_passes_total",
                2 * len(engine._aggregates),
                kind="delta_rebase",
            )
        backend = engine.backend
        for indices, aggregate in list(engine._aggregates.items()):
            keys = engine._keys_for(indices)
            capacity = engine._geometry(indices)[2]
            occupied = engine._shapes[indices].occupied
            engine._aggregates[indices] = CuboidAggregate(
                cuboid=aggregate.cuboid,
                schema=aggregate.schema,
                codes=aggregate.codes,
                support=aggregate.support,
                anomalous_support=aggregate.anomalous_support,
                v_sum=backend.weighted_bincount(keys, dataset.v, capacity)[
                    occupied
                ],
                f_sum=backend.weighted_bincount(keys, dataset.f, capacity)[
                    occupied
                ],
            )

    # -- bookkeeping -------------------------------------------------------

    def _note(self, tick: DeltaTick) -> None:
        stats = self.stats
        stats.ticks += 1
        stats.last_path = tick.path
        stats.last_reason = tick.reason
        stats.last_changed_fraction = tick.changed_fraction
        if tick.path == "patched":
            stats.patched_ticks += 1
            stats.changed_rows += tick.changed_rows
            stats.patched_cuboids += tick.patched_cuboids
            stats.patch_seconds += tick.patch_seconds
        else:
            stats.cold_ticks += 1
        if _trace.ACTIVE:
            obs.inc("delta_ticks_total", path=tick.path, reason=tick.reason or "none")
            obs.set_gauge("delta_changed_fraction", tick.changed_fraction)
            obs.set_gauge("delta_crossover_threshold", self.crossover)
            if tick.path == "patched":
                obs.inc("delta_changed_rows_total", tick.changed_rows)
                obs.inc("delta_patched_cuboids_total", tick.patched_cuboids)
                obs.inc("delta_patch_seconds_total", tick.patch_seconds)
