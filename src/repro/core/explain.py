"""Post-localization diagnostics: explain what a result does (not) cover.

A ranked RAP list answers "where is the problem"; an operator triaging an
incident also needs to know *how well* that answer accounts for the
observed anomalies before acting on it (the paper's Fig. 1 flow hands the
result to a human).  :func:`explain` audits a localization result against
the labelled leaf table:

* per-pattern evidence (confidence, impacted KPI volume, covered
  anomalies, overlap with higher-ranked patterns);
* the **residual**: anomalous leaves no returned pattern covers — large
  residuals mean the search stopped early, ``t_conf`` was too strict, or
  the ground truth is finer than any mined pattern;
* the **excess**: normal leaves swept in by the patterns — a proxy for
  how much healthy traffic an operator would needlessly switch to backup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..data.dataset import FineGrainedDataset
from .attribute import AttributeCombination

__all__ = ["PatternEvidence", "Explanation", "explain"]


@dataclass(frozen=True)
class PatternEvidence:
    """Audit record of one returned pattern."""

    pattern: AttributeCombination
    rank: int
    support: int
    anomalous_support: int
    confidence: float
    #: Aggregated actual / forecast KPI of the covered leaves.
    actual: float
    forecast: float
    #: Anomalous leaves this pattern covers that no higher-ranked one does.
    new_anomalies_covered: int
    #: Covered leaves that are not anomalous (healthy traffic swept in).
    normal_leaves_covered: int

    @property
    def is_redundant(self) -> bool:
        """True when every anomaly it covers was already covered above it."""
        return self.new_anomalies_covered == 0 and self.anomalous_support > 0


@dataclass
class Explanation:
    """Complete audit of one localization result."""

    evidence: List[PatternEvidence] = field(default_factory=list)
    total_anomalous_leaves: int = 0
    covered_anomalous_leaves: int = 0
    #: Anomalous leaves outside every returned pattern.
    residual_leaves: List[AttributeCombination] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of anomalous leaves the returned patterns explain."""
        if self.total_anomalous_leaves == 0:
            return 1.0
        return self.covered_anomalous_leaves / self.total_anomalous_leaves

    @property
    def excess_normal_leaves(self) -> int:
        """Healthy leaves swept in across all patterns (with multiplicity removed)."""
        return sum(e.normal_leaves_covered for e in self.evidence)

    def render(self) -> str:
        lines = [
            f"coverage: {self.covered_anomalous_leaves}/{self.total_anomalous_leaves} "
            f"anomalous leaves ({self.coverage * 100:.0f}%)"
        ]
        for e in self.evidence:
            flags = []
            if e.is_redundant:
                flags.append("redundant")
            if e.normal_leaves_covered:
                flags.append(f"sweeps {e.normal_leaves_covered} healthy leaves")
            suffix = f"  [{'; '.join(flags)}]" if flags else ""
            lines.append(
                f"  #{e.rank} {e.pattern}  conf={e.confidence:.2f} "
                f"covers {e.anomalous_support} anomalies "
                f"({e.new_anomalies_covered} new){suffix}"
            )
        if self.residual_leaves:
            shown = ", ".join(str(p) for p in self.residual_leaves[:5])
            more = (
                f" (+{len(self.residual_leaves) - 5} more)"
                if len(self.residual_leaves) > 5
                else ""
            )
            lines.append(f"  unexplained anomalous leaves: {shown}{more}")
        return "\n".join(lines)


def explain(
    dataset: FineGrainedDataset,
    patterns: Sequence[AttributeCombination],
    max_residual_listed: int = 50,
) -> Explanation:
    """Audit *patterns* (rank order) against the labelled leaf table."""
    explanation = Explanation(total_anomalous_leaves=dataset.n_anomalous)
    covered = np.zeros(dataset.n_rows, dtype=bool)
    for rank, pattern in enumerate(patterns, start=1):
        mask = dataset.mask_of(pattern)
        anomalous_mask = mask & dataset.labels
        newly = anomalous_mask & ~covered
        support = int(mask.sum())
        anomalous_support = int(anomalous_mask.sum())
        explanation.evidence.append(
            PatternEvidence(
                pattern=pattern,
                rank=rank,
                support=support,
                anomalous_support=anomalous_support,
                confidence=anomalous_support / support if support else 0.0,
                actual=float(dataset.v[mask].sum()),
                forecast=float(dataset.f[mask].sum()),
                new_anomalies_covered=int(newly.sum()),
                normal_leaves_covered=int((mask & ~dataset.labels).sum()),
            )
        )
        covered |= mask

    residual = dataset.labels & ~covered
    explanation.covered_anomalous_leaves = dataset.n_anomalous - int(residual.sum())
    schema = dataset.schema
    for row in np.flatnonzero(residual)[:max_residual_listed]:
        values = [
            schema.decode(i, int(dataset.codes[row, i]))
            for i in range(schema.n_attributes)
        ]
        explanation.residual_leaves.append(AttributeCombination(values))
    return explanation
