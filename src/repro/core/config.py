"""Configuration of the RAPMiner pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..resilience.degrade import DegradationPolicy

__all__ = ["RAPMinerConfig"]


@dataclass
class RAPMinerConfig:
    """Thresholds and switches of the two-stage pipeline.

    Defaults follow the paper's guidance: ``t_CP`` should be small
    (< 0.1 — Fig. 10(a) shows mild degradation as it grows) and ``t_conf``
    relatively large (> 0.5 — Fig. 10(b) shows mild improvement as it
    grows).
    """

    #: Criteria 1 threshold: attributes with ``CP <= t_cp`` are deleted.
    #: Kept deliberately small: when one large RAP co-occurs with a small
    #: one, the small RAP's attributes retain only a sliver of relative
    #: information gain, so aggressive thresholds delete them (the Table VI
    #: trade-off).  0.005 lands RC@3 on RAPMD at the paper's reported level.
    t_cp: float = 0.005
    #: Criteria 2 threshold: combinations with confidence > ``t_conf`` are anomalous.
    t_conf: float = 0.8
    #: Stage 1 on/off — the Table VI ablation switch.
    enable_attribute_deletion: bool = True
    #: Early stop once candidates cover every anomalous leaf.
    early_stop: bool = True
    #: Optional BFS depth cap (all layers when ``None``).
    max_layer: Optional[int] = None
    #: Divide confidence by ``sqrt(layer)`` when ranking (Eq. 3); the
    #: ablation benches compare against raw-confidence ranking.
    layer_normalized_ranking: bool = True
    #: Worker threads for per-layer cuboid aggregation.  ``1`` (default)
    #: keeps the layer scan lazy — with early stop that skips cuboids the
    #: search never reaches.  ``> 1`` aggregates each layer speculatively
    #: across a thread pool; the candidate set is identical either way.
    n_jobs: int = 1
    #: Wall-clock allowance per run in milliseconds (``None`` = unlimited).
    #: Checked cooperatively at BFS layer boundaries: an over-budget run
    #: returns the candidates found so far with
    #: ``SearchStats.stop_reason == "deadline"`` — identical to an
    #: explicit ``max_layer`` cap at the layer the budget reached.
    deadline_ms: Optional[float] = None
    #: Graceful-degradation ladder (``None`` = never degrade).  See
    #: :class:`repro.resilience.DegradationPolicy` and
    #: ``docs/resilience.md``.
    degradation: Optional[DegradationPolicy] = None
    #: Time source for the deadline budget (``None`` = ``time.monotonic``).
    #: Must be picklable to survive process-pool transport — e.g.
    #: :class:`repro.resilience.StepClock`, which makes budget expiry
    #: reproducible check-for-check in tests and pool workers alike.
    deadline_clock: Optional[Callable[[], float]] = None
    #: Kernel backend for the aggregation hot paths: ``"auto"`` (native
    #: when a C compiler or cached library is available, else numpy),
    #: ``"numpy"``, ``"native"``, or ``None`` to defer to the
    #: ``RAPMINER_BACKEND`` environment variable (then ``auto``).  Both
    #: backends return bitwise-identical results; see
    #: ``docs/operational.md``.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.t_cp < 0.0:
            raise ValueError("t_cp must be non-negative")
        if not 0.0 < self.t_conf < 1.0:
            raise ValueError("t_conf must lie in (0, 1)")
        if self.max_layer is not None and self.max_layer < 1:
            raise ValueError("max_layer must be at least 1")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0.0:
            raise ValueError("deadline_ms must be positive (or None for unlimited)")
        if self.backend is not None and self.backend not in (
            "auto",
            "numpy",
            "native",
        ):
            raise ValueError(
                "backend must be one of 'auto', 'numpy', 'native' or None"
            )
