"""Shared-aggregation engine for the cuboid lattice hot path.

Algorithm 2 — and every aggregate-hungry baseline — repeatedly asks the
same two questions of one labelled leaf table: *"group the leaves by this
cuboid"* and *"which leaf rows does this combination cover?"*.  The naive
answers (:meth:`~repro.data.dataset.FineGrainedDataset.aggregate` and
:meth:`~repro.data.dataset.FineGrainedDataset.mask_of`) re-derive
everything from the full leaf table on every call: a per-cuboid linear-key
pass plus four separate ``bincount`` passes, and a full-column boolean
scan per combination.  :class:`AggregationEngine` shares that work:

* **Cached linear keys and aggregates** — per-cuboid key vectors, cuboid
  geometry (sizes/strides/capacity) and :class:`CuboidAggregate` results
  are computed once per dataset and reused by every consumer (search,
  ranking, explanation, the service pipeline, the baselines, and —
  crucially — threshold-sensitivity sweeps that re-run the search many
  times over one interval).
* **Fused, batched bincount** — all uncached cuboids of one BFS layer
  are aggregated together: their key spaces are disjoint after
  offsetting, so one ``np.bincount`` per lane over the concatenated keys
  replaces four bincounts per cuboid.  Support and anomalous support use
  the integer fast path (anomalous rows are counted directly instead of
  weighting the whole table); roll-ups and warm label refreshes use a
  stacked-weights bincount that folds their lanes into a single pass.
* **Layer roll-ups** — once a *base* cuboid over a searched attribute set
  is aggregated (``G`` occupied groups), every sub-cuboid is computed by
  grouping those ``G`` rows instead of the ``N`` leaves.  The cuboid
  lattice is a semilattice under attribute-set union, so any cached
  aggregate over a superset of a cuboid's attributes is a valid roll-up
  source; bases are only materialized when their group capacity is
  strictly below the leaf count, i.e. when rolling up is a guaranteed win
  (typical after Algorithm 1 deletes attributes).  Counts are
  integer-exact either way; ``v``/``f`` sums may differ from the naive
  path by float summation order only.
* **Inverted index** — lazily built per ``(attribute, element-code)``
  posting lists of leaf rows, so a combination's covered rows come from
  sorted-array intersections instead of repeated full-table masks.
* **Parallel layer fan-out** — the batched passes of one BFS layer can be
  chunked across a ``concurrent.futures`` thread pool
  (:attr:`~repro.core.config.RAPMinerConfig.n_jobs`); every cuboid's
  aggregate is independent, so results are identical for any worker
  count.
* **Warm cloning** — everything that depends only on the leaf *codes*
  (keys, postings, per-cuboid support/occupancy) survives a label/value
  refresh, which is what makes the incremental miner's exact re-search
  cheap across the intervals of one incident.

Engines are bound to one :class:`FineGrainedDataset` and shared through
:func:`engine_for`, a per-dataset cache stored on the dataset itself:
within one collection interval the search, the ranking, the service
pipeline and any baseline all hit the same cache, and the cache dies
exactly when its dataset does.

When a :mod:`repro.obs` collector is installed the engine reports its
hot-path behaviour — aggregate resolution paths, bincount passes, prefetch
decisions, thread-pool fan-out, row-cache hits — as counters; every bump
sits behind the single ``obs.trace.ACTIVE`` flag, so uninstrumented runs
pay one boolean read per site (see ``docs/observability.md``).
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..data.dataset import CuboidAggregate, FineGrainedDataset
from ..native import coerce_backend
from ..obs import trace as _trace
from .attribute import AttributeCombination
from .cuboid import Cuboid

__all__ = [
    "AggregationEngine",
    "NaiveAggregationEngine",
    "CandidateIndex",
    "engine_for",
    "install_engine",
]


#: Attribute under which :func:`engine_for` caches the engine on its
#: dataset.  Storing the cache on the dataset (rather than in a global
#: ``WeakKeyDictionary`` whose values reference their keys, which makes
#: every entry immortal) means the engine dies exactly when the dataset
#: does — the dataset <-> engine cycle is an ordinary gc-collectable
#: cycle, and per-interval tables do not accumulate engine state.
#: ``FineGrainedDataset.__getstate__`` drops the attribute, so pickled
#: datasets (e.g. process-pool case transport) never carry a cache.
_ENGINE_ATTR = "_repro_engine"

#: Upper bound on the element count of one batched pass; layers whose
#: combined (rows x cuboids) size exceeds this are chunked.
_MAX_BATCH_ELEMENTS = 1 << 21


def engine_for(dataset: FineGrainedDataset, backend=None) -> "AggregationEngine":
    """The shared engine of *dataset*, created on first use.

    ``backend`` (a name or :class:`~repro.native.KernelBackend`) only
    matters when it disagrees with the cached engine's backend: the
    engine is then rebuilt on the requested one (aggregates are bitwise
    identical across backends, so swapping never changes results).
    """
    engine = getattr(dataset, _ENGINE_ATTR, None)
    if engine is None:
        engine = AggregationEngine(dataset, backend=backend)
        setattr(dataset, _ENGINE_ATTR, engine)
    elif backend is not None:
        resolved = coerce_backend(backend)
        if engine.backend.name != resolved.name:
            engine = AggregationEngine(
                dataset, n_jobs=engine.n_jobs, backend=resolved
            )
            setattr(dataset, _ENGINE_ATTR, engine)
    return engine


def install_engine(engine: "AggregationEngine") -> "AggregationEngine":
    """Register *engine* as the shared engine of its dataset and return it."""
    setattr(engine.dataset, _ENGINE_ATTR, engine)
    return engine


@dataclass
class _CuboidShape:
    """Label-independent part of a cuboid aggregate (reused by warm clones)."""

    #: Flat linear keys of the occupied groups, ascending.
    occupied: np.ndarray
    #: Leaf count per occupied group.
    support: np.ndarray
    #: Element codes per occupied group, shape (G, d).
    codes: np.ndarray


class AggregationEngine:
    """Per-dataset cache of cuboid aggregates, linear keys and posting lists.

    Parameters
    ----------
    dataset:
        The leaf table this engine serves.  One engine never outlives its
        dataset (see :func:`engine_for`).
    n_jobs:
        Default worker count for :meth:`layer_aggregates`; ``1`` keeps
        everything on the calling thread.
    backend:
        Kernel backend for the fused aggregation passes — a
        :class:`~repro.native.KernelBackend` instance, a name
        (``auto``/``numpy``/``native``), or ``None`` for the process
        default (``RAPMINER_BACKEND`` env var, else ``auto``).  Both
        backends return bitwise-identical aggregates.
    """

    #: Largest cuboid lattice :meth:`prepare` aggregates in one batched
    #: pass; wider attribute sets fall back to seeding a roll-up base.
    _MAX_PREFETCH_CUBOIDS = 64

    def __init__(
        self, dataset: FineGrainedDataset, n_jobs: int = 1, backend=None
    ):
        if n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        self.dataset = dataset
        self.n_jobs = n_jobs
        self.backend = coerce_backend(backend)
        if _trace.ACTIVE:
            obs.set_gauge(
                "engine_backend_info", 1.0, backend=self.backend.name
            )
        self._sizes = list(dataset.schema.sizes)
        #: indices tuple -> (sizes, strides, capacity); tiny, but recomputed
        #: on every call of the hot path without the cache.
        self._geometries: Dict[Tuple[int, ...], Tuple[List[int], List[int], int]] = {}
        self._keys: Dict[Tuple[int, ...], np.ndarray] = {}
        self._shapes: Dict[Tuple[int, ...], _CuboidShape] = {}
        self._aggregates: Dict[Tuple[int, ...], CuboidAggregate] = {}
        #: Roll-up sources seeded by :meth:`prepare` (attribute set -> aggregate).
        self._bases: Dict[Tuple[int, ...], CuboidAggregate] = {}
        #: prepare() decisions, memoized so repeated searches skip the check.
        self._prepared: Dict[Tuple[int, ...], Optional[CuboidAggregate]] = {}
        #: attribute column -> posting list per element code (built lazily,
        #: only for attributes that are actually queried).
        self._postings: Dict[int, List[np.ndarray]] = {}
        self._rows: Dict[Tuple[int, ...], np.ndarray] = {}
        #: Indices of the anomalous leaf rows (anomalous supports are
        #: counted over these instead of weighting the whole table).
        self._label_rows: Optional[np.ndarray] = None
        #: Per-layer (aggregates, concatenated confidences, boundaries) for
        #: :meth:`layer_scan`, keyed by the layer's cuboid tuple
        #: (label-dependent: never shared with warm clones).
        self._layer_confidences: Dict[tuple, tuple] = {}
        #: Resolved layer scans keyed by (cuboid tuple, t_conf): a grid
        #: sweep revisits the same thresholds, so the threshold probe and
        #: per-cuboid hit split are themselves memoizable.
        self._layer_scans: Dict[tuple, list] = {}

    # -- geometry and keys -----------------------------------------------------

    def _geometry(
        self, indices: Tuple[int, ...]
    ) -> Tuple[List[int], List[int], int]:
        geometry = self._geometries.get(indices)
        if geometry is None:
            sizes = [self._sizes[i] for i in indices]
            strides = [1] * len(sizes)
            for i in range(len(sizes) - 2, -1, -1):
                strides[i] = strides[i + 1] * sizes[i + 1]
            capacity = 1
            for size in sizes:
                capacity *= size
            geometry = (sizes, strides, capacity)
            self._geometries[indices] = geometry
        return geometry

    def _keys_for(self, indices: Tuple[int, ...]) -> np.ndarray:
        keys = self._keys.get(indices)
        if keys is None:
            codes = self.dataset.codes
            if len(indices) == 1:
                # Contiguous copy: a strided column view would force the
                # native backend to re-copy on every kernel call.
                keys = np.ascontiguousarray(codes[:, indices[0]])
            else:
                __, strides, __ = self._geometry(indices)
                keys = codes[:, indices[0]] * int(strides[0])
                for position in range(1, len(indices)):
                    keys += codes[:, indices[position]] * int(strides[position])
            self._keys[indices] = keys
        return keys

    def linear_keys(self, cuboid: Cuboid) -> Tuple[np.ndarray, int]:
        """Cached ``(keys, capacity)`` of *cuboid* over the leaf rows."""
        indices = cuboid.attribute_indices
        if any(i < 0 or i >= len(self._sizes) for i in indices):
            raise IndexError("cuboid attribute index out of range for schema")
        if any(a >= b for a, b in zip(indices, indices[1:])):
            raise ValueError("cuboid attribute indices must be sorted and unique")
        return self._keys_for(indices), self._geometry(indices)[2]

    def _anomalous_rows(self) -> np.ndarray:
        if self._label_rows is None:
            self._label_rows = np.flatnonzero(self.dataset.labels)
        return self._label_rows

    # -- fused aggregation -----------------------------------------------------

    def _fused_bincount(
        self, keys: np.ndarray, weight_columns: Sequence[np.ndarray], capacity: int
    ) -> np.ndarray:
        """Stacked-weights bincount: one pass for all lanes.

        Returns shape ``(capacity, len(weight_columns))``.  Lane ``i`` of
        row ``k`` is ``sum(weight_columns[i][keys == k])``; per-bucket
        additions happen in row order, exactly as in separate bincounts,
        on either backend.
        """
        if _trace.ACTIVE:
            obs.inc("engine_bincount_passes_total", kind="fused")
        return self.backend.fused_bincount(keys, weight_columns, capacity)

    def _aggregate_batch(self, cuboids: Sequence[Cuboid]) -> None:
        """Aggregate several uncached cuboids in one set of batched passes.

        Each cuboid's linear keys are shifted into a disjoint range, so
        bincounts over the concatenated keys yield every cuboid's lanes at
        once: support via the integer fast path, anomalous support by
        counting only the anomalous rows' keys, and ``v``/``f`` via two
        weighted passes.  Per-bucket additions still happen in leaf-row
        order, so the results are bitwise identical to aggregating each
        cuboid alone.
        """
        dataset = self.dataset
        n_blocks = len(cuboids)
        # Column j of the stride matrix holds cuboid j's strides; the
        # backend turns it into every cuboid's linear keys at once (one
        # integer matmul on numpy, one fused row walk natively).
        stride_matrix = np.zeros((len(self._sizes), n_blocks), dtype=np.int64)
        offsets = np.empty(n_blocks, dtype=np.int64)
        metas: List[Tuple[Cuboid, int, int, List[int]]] = []
        offset = 0
        for j, cuboid in enumerate(cuboids):
            indices = cuboid.attribute_indices
            sizes, strides, capacity = self._geometry(indices)
            for position, attr in enumerate(indices):
                stride_matrix[attr, j] = strides[position]
            offsets[j] = offset
            metas.append((cuboid, offset, capacity, sizes))
            offset += capacity
        label_rows = self._anomalous_rows()
        support_all, anomalous_all, v_all, f_all = self.backend.fused_batch(
            dataset.codes, stride_matrix, offsets, offset, label_rows,
            dataset.v, dataset.f,
        )
        if _trace.ACTIVE:
            obs.inc("engine_batch_cuboids_total", n_blocks)
            obs.inc(
                "engine_bincount_passes_total",
                4 if label_rows.size else 3,
                kind="batched",
            )
        for cuboid, start, capacity, sizes in metas:
            end = start + capacity
            support = support_all[start:end]
            occupied = np.flatnonzero(support)
            if len(sizes) == 1:
                codes = occupied.reshape(-1, 1)
            else:
                codes = np.stack(np.unravel_index(occupied, sizes), axis=1).astype(
                    np.int64
                )
            aggregate = CuboidAggregate(
                cuboid=cuboid,
                schema=dataset.schema,
                codes=codes,
                support=support[occupied].astype(np.int64, copy=False),
                anomalous_support=anomalous_all[start:end][occupied].astype(
                    np.int64, copy=False
                ),
                v_sum=v_all[start:end][occupied],
                f_sum=f_all[start:end][occupied],
            )
            key = cuboid.attribute_indices
            if key not in self._shapes:
                self._shapes[key] = _CuboidShape(
                    occupied=occupied, support=aggregate.support, codes=aggregate.codes
                )
            self._aggregates[key] = aggregate

    def prepare(self, attribute_indices: Sequence[int]) -> Optional[CuboidAggregate]:
        """Prefetch aggregation state for a search over *attribute_indices*.

        Small lattices (at most :attr:`_MAX_PREFETCH_CUBOIDS` cuboids
        within the batch element budget) are aggregated in one batched
        pass — a single key matmul plus four bincounts covers every
        cuboid the search can visit, which beats per-layer passes when
        the per-call ``numpy`` overhead dominates the per-row work.
        Wider attribute sets instead seed a roll-up base, materialized
        only when its group capacity is strictly below the leaf count —
        the cheap sufficient condition for every roll-up from it to
        group fewer rows than a leaf-level pass would (true whenever
        Algorithm 1 deleted attributes; for a base as wide as the table
        rolling up cannot win).  Returns the base aggregate when its
        capacity beats the leaf count, else ``None``.
        """
        indices = tuple(sorted(set(int(i) for i in attribute_indices)))
        if indices in self._prepared:
            if _trace.ACTIVE:
                obs.inc("engine_prepare_total", outcome="memoized")
            return self._prepared[indices]
        outcome = "no_prefetch"
        base: Optional[CuboidAggregate] = None
        if indices:
            __, __, capacity = self._geometry(indices)
            n_lattice = (1 << len(indices)) - 1
            if (
                n_lattice <= self._MAX_PREFETCH_CUBOIDS
                and n_lattice * self.dataset.n_rows <= _MAX_BATCH_ELEMENTS
            ):
                cold = [
                    Cuboid(subset)
                    for layer in range(1, len(indices) + 1)
                    for subset in itertools.combinations(indices, layer)
                    if subset not in self._aggregates and subset not in self._shapes
                ]
                if cold:
                    self._aggregate_batch(cold)
                outcome = "full_lattice"
            if capacity < self.dataset.n_rows:
                base = self.aggregate(Cuboid(indices))
                self._bases[indices] = base
                if outcome == "no_prefetch":
                    outcome = "base_seeded"
        self._prepared[indices] = base
        if _trace.ACTIVE:
            obs.inc("engine_prepare_total", outcome=outcome)
        return base

    def _rollup_source(self, indices: Tuple[int, ...]) -> Optional[CuboidAggregate]:
        """Smallest prepared base strictly containing *indices* (or None).

        Restricted to :meth:`prepare`-seeded bases — not arbitrary cached
        supersets — so the roll-up source (and thus the float summation
        order of ``v``/``f``) never depends on cache-population timing
        under parallel layer fan-out.
        """
        if not self._bases:
            return None
        target = set(indices)
        best: Optional[CuboidAggregate] = None
        for base_indices, aggregate in self._bases.items():
            if target < set(base_indices):
                if best is None or len(aggregate) < len(best):
                    best = aggregate
        return best

    def _rollup(self, cuboid: Cuboid, source: CuboidAggregate) -> CuboidAggregate:
        """Aggregate *cuboid* by grouping the rows of a superset aggregate."""
        indices = cuboid.attribute_indices
        positions = [source.cuboid.attribute_indices.index(i) for i in indices]
        sizes, strides, capacity = self._geometry(indices)
        keys = source.codes[:, positions[0]] * int(strides[0])
        for stride, position in zip(strides[1:], positions[1:]):
            keys = keys + source.codes[:, position] * int(stride)
        totals = self._fused_bincount(
            keys,
            (
                source.support.astype(float),
                source.anomalous_support.astype(float),
                source.v_sum,
                source.f_sum,
            ),
            capacity,
        )
        occupied = np.flatnonzero(totals[:, 0])
        if len(sizes) == 1:
            codes = occupied.reshape(-1, 1)
        else:
            codes = np.stack(np.unravel_index(occupied, sizes), axis=1).astype(np.int64)
        return CuboidAggregate(
            cuboid=cuboid,
            schema=self.dataset.schema,
            codes=codes,
            support=np.rint(totals[occupied, 0]).astype(np.int64),
            anomalous_support=np.rint(totals[occupied, 1]).astype(np.int64),
            v_sum=totals[occupied, 2],
            f_sum=totals[occupied, 3],
        )

    def aggregate(self, cuboid: Cuboid) -> CuboidAggregate:
        """Cached per-cuboid aggregate (drop-in for ``dataset.aggregate``).

        Resolution order: cached aggregate -> label refresh of a warm
        shape -> roll-up from a prepared base -> fused bincount over the
        leaves.  The returned combinations, supports and anomalous
        supports are identical to the naive path; ``v``/``f`` sums are
        equal up to float summation order when a roll-up was used.  The
        warm refresh deliberately outranks the roll-up: it reproduces the
        leaf-level summation order of a cold engine, so a warm-clone
        chain (the batch execution layer's per-worker engines) returns
        bitwise-identical aggregates to a cold run.
        """
        indices = cuboid.attribute_indices
        aggregate = self._aggregates.get(indices)
        if aggregate is not None:
            if _trace.ACTIVE:
                obs.inc("engine_aggregate_total", path="cache_hit")
            return aggregate
        shape = self._shapes.get(indices)
        if shape is not None:
            # Warm path (cloned engine): occupancy and support survive a
            # label/value refresh — they depend only on the codes.  Checked
            # *before* the roll-up so a warm refresh reproduces the same
            # leaf-level summation order a cold engine's batched pass uses:
            # anomalous support is counted over the anomalous rows' keys
            # (integer-exact) and v/f come from one weighted bincount each,
            # making warm-clone aggregates bitwise equal to cold ones.
            if _trace.ACTIVE:
                obs.inc("engine_aggregate_total", path="warm_refresh")
                obs.inc("engine_bincount_passes_total", 3, kind="warm_refresh")
            dataset = self.dataset
            backend = self.backend
            keys, capacity = self.linear_keys(cuboid)
            label_rows = self._anomalous_rows()
            if label_rows.size:
                anomalous = backend.count_bincount(keys[label_rows], capacity)[
                    shape.occupied
                ]
            else:
                anomalous = np.zeros(shape.occupied.size, dtype=np.int64)
            aggregate = CuboidAggregate(
                cuboid=cuboid,
                schema=dataset.schema,
                codes=shape.codes,
                support=shape.support,
                anomalous_support=anomalous.astype(np.int64, copy=False),
                v_sum=backend.weighted_bincount(keys, dataset.v, capacity)[
                    shape.occupied
                ],
                f_sum=backend.weighted_bincount(keys, dataset.f, capacity)[
                    shape.occupied
                ],
            )
            self._aggregates[indices] = aggregate
            return aggregate
        source = self._rollup_source(indices)
        if source is not None:
            if _trace.ACTIVE:
                obs.inc("engine_aggregate_total", path="rollup")
            aggregate = self._rollup(cuboid, source)
            __, strides, __ = self._geometry(indices)
            occupied = (aggregate.codes * strides).sum(axis=1)
            self._shapes[indices] = _CuboidShape(
                occupied=occupied, support=aggregate.support, codes=aggregate.codes
            )
            self._aggregates[indices] = aggregate
            return aggregate
        if _trace.ACTIVE:
            obs.inc("engine_aggregate_total", path="cold")
        self._aggregate_batch([cuboid])
        return self._aggregates[indices]

    def aggregate_with_labels(
        self, cuboid: Cuboid, labels: np.ndarray
    ) -> CuboidAggregate:
        """The cuboid aggregate under an alternative label vector.

        Support, occupancy, codes and the ``v``/``f`` sums are label
        independent and come from the shared cache; only the anomalous
        support is recomputed (one bincount over the cached keys).  This
        is what lets Squeeze score many deviation clusters against one
        set of cached aggregates.
        """
        base = self.aggregate(cuboid)
        keys, capacity = self.linear_keys(cuboid)
        shape = self._shapes[cuboid.attribute_indices]
        if _trace.ACTIVE:
            obs.inc("engine_bincount_passes_total", kind="relabel")
        anomalous = self.backend.weighted_bincount(
            keys, np.asarray(labels, dtype=float), capacity
        )[shape.occupied]
        return CuboidAggregate(
            cuboid=base.cuboid,
            schema=base.schema,
            codes=base.codes,
            support=base.support,
            anomalous_support=np.rint(anomalous).astype(np.int64),
            v_sum=base.v_sum,
            f_sum=base.f_sum,
        )

    def layer_aggregates(
        self, cuboids: Sequence[Cuboid], n_jobs: Optional[int] = None
    ) -> Iterator[CuboidAggregate]:
        """Aggregates of one layer's cuboids, batch-fused and optionally threaded.

        Uncached cuboids with no roll-up source are aggregated together in
        chunked fused-bincount passes (see :meth:`_aggregate_batch`); with
        ``n_jobs > 1`` the chunks run across a thread pool (``bincount``
        releases no GIL but the array setup does, and chunks are
        independent).  Results are yielded in input order and identical
        for any worker count.
        """
        jobs = self.n_jobs if n_jobs is None else n_jobs
        if jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        cold = [
            cuboid
            for cuboid in cuboids
            if cuboid.attribute_indices not in self._aggregates
            and cuboid.attribute_indices not in self._shapes
            and self._rollup_source(cuboid.attribute_indices) is None
        ]
        if cold:
            per_chunk = max(1, _MAX_BATCH_ELEMENTS // max(1, self.dataset.n_rows))
            if jobs > 1:
                per_chunk = max(1, min(per_chunk, -(-len(cold) // jobs)))
            chunks = [cold[i : i + per_chunk] for i in range(0, len(cold), per_chunk)]
            if _trace.ACTIVE:
                obs.inc("engine_layer_chunks_total", len(chunks))
            if jobs == 1 or len(chunks) == 1:
                for chunk in chunks:
                    self._aggregate_batch(chunk)
            else:
                if _trace.ACTIVE:
                    obs.inc(
                        "engine_layer_parallel_chunks_total",
                        len(chunks),
                        workers=str(min(jobs, len(chunks))),
                    )
                with ThreadPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
                    list(pool.map(self._aggregate_batch, chunks))
        return iter([self.aggregate(cuboid) for cuboid in cuboids])

    def layer_scan(
        self,
        cuboids: Sequence[Cuboid],
        t_conf: float,
        n_jobs: Optional[int] = None,
    ):
        """One BFS layer's ``(aggregate, anomalous group rows)`` pairs.

        The layer's per-group confidences are concatenated once per engine
        (one cached vector per layer of each searched attribute set), so a
        threshold probe — the per-search hot loop of a ``t_conf``
        sensitivity sweep — costs a single vectorized comparison for the
        whole layer instead of one pass per cuboid.  Row indices are
        yielded ascending per cuboid, matching a per-cuboid scan exactly.
        Resolved scans are memoized per ``(layer, t_conf)``: a grid sweep
        that revisits a threshold replays the split for free.
        """
        key = tuple(cuboid.attribute_indices for cuboid in cuboids)
        scan_key = (key, t_conf)
        memo = self._layer_scans.get(scan_key)
        if memo is not None:
            if _trace.ACTIVE:
                obs.inc("engine_layer_scan_memo_hits_total")
            return memo
        entry = self._layer_confidences.get(key)
        if entry is None:
            aggregates = list(self.layer_aggregates(cuboids, n_jobs))
            confidences = [aggregate.confidence for aggregate in aggregates]
            concatenated = (
                confidences[0] if len(confidences) == 1 else np.concatenate(confidences)
            )
            boundaries = [0]
            for column in confidences:
                boundaries.append(boundaries[-1] + len(column))
            entry = (aggregates, concatenated, boundaries)
            self._layer_confidences[key] = entry
        aggregates, concatenated, boundaries = entry
        hits = np.flatnonzero(concatenated > t_conf).tolist()
        position = 0
        n_hits = len(hits)
        scanned = []
        for index, aggregate in enumerate(aggregates):
            low, high = boundaries[index], boundaries[index + 1]
            rows: List[int] = []
            while position < n_hits and hits[position] < high:
                rows.append(hits[position] - low)
                position += 1
            scanned.append((aggregate, rows))
        self._layer_scans[scan_key] = scanned
        return scanned

    # -- inverted index --------------------------------------------------------

    def _postings_for(self, column: int) -> List[np.ndarray]:
        """Sorted row postings per element code of one attribute (lazy)."""
        lists = self._postings.get(column)
        if lists is None:
            if _trace.ACTIVE:
                obs.inc("engine_postings_built_total")
            codes = self.dataset.codes[:, column]
            order = np.argsort(codes, kind="stable")
            bounds = np.searchsorted(codes[order], np.arange(self._sizes[column] + 1))
            lists = [
                order[bounds[c] : bounds[c + 1]] for c in range(self._sizes[column])
            ]
            self._postings[column] = lists
        return lists

    def rows_of(self, combination: AttributeCombination) -> np.ndarray:
        """Sorted leaf-row indices covered by *combination*.

        Computed by intersecting the specified attributes' posting lists
        (smallest first), so the cost scales with the combination's
        support rather than the table size.  Results are cached per
        combination for the incremental miner's repeated verifications.
        """
        encoded = self.dataset.encode_combination(combination)
        return self._rows_of_encoded(tuple(int(code) for code in encoded))

    def _rows_of_encoded(self, encoded: Tuple[int, ...]) -> np.ndarray:
        cached = self._rows.get(encoded)
        if _trace.ACTIVE:
            obs.inc(
                "engine_rows_cache_total",
                outcome="hit" if cached is not None else "miss",
            )
        if cached is not None:
            return cached
        lists = [
            self._postings_for(column)[code]
            for column, code in enumerate(encoded)
            if code >= 0
        ]
        if not lists:
            rows = np.arange(self.dataset.n_rows, dtype=np.int64)
        elif len(lists) == 1:
            rows = lists[0]
        else:
            lists.sort(key=len)
            rows = lists[0]
            for other in lists[1:]:
                if rows.size == 0:
                    break
                rows = np.intersect1d(rows, other, assume_unique=True)
        self._rows[encoded] = rows
        return rows

    def group_rows(self, aggregate: CuboidAggregate, index: int) -> np.ndarray:
        """Covered leaf rows of one aggregate group, by integer codes.

        Equivalent to ``rows_of(aggregate.combination(index))`` without
        the code -> name -> code round trip.  Membership is one equality
        scan over the cuboid's cached linear keys: the search's coverage
        loop only touches the few groups that become candidates, so a
        direct scan beats materializing posting lists for every attribute
        the search visits.  Results land in the same row cache that
        :meth:`rows_of` reads.
        """
        indices = aggregate.cuboid.attribute_indices
        codes_row = aggregate.codes[index]
        encoded = [-1] * len(self._sizes)
        for position, attr_index in enumerate(indices):
            encoded[attr_index] = int(codes_row[position])
        key = tuple(encoded)
        cached = self._rows.get(key)
        if _trace.ACTIVE:
            obs.inc(
                "engine_rows_cache_total",
                outcome="hit" if cached is not None else "miss",
            )
        if cached is not None:
            return cached
        __, strides, __ = self._geometry(indices)
        target = 0
        for position, stride in enumerate(strides):
            target += int(codes_row[position]) * stride
        rows = np.flatnonzero(self._keys_for(indices) == target)
        self._rows[key] = rows
        return rows

    def support_count(self, combination: AttributeCombination) -> int:
        """``support_count_D(ac)`` via the inverted index."""
        return int(self.rows_of(combination).size)

    def anomalous_count(self, combination: AttributeCombination) -> int:
        """``support_count_D(ac, Anomaly)`` via the inverted index."""
        rows = self.rows_of(combination)
        return int(self.dataset.labels[rows].sum())

    def confidence(self, combination: AttributeCombination) -> float:
        """Criteria 2 confidence via the inverted index (0.0 on empty support)."""
        rows = self.rows_of(combination)
        if rows.size == 0:
            return 0.0
        return float(self.dataset.labels[rows].sum()) / rows.size

    # -- warm cloning ----------------------------------------------------------

    def compatible_with(self, dataset: FineGrainedDataset) -> bool:
        """True when *dataset* shares this engine's leaf population (codes)."""
        mine = self.dataset
        return (
            dataset.schema == mine.schema
            and dataset.codes.shape == mine.codes.shape
            and (
                dataset.codes is mine.codes
                or np.array_equal(dataset.codes, mine.codes)
            )
        )

    def warm_clone(self, dataset: FineGrainedDataset) -> "AggregationEngine":
        """Engine for a new interval over the same leaf population.

        Shares every code-derived structure (geometry, linear keys,
        posting lists, row caches, per-cuboid occupancy/support/codes) and
        drops everything label- or value-dependent.  The clone is
        installed as the dataset's shared engine, so a subsequent full
        search reuses the warm caches too.

        Raises ``ValueError`` if the datasets disagree on schema or codes.
        """
        if not self.compatible_with(dataset):
            raise ValueError("warm_clone needs an identical leaf population")
        if _trace.ACTIVE:
            obs.inc("engine_warm_clones_total")
        clone = AggregationEngine(dataset, n_jobs=self.n_jobs, backend=self.backend)
        clone._geometries = self._geometries
        clone._keys = self._keys
        clone._postings = self._postings
        clone._shapes = dict(self._shapes)
        clone._rows = self._rows
        return install_engine(clone)


class NaiveAggregationEngine(AggregationEngine):
    """Reference adapter reproducing the pre-engine cost profile.

    Every call re-derives its answer from the full leaf table through the
    naive :class:`FineGrainedDataset` methods — no caching, no roll-ups,
    no fused or batched passes, no posting lists.  The speedup benchmark
    runs the shared search code against this adapter to measure exactly
    what the engine buys, with bit-identical candidate sets.
    """

    def linear_keys(self, cuboid: Cuboid) -> Tuple[np.ndarray, int]:
        capacity = 1
        for index in cuboid.attribute_indices:
            capacity *= self.dataset.schema.size(index)
        return self.dataset.linear_keys(cuboid), capacity

    def prepare(self, attribute_indices: Sequence[int]) -> Optional[CuboidAggregate]:
        return None

    def aggregate(self, cuboid: Cuboid) -> CuboidAggregate:
        return self.dataset.aggregate(cuboid)

    def aggregate_with_labels(
        self, cuboid: Cuboid, labels: np.ndarray
    ) -> CuboidAggregate:
        return self.dataset.with_labels(labels).aggregate(cuboid)

    def layer_aggregates(
        self, cuboids: Sequence[Cuboid], n_jobs: Optional[int] = None
    ) -> Iterator[CuboidAggregate]:
        return (self.aggregate(cuboid) for cuboid in cuboids)

    def layer_scan(
        self,
        cuboids: Sequence[Cuboid],
        t_conf: float,
        n_jobs: Optional[int] = None,
    ):
        # Lazy per-cuboid scan: cuboids past an early stop are never
        # aggregated, exactly like the pre-engine search.
        for cuboid in cuboids:
            aggregate = self.aggregate(cuboid)
            rows = np.flatnonzero(aggregate.confidence > t_conf)
            yield aggregate, [int(row) for row in rows]

    def rows_of(self, combination: AttributeCombination) -> np.ndarray:
        return np.flatnonzero(self.dataset.mask_of(combination))

    def group_rows(self, aggregate: CuboidAggregate, index: int) -> np.ndarray:
        return self.rows_of(aggregate.combination(index))

    def confidence(self, combination: AttributeCombination) -> float:
        return self.dataset.confidence(combination)

    def warm_clone(self, dataset: FineGrainedDataset) -> "AggregationEngine":
        return NaiveAggregationEngine(dataset, n_jobs=self.n_jobs)


class CandidateIndex:
    """Cuboid-bucketed ancestor lookup for Criteria 3.

    Candidates are bucketed by the attribute set they specify; whether a
    new combination descends from any candidate is answered by projecting
    it onto each strictly-coarser bucket and testing set membership —
    O(#occupied cuboids) dictionary probes instead of an O(#candidates)
    Python scan per combination.
    """

    def __init__(self) -> None:
        self._buckets: Dict[Tuple[int, ...], set] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def add_entry(self, spec: Tuple[int, ...], values: tuple) -> None:
        """Store one candidate as its specified indices plus value tuple.

        ``values`` may hold element names or integer codes — any hashable
        per-attribute representation works as long as lookups use the
        same one (the search uses raw codes to skip decoding).
        """
        self._buckets.setdefault(spec, set()).add(values)

    def add(self, combination: AttributeCombination) -> None:
        spec = combination.specified_indices
        self.add_entry(spec, tuple(combination.values[i] for i in spec))

    def has_ancestor_entry(self, spec: frozenset, lookup) -> bool:
        """True when any stored candidate is a strict ancestor.

        ``lookup(attribute_index)`` must return the probed combination's
        value for that attribute, in the same representation the entries
        were stored with.
        """
        n_spec = len(spec)
        for bucket_spec, seen in self._buckets.items():
            if len(bucket_spec) >= n_spec:
                continue
            if not spec.issuperset(bucket_spec):
                continue
            if tuple(lookup(i) for i in bucket_spec) in seen:
                return True
        return False

    def has_ancestor_of(self, combination: AttributeCombination) -> bool:
        """True when any stored candidate is a strict ancestor."""
        values = combination.values
        return self.has_ancestor_entry(
            frozenset(combination.specified_indices), lambda i: values[i]
        )
