"""The paper's primary contribution: the RAPMiner pipeline and its lattice model."""

from .attribute import WILDCARD, AttributeCombination, AttributeSchema
from .anomaly_confidence import anomaly_confidence, cuboid_confidences, is_anomalous
from .classification_power import (
    AttributeDeletionResult,
    all_classification_powers,
    binary_entropy,
    classification_power,
    delete_redundant_attributes,
    partition_attributes,
)
from .config import RAPMinerConfig
from .delta import DeltaConfig, DeltaSession, DeltaStats, DeltaTick
from .cuboid import (
    Cuboid,
    cuboid_count,
    cuboids_in_layer,
    decrease_ratio,
    decrease_ratio_lower_bound,
    enumerate_cuboids,
    lattice_vertex_labels,
)
from .engine import (
    AggregationEngine,
    CandidateIndex,
    NaiveAggregationEngine,
    engine_for,
    install_engine,
)
from .explain import Explanation, PatternEvidence, explain
from .incremental import IncrementalRAPMiner, IncrementalStats, StreamingRAPMiner
from .lattice_viz import (
    VertexState,
    render_cuboid_hierarchy,
    render_search_dag_dot,
    search_dag,
)
from .miner import LocalizationResult, RAPMiner
from .scoring import RAPCandidate, rank_candidates, rap_score
from .search import (
    SearchOutcome,
    SearchStats,
    batched_layerwise_topdown_search,
    layerwise_topdown_search,
)
from .stacked import (
    StackedCaseEngine,
    StackedLayerCuboid,
    group_datasets_by_layout,
    stacked_key_dtype,
)

__all__ = [
    "WILDCARD",
    "AttributeCombination",
    "AttributeSchema",
    "anomaly_confidence",
    "cuboid_confidences",
    "is_anomalous",
    "AttributeDeletionResult",
    "all_classification_powers",
    "binary_entropy",
    "classification_power",
    "delete_redundant_attributes",
    "RAPMinerConfig",
    "Cuboid",
    "cuboid_count",
    "cuboids_in_layer",
    "decrease_ratio",
    "decrease_ratio_lower_bound",
    "enumerate_cuboids",
    "lattice_vertex_labels",
    "AggregationEngine",
    "CandidateIndex",
    "NaiveAggregationEngine",
    "engine_for",
    "install_engine",
    "Explanation",
    "PatternEvidence",
    "explain",
    "DeltaConfig",
    "DeltaSession",
    "DeltaStats",
    "DeltaTick",
    "IncrementalRAPMiner",
    "IncrementalStats",
    "StreamingRAPMiner",
    "VertexState",
    "render_cuboid_hierarchy",
    "render_search_dag_dot",
    "search_dag",
    "LocalizationResult",
    "RAPMiner",
    "RAPCandidate",
    "rank_candidates",
    "rap_score",
    "SearchOutcome",
    "SearchStats",
    "batched_layerwise_topdown_search",
    "layerwise_topdown_search",
    "StackedCaseEngine",
    "StackedLayerCuboid",
    "group_datasets_by_layout",
    "stacked_key_dtype",
    "partition_attributes",
]
