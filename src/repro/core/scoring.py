"""RAP candidate ranking (Eq. 3).

Candidates surviving the search are ranked by::

    RAPScore = Confidence(ac => Anomaly) / sqrt(Layer)

The layer penalty encodes the paper's observation that the probability of a
combination being a root cause is negatively correlated with its depth:
with equal confidence, a coarser pattern explains the anomaly more
parsimoniously and should rank first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .attribute import AttributeCombination

__all__ = ["RAPCandidate", "rap_score", "rank_candidates"]


def rap_score(confidence: float, layer: int) -> float:
    """``RAPScore = confidence / sqrt(layer)`` (Eq. 3)."""
    if layer < 1:
        raise ValueError("layer must be at least 1")
    if not 0.0 <= confidence <= 1.0:
        raise ValueError("confidence must be in [0, 1]")
    return confidence / math.sqrt(layer)


@dataclass(frozen=True)
class RAPCandidate:
    """A candidate RAP with the evidence the search collected for it."""

    combination: AttributeCombination
    confidence: float
    layer: int
    #: Leaf rows the combination covers in D.
    support: int
    #: Covered leaf rows labelled anomalous.
    anomalous_support: int

    @property
    def score(self) -> float:
        """Ranking score per Eq. 3."""
        return rap_score(self.confidence, self.layer)


def rank_candidates(
    candidates: Sequence[RAPCandidate], k: Optional[int] = None
) -> List[RAPCandidate]:
    """Sort by RAPScore descending and keep the top *k* (all when ``None``).

    Ties break on larger support, shallower layer, higher confidence and
    anomalous support, then on the combination's deterministic sort key —
    a total order over distinct candidates, so rankings are reproducible
    and independent of input order.
    """
    ordered = sorted(
        candidates,
        key=lambda c: (
            -c.score,
            -c.support,
            c.layer,
            -c.confidence,
            -c.anomalous_support,
            c.combination.sort_key(),
        ),
    )
    if k is not None:
        if k < 0:
            raise ValueError("k must be non-negative")
        ordered = ordered[:k]
    return ordered
