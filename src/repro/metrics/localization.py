"""Localization quality metrics: F1 over RAP sets (Eq. 6) and RC@k (Eq. 7).

The paper uses two protocols:

* On the grouped Squeeze dataset the true RAP count is known, so each
  method returns exactly that many patterns and **set-level F1** compares
  the prediction set with the ground truth (a predicted pattern counts only
  on exact match — same cuboid, same elements).
* On RAPMD the RAP count is unknown and recall matters most, so **RC@k**
  (Eq. 7) measures, over a whole case collection, the fraction of all true
  RAPs that appear among each case's top-``k`` recommendations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..core.attribute import AttributeCombination

__all__ = ["PRF", "precision_recall_f1", "f1_score", "recall_at_k", "mean_f1"]


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float


def precision_recall_f1(
    predicted: Sequence[AttributeCombination],
    actual: Sequence[AttributeCombination],
) -> PRF:
    """Exact-match set precision/recall/F1 between prediction and truth.

    Duplicate predictions are collapsed; matching is exact combination
    equality (the paper's criterion — a parent or child of a true RAP does
    not count).
    """
    predicted_set = set(predicted)
    actual_set = set(actual)
    true_positives = len(predicted_set & actual_set)
    precision = true_positives / len(predicted_set) if predicted_set else 0.0
    recall = true_positives / len(actual_set) if actual_set else 0.0
    if precision + recall == 0.0:
        return PRF(precision, recall, 0.0)
    f1 = 2.0 * precision * recall / (precision + recall)
    return PRF(precision, recall, f1)


def f1_score(
    predicted: Sequence[AttributeCombination],
    actual: Sequence[AttributeCombination],
) -> float:
    """F1 of one case (Eq. 6)."""
    return precision_recall_f1(predicted, actual).f1


def mean_f1(
    cases: Iterable[Tuple[Sequence[AttributeCombination], Sequence[AttributeCombination]]],
) -> float:
    """Mean per-case F1 over ``(predicted, actual)`` pairs."""
    scores = [f1_score(predicted, actual) for predicted, actual in cases]
    return sum(scores) / len(scores) if scores else 0.0


def recall_at_k(
    results: Iterable[Tuple[Sequence[AttributeCombination], Sequence[AttributeCombination]]],
    k: int,
) -> float:
    """RC@k over a case collection (Eq. 7).

    ``results`` yields ``(predicted_ranked, actual)`` pairs; the metric is
    the total number of true RAPs found within each case's top-``k``
    predictions, divided by the total number of true RAPs::

        RC@k = sum_t sum_{i<=k} [Pred_t^i in Real_t] / sum_t |Real_t|
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    hits = 0
    total = 0
    for predicted, actual in results:
        actual_set = set(actual)
        total += len(actual_set)
        top = list(predicted)[:k]
        hits += sum(1 for pattern in set(top) if pattern in actual_set)
    if total == 0:
        return 0.0
    return hits / total
