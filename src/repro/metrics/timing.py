"""Wall-clock measurement of localizer runs (the paper's efficiency metric).

The paper compares methods by their *average running time in identifying
the RAPs* (Fig. 9).  :func:`time_localization` measures a single run with a
monotonic high-resolution clock; :class:`TimingAccumulator` aggregates many
runs into the mean/percentile summary the figures report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.attribute import AttributeCombination
from ..data.dataset import FineGrainedDataset

__all__ = ["time_localization", "TimingAccumulator"]


def time_localization(
    localize: Callable[..., List[AttributeCombination]],
    dataset: FineGrainedDataset,
    k: Optional[int] = None,
) -> Tuple[List[AttributeCombination], float]:
    """Run ``localize(dataset, k)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = localize(dataset, k)
    elapsed = time.perf_counter() - start
    return result, elapsed


@dataclass
class TimingAccumulator:
    """Collects per-run durations and summarizes them."""

    samples: List[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("durations cannot be negative")
        self.samples.append(seconds)

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> float:
        return sum(self.samples)

    def _guarded_samples(self, what: str) -> List[float]:
        """The sample list, or a clear error when no run was ever recorded.

        Every order-statistic query funnels through this single guard:
        an empty accumulator has no percentiles, and silently answering
        ``0.0`` (the old behaviour) made missing data indistinguishable
        from an instantaneous run in reports.
        """
        if not self.samples:
            raise ValueError(
                f"cannot compute {what}: TimingAccumulator has no samples "
                "(record at least one duration with add() first)"
            )
        return self.samples

    @staticmethod
    def _interpolate(ordered: List[float], q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if len(ordered) == 1:
            return ordered[0]
        position = (len(ordered) - 1) * q / 100.0
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100].

        Raises ``ValueError`` when no samples were recorded.
        """
        return self._interpolate(sorted(self._guarded_samples(f"percentile({q:g})")), q)

    def percentiles(self, qs: Sequence[float]) -> Tuple[float, ...]:
        """Several percentiles from one sorted pass (same guard as one query)."""
        ordered = sorted(self._guarded_samples("percentiles"))
        return tuple(self._interpolate(ordered, q) for q in qs)
