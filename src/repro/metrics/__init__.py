"""Evaluation metrics: localization quality (F1, RC@k) and timing."""

from .localization import PRF, f1_score, mean_f1, precision_recall_f1, recall_at_k
from .ranking import (
    average_precision,
    mean_average_precision,
    mean_reciprocal_rank,
    precision_at_k,
)
from .timing import TimingAccumulator, time_localization

__all__ = [
    "PRF",
    "f1_score",
    "mean_f1",
    "precision_recall_f1",
    "recall_at_k",
    "average_precision",
    "mean_average_precision",
    "mean_reciprocal_rank",
    "precision_at_k",
    "TimingAccumulator",
    "time_localization",
]
