"""Ranking-quality metrics complementing the paper's F1 and RC@k.

RC@k (Eq. 7) only asks whether a true RAP appears in the top-k; these
metrics additionally reward putting it *high* in the list, which matters
operationally — the first scope an operator acts on should be a real one:

* :func:`precision_at_k` — fraction of the top-k that are true RAPs;
* :func:`mean_reciprocal_rank` — 1/rank of the first true RAP, averaged;
* :func:`average_precision` / :func:`mean_average_precision` — classic
  MAP over the ranked prediction lists.

All operate on the same ``(predicted_ranked, actual)`` pairs as
:func:`repro.metrics.localization.recall_at_k`.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..core.attribute import AttributeCombination

__all__ = [
    "precision_at_k",
    "mean_reciprocal_rank",
    "average_precision",
    "mean_average_precision",
]

ResultPair = Tuple[Sequence[AttributeCombination], Sequence[AttributeCombination]]


def precision_at_k(results: Iterable[ResultPair], k: int) -> float:
    """Mean fraction of the top-``k`` predictions that are true RAPs.

    Cases contribute ``hits / min(k, len(predicted))`` (empty predictions
    count as 0); duplicates in the top-k are collapsed.
    """
    if k < 1:
        raise ValueError("k must be positive")
    scores = []
    for predicted, actual in results:
        top = list(dict.fromkeys(list(predicted)[:k]))
        if not top:
            scores.append(0.0)
            continue
        actual_set = set(actual)
        hits = sum(1 for p in top if p in actual_set)
        scores.append(hits / len(top))
    return sum(scores) / len(scores) if scores else 0.0


def mean_reciprocal_rank(results: Iterable[ResultPair]) -> float:
    """Mean of ``1 / rank`` of the first true RAP (0 when none is found)."""
    scores = []
    for predicted, actual in results:
        actual_set = set(actual)
        score = 0.0
        for rank, pattern in enumerate(predicted, start=1):
            if pattern in actual_set:
                score = 1.0 / rank
                break
        scores.append(score)
    return sum(scores) / len(scores) if scores else 0.0


def average_precision(
    predicted: Sequence[AttributeCombination],
    actual: Sequence[AttributeCombination],
) -> float:
    """Average precision of one ranked list against the truth set.

    Sum of precision-at-hit over the hit positions, normalized by the
    truth-set size; duplicates in the prediction are skipped.
    """
    actual_set = set(actual)
    if not actual_set:
        return 0.0
    seen = set()
    hits = 0
    precision_sum = 0.0
    position = 0
    for pattern in predicted:
        if pattern in seen:
            continue
        seen.add(pattern)
        position += 1
        if pattern in actual_set:
            hits += 1
            precision_sum += hits / position
    return precision_sum / len(actual_set)


def mean_average_precision(results: Iterable[ResultPair]) -> float:
    """MAP over a case collection."""
    scores = [average_precision(predicted, actual) for predicted, actual in results]
    return sum(scores) / len(scores) if scores else 0.0
