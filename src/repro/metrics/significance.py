"""Statistical comparison of localizers over a shared case collection.

The paper compares point estimates (mean F1, RC@k); for a repository that
downstream users will run on their own (smaller) datasets, a point
difference needs an uncertainty statement.  Two standard paired tests over
per-case scores:

* :func:`paired_bootstrap` — bootstrap distribution of the mean score
  difference; reports the confidence interval and the achieved
  significance level (fraction of resamples where the sign flips);
* :func:`wilcoxon_signed_rank` — the scipy Wilcoxon signed-rank test
  (exact or normal-approximated), as the classical nonparametric check.

Both consume the aligned per-case score arrays that
:func:`per_case_scores` extracts from two
:class:`~repro.experiments.runner.MethodEvaluation` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np
from scipy import stats

from ..experiments.runner import MethodEvaluation

__all__ = [
    "BootstrapResult",
    "paired_bootstrap",
    "wilcoxon_signed_rank",
    "per_case_scores",
]


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison (A minus B)."""

    mean_difference: float
    ci_low: float
    ci_high: float
    #: Achieved significance: fraction of resamples with the opposite sign
    #: (or zero) to the observed mean difference.
    p_value: float
    n_resamples: int

    @property
    def significant(self) -> bool:
        """True when the 95% CI excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def per_case_scores(
    evaluation_a: MethodEvaluation,
    evaluation_b: MethodEvaluation,
    score: Callable = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Aligned per-case score arrays for two evaluations of the same cases.

    ``score`` maps a :class:`~repro.experiments.runner.CaseResult` to a
    float; defaults to per-case F1.  Results are aligned by ``case_id`` —
    a mismatch in the case sets is an error, not a silent intersection.
    """
    if score is None:
        score = lambda result: result.f1  # noqa: E731
    by_id_a = {r.case_id: r for r in evaluation_a.results}
    by_id_b = {r.case_id: r for r in evaluation_b.results}
    if set(by_id_a) != set(by_id_b):
        raise ValueError("evaluations cover different case sets")
    ids = sorted(by_id_a)
    a = np.array([score(by_id_a[i]) for i in ids], dtype=float)
    b = np.array([score(by_id_b[i]) for i in ids], dtype=float)
    return a, b


def paired_bootstrap(
    scores_a: np.ndarray,
    scores_b: np.ndarray,
    n_resamples: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapResult:
    """Paired bootstrap of ``mean(scores_a - scores_b)``."""
    scores_a = np.asarray(scores_a, dtype=float)
    scores_b = np.asarray(scores_b, dtype=float)
    if scores_a.shape != scores_b.shape or scores_a.ndim != 1:
        raise ValueError("need two 1-D score arrays of equal length")
    if scores_a.size == 0:
        raise ValueError("need at least one paired score")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    differences = scores_a - scores_b
    observed = float(differences.mean())
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, differences.size, size=(n_resamples, differences.size))
    resampled = differences[indices].mean(axis=1)
    alpha = 1.0 - confidence
    ci_low, ci_high = np.quantile(resampled, [alpha / 2.0, 1.0 - alpha / 2.0])
    if observed > 0:
        p = float((resampled <= 0.0).mean())
    elif observed < 0:
        p = float((resampled >= 0.0).mean())
    else:
        p = 1.0
    return BootstrapResult(
        mean_difference=observed,
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        p_value=p,
        n_resamples=n_resamples,
    )


def wilcoxon_signed_rank(
    scores_a: np.ndarray, scores_b: np.ndarray
) -> Tuple[float, float]:
    """Wilcoxon signed-rank test on the paired scores.

    Returns ``(statistic, p_value)``.  All-zero differences (identical
    methods) return ``(0.0, 1.0)`` instead of raising.
    """
    scores_a = np.asarray(scores_a, dtype=float)
    scores_b = np.asarray(scores_b, dtype=float)
    if scores_a.shape != scores_b.shape or scores_a.ndim != 1:
        raise ValueError("need two 1-D score arrays of equal length")
    differences = scores_a - scores_b
    if not np.any(differences):
        return 0.0, 1.0
    statistic, p_value = stats.wilcoxon(scores_a, scores_b)
    return float(statistic), float(p_value)
