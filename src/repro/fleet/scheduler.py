"""Work-stealing scheduler over layout-keyed shard queues.

The fleet's unit of placement is the **shard**: a long-lived worker that
owns warm per-schema engine state (see :mod:`repro.fleet.supervisor`).
Shards are grouped by *layout* — the ``(attribute names, sizes)`` pair
that decides whether two cases can share an engine's code-derived caches
— because stealing across layouts would trade queue balance for cold
engine rebuilds, which is exactly the head-of-line cost the fleet
exists to remove.

Placement and stealing rules, all deterministic:

* **Routing** — each ``(layout, tenant)`` pair gets a *home shard*,
  assigned round-robin over the layout's shards in tenant first-seen
  order.  Consecutive cases of one tenant therefore land on one queue,
  maximizing warm-engine reuse, and the assignment is a pure function of
  the submission order.
* **Stealing** — a shard whose queue is empty steals from the
  most-loaded *alive, same-layout* shard (ties broken by lowest shard
  id): half of the victim's queue, taken from the **tail**, order
  preserved.  Taking the tail leaves the victim the oldest work — the
  cases its warm engines were built for — while the thief inherits the
  backlog the victim would have reached last.  ``max(1, n // 2)`` items
  move per steal, so a steal always makes progress and never empties a
  queue the victim is actively draining.
* **Crash drain** — :meth:`WorkStealingScheduler.kill` marks a shard
  dead and hands back its queued items so the supervisor can requeue
  them onto survivors (or degrade them to error records when the layout
  has no survivors).

Results never depend on the steal interleaving: every item carries a
monotonically increasing sequence id assigned at submission, and the
supervisor reassembles output by sequence id, so the fleet's answer is
bit-identical to a serial run no matter which shard executed what.

:func:`simulated_makespan` runs the same scheduler under a virtual
clock — per-item costs instead of wall time — which gives a
host-independent measure of how much balance stealing buys on a given
tenant mix (the fleet benchmark gates on it where wall-clock speedup
cannot be measured honestly, i.e. single-CPU machines).
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..data.dataset import FineGrainedDataset
from ..data.injection import LocalizationCase
from ..obs import trace as _trace

__all__ = [
    "FleetItem",
    "NoCompatibleShard",
    "ShardQueue",
    "WorkStealingScheduler",
    "layout_key",
    "simulated_makespan",
]

#: A shard layout key: the schema identity that decides engine-cache
#: compatibility (mirrors the batch layer's per-worker engine key).
LayoutKey = Tuple[Tuple[str, ...], Tuple[int, ...]]


def layout_key(dataset: FineGrainedDataset) -> LayoutKey:
    """The shard-grouping key of *dataset* (schema names and sizes)."""
    return (tuple(dataset.schema.names), tuple(dataset.schema.sizes))


class NoCompatibleShard(RuntimeError):
    """No alive shard exists for the item's layout."""


@dataclass
class FleetItem:
    """One queued localization case, tagged for routing and sequencing.

    ``seq`` is the global submission order — the only ordering the
    fleet's output respects.  ``attempts`` counts executions started; a
    crashed item requeues once (``attempts == 1``) before degrading to
    an error record.

    ``deadline_ms`` / ``degrade`` are the per-request resilience
    contract of the serving front door (:mod:`repro.serving`): a
    deadline-carrying item runs through the method's budget-aware
    ``run`` path (when it has one) so one slow request degrades itself
    instead of stalling its shard; items without a deadline take the
    plain ``localize`` path, bit-identical to a serial run.
    """

    seq: int
    tenant: str
    case: LocalizationCase
    layout: LayoutKey
    attempts: int = 0
    #: Per-item wall-clock budget in milliseconds (``None`` = unlimited).
    deadline_ms: Optional[float] = None
    #: Apply the default degradation ladder while the budget drains.
    degrade: bool = False
    #: Per-item top-k override (``None`` = the fleet config's policy).
    k: Optional[int] = None


@dataclass
class ShardQueue:
    """One shard's run queue plus its liveness and steal accounting."""

    shard_id: int
    layout: LayoutKey
    items: deque = field(default_factory=deque)
    alive: bool = True
    #: Items this shard executed (batches started, in items).
    executed: int = 0
    #: Steal operations this shard performed as the thief.
    steals: int = 0
    #: Items this shard gained by stealing.
    stolen_in: int = 0
    #: Items other shards took from this queue.
    stolen_out: int = 0

    def depth(self) -> int:
        return len(self.items)


class WorkStealingScheduler:
    """Routes :class:`FleetItem` submissions and feeds shard workers.

    Thread-safe: every mutation happens under one lock, and
    :meth:`acquire` can block on the paired condition until work arrives
    or :meth:`close` declares the fleet drained.  The supervisor owns
    the completion accounting; the scheduler only knows queues.

    ``steal=False`` turns the same structure into a static sharder (the
    benchmark's baseline): shards then only ever run their own queue.
    """

    def __init__(self, shards_per_layout: int = 2, steal: bool = True):
        if shards_per_layout < 1:
            raise ValueError(
                f"shards_per_layout must be >= 1, got {shards_per_layout}"
            )
        self.shards_per_layout = shards_per_layout
        self.steal = steal
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._shards: List[ShardQueue] = []
        self._layout_shards: Dict[LayoutKey, List[int]] = {}
        self._homes: Dict[Tuple[LayoutKey, str], int] = {}
        self._next_home: Dict[LayoutKey, int] = {}
        self._closed = False

    # -- shard management --------------------------------------------------

    @property
    def shards(self) -> List[ShardQueue]:
        """All shard queues, in creation order (stable shard ids)."""
        return list(self._shards)

    def _ensure_layout(self, layout: LayoutKey) -> List[int]:
        """The shard ids of *layout*, creating its group on first use."""
        ids = self._layout_shards.get(layout)
        if ids is None:
            ids = []
            for __ in range(self.shards_per_layout):
                shard = ShardQueue(shard_id=len(self._shards), layout=layout)
                self._shards.append(shard)
                ids.append(shard.shard_id)
            self._layout_shards[layout] = ids
            self._next_home[layout] = 0
        return ids

    def _home_for(self, layout: LayoutKey, tenant: str) -> Optional[int]:
        """The (alive) home shard id of ``(layout, tenant)``, or ``None``.

        First-seen tenants are assigned round-robin; a dead home falls
        forward to the next alive shard of the layout without disturbing
        other tenants' assignments.
        """
        ids = self._ensure_layout(layout)
        key = (layout, tenant)
        home = self._homes.get(key)
        if home is None:
            cursor = self._next_home[layout]
            home = ids[cursor % len(ids)]
            self._next_home[layout] = cursor + 1
            self._homes[key] = home
        if self._shards[home].alive:
            return home
        for shard_id in ids:
            if self._shards[shard_id].alive:
                return shard_id
        return None

    def home_shard(self, layout: LayoutKey, tenant: str) -> Optional[int]:
        """Assign and return ``(layout, tenant)``'s home shard, queueing nothing.

        Creates the layout's shard group and registers the tenant's home
        exactly as a submission would, so future cases of the tenant
        route to the returned shard.  :meth:`FleetSupervisor.warm_start`
        primes engines through this instead of a queued item — a priming
        item popped back via :meth:`acquire` could take a real pending
        case's place at the queue head.  ``None`` when every shard of
        the layout is dead.
        """
        with self._ready:
            return self._home_for(layout, tenant)

    # -- submission --------------------------------------------------------

    def submit(self, item: FleetItem) -> int:
        """Queue *item* on its home shard and return the shard id.

        Raises :class:`NoCompatibleShard` when every shard of the item's
        layout is dead — the caller degrades the item to an error record
        instead of letting it wait forever.
        """
        with self._ready:
            home = self._home_for(item.layout, item.tenant)
            if home is None:
                raise NoCompatibleShard(
                    f"no alive shard for layout {item.layout!r}"
                )
            shard = self._shards[home]
            shard.items.append(item)
            if _trace.ACTIVE:
                obs.set_gauge(
                    "fleet_queue_depth", shard.depth(), shard=str(home)
                )
            self._ready.notify_all()
            return home

    # -- acquisition -------------------------------------------------------

    def _steal_into(self, thief: ShardQueue) -> bool:
        """Move half the tail of the most-loaded same-layout queue to *thief*."""
        victim: Optional[ShardQueue] = None
        for shard_id in self._layout_shards.get(thief.layout, ()):
            candidate = self._shards[shard_id]
            if (
                candidate.shard_id != thief.shard_id
                and candidate.alive
                and candidate.items
                and (victim is None or len(candidate.items) > len(victim.items))
            ):
                victim = candidate
        if victim is None:
            return False
        count = max(1, len(victim.items) // 2)
        tail = [victim.items.pop() for __ in range(count)]
        tail.reverse()  # preserve the victim's submission order
        thief.items.extend(tail)
        thief.steals += 1
        thief.stolen_in += count
        victim.stolen_out += count
        if _trace.ACTIVE:
            obs.inc("fleet_steals_total")
            obs.inc("fleet_stolen_cases_total", count)
            obs.set_gauge(
                "fleet_queue_depth", victim.depth(), shard=str(victim.shard_id)
            )
        return True

    def acquire(
        self, shard_id: int, limit: int = 1, block: bool = False
    ) -> List[FleetItem]:
        """Up to *limit* items for shard *shard_id* to run next.

        Pops from the shard's own queue head; when the queue is empty
        and stealing is on, first steals half the tail of the most
        loaded same-layout queue.  With ``block=True`` the call waits
        until items arrive or :meth:`close` is called; an empty return
        then means the fleet is drained (or this shard is dead) and the
        worker should exit.

        Only same-layout items are ever returned, so every acquired
        micro-batch can share one stacked engine pass.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._ready:
            while True:
                shard = self._shards[shard_id]
                if not shard.alive:
                    return []
                if not shard.items and self.steal:
                    self._steal_into(shard)
                if shard.items:
                    count = min(limit, len(shard.items))
                    batch = [shard.items.popleft() for __ in range(count)]
                    shard.executed += count
                    for item in batch:
                        item.attempts += 1
                    if _trace.ACTIVE:
                        obs.set_gauge(
                            "fleet_queue_depth", shard.depth(), shard=str(shard_id)
                        )
                    return batch
                if self._closed or not block:
                    return []
                self._ready.wait()

    def has_work(self, shard_id: int) -> bool:
        """True when :meth:`acquire` would return items right now."""
        with self._lock:
            shard = self._shards[shard_id]
            if not shard.alive:
                return False
            if shard.items:
                return True
            if not self.steal:
                return False
            return any(
                self._shards[other].alive and self._shards[other].items
                for other in self._layout_shards.get(shard.layout, ())
                if other != shard_id
            )

    # -- liveness ----------------------------------------------------------

    def kill(self, shard_id: int) -> List[FleetItem]:
        """Mark a shard dead and drain its queue for requeueing."""
        with self._ready:
            shard = self._shards[shard_id]
            shard.alive = False
            drained = list(shard.items)
            shard.items.clear()
            if _trace.ACTIVE:
                obs.set_gauge("fleet_queue_depth", 0, shard=str(shard_id))
            self._ready.notify_all()
            return drained

    def alive_shards(self, layout: Optional[LayoutKey] = None) -> List[int]:
        with self._lock:
            return [
                s.shard_id
                for s in self._shards
                if s.alive and (layout is None or s.layout == layout)
            ]

    def close(self) -> None:
        """Declare the fleet drained: blocked acquirers return empty."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    def reopen(self) -> None:
        """Allow blocking acquires again (a new drain round is starting)."""
        with self._ready:
            self._closed = False

    # -- accounting --------------------------------------------------------

    @property
    def total_steals(self) -> int:
        with self._lock:
            return sum(s.steals for s in self._shards)

    @property
    def total_stolen(self) -> int:
        with self._lock:
            return sum(s.stolen_in for s in self._shards)

    def queue_depths(self) -> Dict[int, int]:
        with self._lock:
            return {s.shard_id: s.depth() for s in self._shards}


def simulated_makespan(
    jobs: Sequence[Tuple[str, LayoutKey, float]],
    shards_per_layout: int,
    steal: bool,
    cost_fn: Optional[Callable[[int], float]] = None,
) -> Tuple[float, int]:
    """Virtual-clock makespan of *jobs* under the fleet's placement rules.

    ``jobs`` is the submission order as ``(tenant, layout, cost)``
    triples.  Every shard owns a virtual clock; the simulation always
    advances the laggard shard (min clock, ties to lowest id), which
    acquires one item under exactly the scheduler's routing/steal rules
    and pays the item's cost.  Returns ``(makespan, steals)`` where the
    makespan is the slowest shard's finish time.

    This is a *mechanism* measurement, independent of host CPU count and
    the GIL: it answers "how well does stealing balance this tenant
    mix", which is the property the benchmark gate checks on machines
    where a wall-clock comparison would only time contention.
    """
    scheduler = WorkStealingScheduler(
        shards_per_layout=shards_per_layout, steal=steal
    )
    items: List[FleetItem] = []
    costs: Dict[int, float] = {}
    for seq, (tenant, layout, cost) in enumerate(jobs):
        item = FleetItem(seq=seq, tenant=tenant, case=None, layout=layout)
        items.append(item)
        costs[seq] = float(cost) if cost_fn is None else float(cost_fn(seq))
        scheduler.submit(item)
    clocks = [(0.0, shard.shard_id) for shard in scheduler.shards]
    heapq.heapify(clocks)
    makespan = 0.0
    while clocks:
        now, shard_id = heapq.heappop(clocks)
        batch = scheduler.acquire(shard_id, limit=1)
        if not batch:
            makespan = max(makespan, now)
            continue  # this shard is done; its clock stops here
        now += costs[batch[0].seq]
        makespan = max(makespan, now)
        heapq.heappush(clocks, (now, shard_id))
    return makespan, scheduler.total_steals
