"""Sharded multi-tenant serving fleet.

The batch layer (:mod:`repro.parallel`) executes one homogeneous batch
at a time; this package serves many concurrent tenant streams: a
work-stealing scheduler over layout-keyed warm-engine shards
(:mod:`repro.fleet.scheduler`), a supervisor owning the workers, the
admission quotas and the crash protocol (:mod:`repro.fleet.supervisor`),
and an append-only segment-log store for replay, audit and warm starts
(:mod:`repro.fleet.store`).  Output is bit-identical to a serial run —
results are sequenced by submission id, never completion order.  See
``docs/architecture.md`` (structure) and ``docs/operational.md``
(queue/quota/steal sizing).
"""

from .scheduler import (
    FleetItem,
    LayoutKey,
    NoCompatibleShard,
    ShardQueue,
    WorkStealingScheduler,
    layout_key,
    simulated_makespan,
)
from .store import MAGIC, STORE_VERSION, FleetStore, StoreRecord
from .supervisor import (
    CaseOutcome,
    FleetConfig,
    FleetSupervisor,
    fleet_localize,
    replay_store,
    tenant_of,
)

__all__ = [
    "CaseOutcome",
    "FleetConfig",
    "FleetItem",
    "FleetStore",
    "FleetSupervisor",
    "LayoutKey",
    "MAGIC",
    "NoCompatibleShard",
    "STORE_VERSION",
    "ShardQueue",
    "StoreRecord",
    "WorkStealingScheduler",
    "fleet_localize",
    "layout_key",
    "replay_store",
    "simulated_makespan",
    "tenant_of",
]
