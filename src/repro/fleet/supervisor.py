"""Fleet supervisor: long-lived warm-engine shards serving tenant streams.

:class:`FleetSupervisor` turns the repo's one-batch-at-a-time execution
layer into a continuously-serving fleet.  It owns a group of **shards**
per schema layout — each a long-lived worker holding the warm
:class:`~repro.core.engine.AggregationEngine` of the last case it ran
per layout, so consecutive cases of one tenant reuse code-derived caches
through :meth:`~repro.core.engine.AggregationEngine.warm_clone` instead
of re-aggregating from cold — and drives them through the
work-stealing :class:`~repro.fleet.scheduler.WorkStealingScheduler`.

Determinism contract: each case's localization touches only that case's
dataset and engine, warm clones are bitwise-equal to cold builds (the
engine layer's invariant), and results are reassembled by submission
sequence id — so fleet output is **bit-identical to a serial run** of
the same cases, whatever the steal interleaving, shard count, quota
pressure, or crash pattern.  The property suite drives randomized steal
schedules through the ``inline`` mode to check exactly this.

Admission control: each tenant may hold at most
:attr:`FleetConfig.tenant_quota` cases in the shard queues; excess
submissions wait in a per-tenant overflow deque and are admitted (in
submission order) as that tenant's earlier cases complete.  This bounds
any single tenant's queue footprint — the skewed tenant of a Zipf mix
cannot monopolize shard memory — without changing output order.

Crash handling composes with the resilience layer's contract: an
exception escaping a shard's localizer (e.g. the chaos harness's
:class:`~repro.resilience.chaos.WorkerCrash`) kills the shard; its
in-flight and queued items requeue **once** onto surviving same-layout
shards, and an item whose second attempt also dies — or whose layout has
no survivors — degrades to a :class:`~repro.experiments.runner.CaseResult`
with the failure on ``error``, never a raised batch.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, field
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..core.engine import AggregationEngine, engine_for
from ..data.injection import LocalizationCase
from ..experiments.runner import CaseResult, MethodEvaluation
from ..metrics.timing import time_localization
from ..obs import trace as _trace
from ..resilience.budget import Budget
from ..resilience.degrade import DegradationPolicy
from .scheduler import (
    FleetItem,
    LayoutKey,
    NoCompatibleShard,
    WorkStealingScheduler,
    layout_key,
)
from .store import FleetStore

__all__ = [
    "CaseOutcome",
    "FleetConfig",
    "FleetSupervisor",
    "fleet_localize",
    "replay_store",
    "tenant_of",
]

#: Metadata key carrying a case's tenant; absent means ``"default"``.
TENANT_KEY = "tenant"


def tenant_of(case: LocalizationCase) -> str:
    """The tenant a case belongs to (``metadata["tenant"]`` or default)."""
    return str(case.metadata.get(TENANT_KEY, "default"))


@dataclass
class FleetConfig:
    """Tuning knobs of one fleet run (see ``docs/operational.md``)."""

    #: Shards per schema layout (queue count = layouts x this).
    shards_per_layout: int = 2
    #: Work stealing on/off (off = the static-shard benchmark baseline).
    steal: bool = True
    #: Cases a shard acquires per trip to the scheduler.  ``1`` runs the
    #: per-case path with warm engine reuse; larger values opt into the
    #: method's case-stacked ``run_batch`` kernel when it has one.
    microbatch: int = 1
    #: Max queued (admitted, not yet completed) cases per tenant; excess
    #: waits in the supervisor's overflow deque.
    tenant_quota: int = 8
    #: ``"thread"`` runs one worker thread per shard; ``"inline"``
    #: single-steps shards deterministically in the calling thread
    #: (property tests and the virtual-clock benchmark use it).
    mode: str = "thread"
    #: Ranked patterns to keep per case (``None`` = all; overridden per
    #: case by ``k_from_truth``).
    k: Optional[int] = None
    #: Use ``len(case.true_raps)`` as each case's ``k`` (oracle cardinality).
    k_from_truth: bool = False
    #: Metadata key copied onto ``CaseResult.group``.
    group_key: str = "group"
    #: Kernel backend name for cold engine builds (``None`` = default).
    backend: Optional[str] = None
    #: Inline-mode shard interleaving: a ``random.Random``-like object
    #: with ``choice`` picks which ready shard steps next; ``None`` is
    #: round-robin.  Ignored in thread mode.
    schedule: Optional[object] = None

    def __post_init__(self) -> None:
        if self.mode not in ("thread", "inline"):
            raise ValueError(f"mode must be 'thread' or 'inline', got {self.mode!r}")
        if self.microbatch < 1:
            raise ValueError(f"microbatch must be >= 1, got {self.microbatch}")
        if self.tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {self.tenant_quota}")


@dataclass(frozen=True)
class CaseOutcome:
    """One finished case, as delivered to :attr:`FleetSupervisor.on_result`.

    The serving front door (:mod:`repro.serving`) keys per-request
    response futures on ``seq``; everything else is what the network
    response needs that a :class:`~repro.experiments.runner.CaseResult`
    row does not carry (tenant, shard, stop reason, degradation tier).
    """

    seq: int
    case_id: str
    tenant: str
    predicted: Tuple
    seconds: float
    shard: Optional[int] = None
    error: Optional[str] = None
    #: Search stop reason when the item ran the budget-aware path
    #: (``"deadline"`` marks a partial result), else ``None``.
    stop_reason: Optional[str] = None
    #: Degradation-ladder rung that served the item (``None`` = full).
    tier: Optional[str] = None


@dataclass
class _ShardState:
    """Supervisor-side state of one shard worker."""

    shard_id: int
    #: Warm engine per layout: the engine of the last case this shard ran.
    engines: Dict[LayoutKey, AggregationEngine] = field(default_factory=dict)
    thread: Optional[threading.Thread] = None


class FleetSupervisor:
    """Owns the shards, the scheduler, and the result reassembly.

    One supervisor serves one *drain*: submit cases (all up front or
    incrementally), call :meth:`drain`, collect the
    :class:`~repro.experiments.runner.MethodEvaluation`.  Engines stay
    warm across drains on the same supervisor — that is what
    :meth:`warm_start` exploits after a restart.
    """

    def __init__(
        self,
        method,
        config: Optional[FleetConfig] = None,
        store: Optional[FleetStore] = None,
    ):
        self.method = method
        self.config = config if config is not None else FleetConfig()
        self.store = store
        self.scheduler = WorkStealingScheduler(
            shards_per_layout=self.config.shards_per_layout,
            steal=self.config.steal,
        )
        #: Per-finish hook: called with a :class:`CaseOutcome` (off the
        #: supervisor lock, from whichever thread finished the case) as
        #: each result lands.  The serving layer resolves its response
        #: futures here; ``None`` costs nothing.
        self.on_result: Optional[Callable[[CaseOutcome], None]] = None
        runner = getattr(method, "run", None)
        if callable(runner):
            try:
                self._runner_params = frozenset(inspect.signature(runner).parameters)
            except (TypeError, ValueError):  # pragma: no cover - exotic callables
                self._runner_params = frozenset()
        else:
            self._runner_params = frozenset()
        #: Serving mode: workers persist across idle periods instead of
        #: exiting when the queues drain (see :meth:`start_serving`).
        self._serving = False
        self._lock = threading.Lock()
        self._states: Dict[int, _ShardState] = {}
        self._rows: Dict[int, Tuple] = {}
        self._overflow: Dict[str, deque] = {}
        self._inflight: Dict[str, int] = {}
        self._outstanding = 0
        self._next_seq = 0
        #: Thread-mode drain bookkeeping: shards with a worker this drain,
        #: the worker threads to join, and whether a drain is in flight.
        self._worker_shards: set = set()
        self._worker_threads: List[threading.Thread] = []
        self._thread_drain_active = False
        #: Cases whose second attempt is pending, keyed by seq (crash path).
        self._requeues = 0
        self._crashes = 0

    # -- submission --------------------------------------------------------

    def submit(
        self,
        case: LocalizationCase,
        tenant: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        degrade: bool = False,
        k: Optional[int] = None,
    ) -> int:
        """Enqueue one case; returns its sequence id (= output position).

        ``deadline_ms`` attaches a per-case wall-clock budget, honoured
        by methods with a budget-aware ``run`` (an expired budget yields
        a partial result with ``stop_reason="deadline"``, never an
        error); ``degrade`` additionally applies the default degradation
        ladder while that budget drains.  ``k`` overrides the fleet
        config's top-k policy for this case only (serving requests carry
        their own ``k``).
        """
        tenant = tenant_of(case) if tenant is None else str(tenant)
        item = FleetItem(
            seq=self._take_seq(),
            tenant=tenant,
            case=case,
            layout=layout_key(case.dataset),
            deadline_ms=deadline_ms,
            degrade=degrade,
            k=k,
        )
        if self.store is not None:
            self.store.append_case(item.seq, tenant, case)
        if _trace.ACTIVE:
            obs.inc("fleet_cases_total")
        with self._lock:
            self._outstanding += 1
            if self._inflight.get(tenant, 0) >= self.config.tenant_quota:
                self._overflow.setdefault(tenant, deque()).append(item)
                if _trace.ACTIVE:
                    obs.inc("fleet_quota_deferrals_total")
                return item.seq
            self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        self._dispatch(item)
        return item.seq

    def _take_seq(self) -> int:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def _dispatch(self, item: FleetItem) -> None:
        """Hand an admitted item to the scheduler (or degrade it)."""
        try:
            self.scheduler.submit(item)
        except NoCompatibleShard as exc:
            self._record_error(item, exc)
            return
        # The submit may have created a first-seen layout's shard group
        # (overflow admission mid-drain); a thread-mode drain must grow a
        # worker for it or its queue is never serviced and drain() hangs.
        self._ensure_workers()

    # -- execution ---------------------------------------------------------

    def _state_for(self, shard_id: int) -> _ShardState:
        with self._lock:
            state = self._states.get(shard_id)
            if state is None:
                state = _ShardState(shard_id=shard_id)
                self._states[shard_id] = state
            return state

    def _engine_ready(self, state: _ShardState, case: LocalizationCase) -> None:
        """Install a warm or cold engine for the case's dataset.

        A warm clone is only legal over an identical leaf population
        (same schema *and* codes); otherwise the build falls back cold.
        Either way the shard remembers the dataset's engine as the
        layout's new warm source.
        """
        layout = layout_key(case.dataset)
        cached = state.engines.get(layout)
        if cached is not None and cached.compatible_with(case.dataset):
            engine = cached.warm_clone(case.dataset)
            outcome = "warm"
        else:
            engine = engine_for(case.dataset, backend=self.config.backend)
            outcome = "cold"
        state.engines[layout] = engine
        if _trace.ACTIVE:
            obs.inc("fleet_engine_builds_total", outcome=outcome)

    def _case_k(self, case: LocalizationCase) -> Optional[int]:
        return len(case.true_raps) if self.config.k_from_truth else self.config.k

    def _item_k(self, item: FleetItem) -> Optional[int]:
        return item.k if item.k is not None else self._case_k(item.case)

    def _execute(self, shard_id: int, batch: List[FleetItem]) -> None:
        """Run one acquired micro-batch; a raise here kills the shard."""
        state = self._state_for(shard_id)
        supports_batch = len(batch) > 1 and hasattr(self.method, "run_batch")
        with obs.span("fleet.shard_batch", shard=shard_id, cases=len(batch)):
            if supports_batch:
                start = time.perf_counter()
                results = self.method.run_batch(
                    [item.case.dataset for item in batch], k=None
                )
                per_case = (time.perf_counter() - start) / len(batch)
                for item, result in zip(batch, results):
                    case_k = self._item_k(item)
                    predicted = (
                        result.patterns if case_k is None else result.top(case_k)
                    )
                    self._record(item, shard_id, list(predicted), per_case)
            else:
                for item in batch:
                    self._engine_ready(state, item.case)
                    if item.deadline_ms is not None and "budget" in self._runner_params:
                        self._execute_budgeted(item, shard_id)
                    else:
                        predicted, seconds = time_localization(
                            self.method.localize,
                            item.case.dataset,
                            self._item_k(item),
                        )
                        self._record(item, shard_id, list(predicted), seconds)

    def _execute_budgeted(self, item: FleetItem, shard_id: int) -> None:
        """Run one deadline-carrying item through the method's ``run``.

        The per-item :class:`~repro.resilience.budget.Budget` starts
        counting here — execution time, not queue time, is what the
        budget bounds (admission already shed anything that queued past
        its welcome).  Expiry ends the search at a layer boundary with
        the candidates found so far; the stop reason and ladder rung ride
        back on the result row for the serving response.
        """
        kwargs = {"budget": Budget.from_ms(item.deadline_ms)}
        if item.degrade and "degradation" in self._runner_params:
            kwargs["degradation"] = DegradationPolicy()
        start = time.perf_counter()
        result = self.method.run(
            item.case.dataset, k=self._item_k(item), **kwargs
        )
        seconds = time.perf_counter() - start
        stats = getattr(result, "stats", None)
        self._record(
            item,
            shard_id,
            list(result.patterns),
            seconds,
            stop_reason=getattr(stats, "stop_reason", None),
            tier=getattr(stats, "degradation_tier", None),
        )

    def _run_guarded(self, shard_id: int, batch: List[FleetItem]) -> None:
        """:meth:`_execute` with the crash-requeue-once protocol."""
        try:
            self._execute(shard_id, batch)
        except BaseException as exc:
            # Rows recorded before the raise stand; only the unfinished
            # part of the micro-batch goes through the crash protocol.
            with self._lock:
                unfinished = [i for i in batch if i.seq not in self._rows]
            # The per-case loop runs in order, so the first unfinished
            # item is the one that was executing when the shard died —
            # the only one charged a retry attempt.  The tail never
            # started and keeps its budget: a case must not degrade to
            # an error row because it was queued behind a poison pill.
            # A fused run_batch crash cannot be attributed to one case,
            # so there every batch member is charged.
            if not (len(batch) > 1 and hasattr(self.method, "run_batch")):
                for innocent in unfinished[1:]:
                    innocent.attempts -= 1
            self._crash(shard_id, unfinished, exc)

    def _crash(
        self, shard_id: int, inflight: List[FleetItem], exc: BaseException
    ) -> None:
        """Kill a shard; requeue its work once, then degrade to errors."""
        with self._lock:
            self._crashes += 1
        if _trace.ACTIVE:
            obs.inc("fleet_crashes_total")
        drained = self.scheduler.kill(shard_id)
        for item in inflight + drained:
            if item.attempts >= 2:
                self._record_error(item, exc)
                continue
            with self._lock:
                self._requeues += 1
            if _trace.ACTIVE:
                obs.inc("fleet_requeues_total")
            self._dispatch(item)

    # -- results -----------------------------------------------------------

    def _result_row(
        self,
        item: FleetItem,
        shard_id: Optional[int],
        predicted: List,
        seconds: float,
        error: Optional[str],
        stop_reason: Optional[str] = None,
        tier: Optional[str] = None,
    ) -> Tuple:
        case = item.case
        return (
            item.seq,
            case.case_id,
            predicted,
            tuple(case.true_raps),
            seconds,
            case.metadata.get(self.config.group_key),
            item.tenant,
            shard_id,
            error,
            stop_reason,
            tier,
        )

    def _record(
        self,
        item: FleetItem,
        shard_id: int,
        predicted: List,
        seconds: float,
        stop_reason: Optional[str] = None,
        tier: Optional[str] = None,
    ) -> None:
        self._finish(
            self._result_row(
                item, shard_id, predicted, seconds, None, stop_reason, tier
            )
        )

    def _record_error(self, item: FleetItem, exc: BaseException) -> None:
        if _trace.ACTIVE:
            obs.inc("fleet_errors_total")
        self._finish(
            self._result_row(item, None, [], 0.0, f"{type(exc).__name__}: {exc}")
        )

    def _finish(self, row: Tuple) -> None:
        """Record a finished row, admit overflow, close when drained."""
        seq, tenant = row[0], row[6]
        if self.store is not None:
            self.store.append_result(
                seq,
                tenant,
                {
                    "case_id": row[1],
                    "predicted": [str(p) for p in row[2]],
                    "true_raps": [str(r) for r in row[3]],
                    "seconds": row[4],
                    "group": row[5],
                    "shard": row[7],
                    "error": row[8],
                },
            )
        admit = None
        with self._lock:
            self._rows[seq] = row
            self._outstanding -= 1
            waiting = self._overflow.get(tenant)
            if waiting:
                admit = waiting.popleft()
            else:
                self._inflight[tenant] = max(0, self._inflight.get(tenant, 1) - 1)
            # Serving-mode workers must survive idle periods: closing on
            # a momentarily empty fleet would retire them between requests.
            drained = self._outstanding == 0 and not self._serving
        if admit is not None:
            self._dispatch(admit)
        elif drained:
            self.scheduler.close()
        callback = self.on_result
        if callback is not None:
            callback(
                CaseOutcome(
                    seq=row[0],
                    case_id=row[1],
                    tenant=row[6],
                    predicted=tuple(row[2]),
                    seconds=row[4],
                    shard=row[7],
                    error=row[8],
                    stop_reason=row[9],
                    tier=row[10],
                )
            )

    # -- drive loops -------------------------------------------------------

    def _worker(self, shard_id: int) -> None:
        while True:
            batch = self.scheduler.acquire(
                shard_id, limit=self.config.microbatch, block=True
            )
            if not batch:
                return
            self._run_guarded(shard_id, batch)

    def _ensure_workers(self) -> None:
        """Spawn a worker for every alive shard not yet serviced this drain.

        Called at thread-drain start and again from :meth:`_dispatch`,
        because dispatch can create shard groups mid-drain: a quota
        overflow item whose layout no admitted case shared only reaches
        ``scheduler.submit`` (and hence ``_ensure_layout``) when an
        earlier case completes.  Outside a thread drain this is a no-op.
        """
        with self._lock:
            if not self._thread_drain_active:
                return
            for shard in self.scheduler.shards:
                if not shard.alive or shard.shard_id in self._worker_shards:
                    continue
                self._worker_shards.add(shard.shard_id)
                state = self._states.get(shard.shard_id)
                if state is None:
                    state = _ShardState(shard_id=shard.shard_id)
                    self._states[shard.shard_id] = state
                thread = threading.Thread(
                    target=self._worker,
                    args=(shard.shard_id,),
                    name=f"fleet-shard-{shard.shard_id}",
                    daemon=True,
                )
                state.thread = thread
                # Started before it is visible to the join loop — a fresh
                # worker never needs this lock until it holds a batch, so
                # starting under the lock cannot deadlock.
                thread.start()
                self._worker_threads.append(thread)

    def _drain_threads(self) -> None:
        with self._lock:
            self._thread_drain_active = True
            self._worker_shards = set()
            self._worker_threads = []
        try:
            self._ensure_workers()
            # Workers spawned mid-drain (first-seen layouts) append to the
            # thread list while we join it; loop until no new ones appear.
            joined = 0
            while True:
                with self._lock:
                    threads = list(self._worker_threads)
                if joined == len(threads):
                    return
                for thread in threads[joined:]:
                    thread.join()
                joined = len(threads)
        finally:
            with self._lock:
                self._thread_drain_active = False

    def _drain_inline(self) -> None:
        """Single-step shards in the calling thread, deterministically.

        Each step, the ready shards (those :meth:`WorkStealingScheduler.acquire`
        would serve) are enumerated in id order; ``config.schedule`` (a
        seeded RNG) or round-robin picks one, which acquires and runs one
        micro-batch.  The property suite sweeps seeds here to prove output
        is interleaving-independent.
        """
        rng = self.config.schedule
        cursor = 0
        while True:
            with self._lock:
                if self._outstanding == 0:
                    self.scheduler.close()
                    return
            ready = [
                sid
                for sid in self.scheduler.alive_shards()
                if self.scheduler.has_work(sid)
            ]
            if not ready:
                # outstanding > 0 but nothing queued: every remaining item
                # is un-runnable (dead layout) and was already degraded.
                self.scheduler.close()
                return
            if rng is not None:
                shard_id = rng.choice(ready)
            else:
                shard_id = ready[cursor % len(ready)]
                cursor += 1
            batch = self.scheduler.acquire(shard_id, limit=self.config.microbatch)
            if batch:
                self._run_guarded(shard_id, batch)

    def drain(self) -> MethodEvaluation:
        """Run every submitted case to completion and return the results.

        Output rows are ordered by submission sequence id — the serial
        order — regardless of which shard ran what.
        """
        with obs.span(
            "fleet.drain",
            cases=self._next_seq,
            mode=self.config.mode,
            steal=self.config.steal,
        ):
            self.scheduler.reopen()
            with self._lock:
                pending = self._outstanding > 0
            if pending:
                if self.config.mode == "thread":
                    self._drain_threads()
                else:
                    self._drain_inline()
        evaluation = MethodEvaluation(
            method_name=getattr(self.method, "name", type(self.method).__name__)
        )
        with self._lock:
            rows = [self._rows[seq] for seq in sorted(self._rows)]
        for row in rows:
            evaluation.results.append(
                CaseResult(
                    case_id=row[1],
                    predicted=row[2],
                    true_raps=row[3],
                    seconds=row[4],
                    group=row[5],
                    error=row[8],
                )
            )
        return evaluation

    # -- continuous serving ------------------------------------------------

    @property
    def serving(self) -> bool:
        with self._lock:
            return self._serving

    def start_serving(self) -> None:
        """Switch to continuous mode: workers persist across idle periods.

        In serving mode :meth:`submit` dispatches immediately onto
        long-lived shard workers (spawned lazily as layouts appear) and
        each result is delivered through :attr:`on_result` — there is no
        drain barrier and the scheduler never closes on an empty fleet.
        :meth:`drain` must not be used while serving; the two drive modes
        are exclusive.  Thread mode only.
        """
        if self.config.mode != "thread":
            raise ValueError("start_serving requires FleetConfig(mode='thread')")
        with self._lock:
            if self._serving:
                return
            if self._thread_drain_active:
                raise RuntimeError("cannot start serving during an active drain")
            self._serving = True
            self._thread_drain_active = True
            self._worker_shards = set()
            self._worker_threads = []
        self.scheduler.reopen()
        self._ensure_workers()

    def stop_serving(self, timeout: Optional[float] = None) -> None:
        """Finish queued work, retire the workers, and leave serving mode.

        Closing the scheduler lets every worker run its queue dry (queued
        items are still served after close; only an *empty* blocked wait
        returns) and exit.  Idempotent; safe to call with requests still
        in flight — their results are delivered before the workers stop.
        """
        with self._lock:
            if not self._serving:
                return
            self._serving = False
        self.scheduler.close()
        while True:
            with self._lock:
                threads = list(self._worker_threads)
                remaining = [t for t in threads if t.is_alive()]
            if not remaining:
                break
            for thread in remaining:
                thread.join(timeout=timeout)
                if timeout is not None and thread.is_alive():
                    break
            if timeout is not None:
                break
        with self._lock:
            self._thread_drain_active = False
            self._worker_shards = set()
            self._worker_threads = []

    # -- warm start --------------------------------------------------------

    def warm_start(self, store: FleetStore) -> int:
        """Prime shard engines from a store's last case per tenant.

        Replays each tenant's newest persisted case on its home shard —
        building the engine and running one localization to populate the
        code-derived caches — so the next drain's compatible cases take
        the ``warm`` build path instead of cold aggregation.  Returns the
        number of tenants primed.  Build counters attribute these runs to
        ``outcome="warmstart"``, keeping the serving-path ``cold`` count
        honest.
        """
        primed = 0
        for tenant, (__, case) in sorted(store.last_cases().items()):
            layout = layout_key(case.dataset)
            # Resolve the tenant's home shard without touching the queues:
            # warm_start may run after real cases were submitted, and a
            # queued priming item acquired back would pop a pending case.
            shard_id = self.scheduler.home_shard(layout, tenant)
            if shard_id is None:
                continue
            state = self._state_for(shard_id)
            engine = engine_for(case.dataset, backend=self.config.backend)
            self.method.localize(case.dataset, self._case_k(case))
            state.engines[layout] = engine
            primed += 1
            if _trace.ACTIVE:
                obs.inc("fleet_engine_builds_total", outcome="warmstart")
        if _trace.ACTIVE and primed:
            obs.inc("fleet_warm_starts_total", primed)
        return primed

    # -- accounting --------------------------------------------------------

    @property
    def requeues(self) -> int:
        with self._lock:
            return self._requeues

    @property
    def crashes(self) -> int:
        with self._lock:
            return self._crashes


def fleet_localize(
    method,
    cases: Sequence[LocalizationCase],
    tenants: Optional[Sequence[str]] = None,
    config: Optional[FleetConfig] = None,
    store: Optional[Union[FleetStore, str]] = None,
) -> MethodEvaluation:
    """One-shot fleet run over *cases* (the CLI and test entry point).

    ``tenants`` parallels ``cases``; omitted, each case's
    ``metadata["tenant"]`` (default ``"default"``) is used.  ``store``
    may be a :class:`FleetStore` or a path; a path-opened store is
    closed (index flushed) before returning.
    """
    if tenants is not None and len(tenants) != len(cases):
        raise ValueError(
            f"tenants ({len(tenants)}) must parallel cases ({len(cases)})"
        )
    owned = isinstance(store, (str,)) or hasattr(store, "__fspath__")
    opened = FleetStore(store) if owned else store
    supervisor = FleetSupervisor(method, config=config, store=opened)
    try:
        for i, case in enumerate(cases):
            supervisor.submit(case, tenant=None if tenants is None else tenants[i])
        return supervisor.drain()
    finally:
        if owned and opened is not None:
            opened.close()


def replay_store(
    method,
    store: Union[FleetStore, str],
    config: Optional[FleetConfig] = None,
) -> MethodEvaluation:
    """Re-run every case persisted in *store*, in original seq order.

    The audit contract: with the same method and configuration, the
    returned evaluation's predictions match the persisted result rows
    string-for-string (and a serial rerun bit-exactly).
    """
    owned = not isinstance(store, FleetStore)
    opened = store if isinstance(store, FleetStore) else FleetStore(store, mode="r")
    try:
        entries = opened.cases()
    finally:
        if owned:
            opened.close()
    return fleet_localize(
        method,
        [case for __, __, case in entries],
        tenants=[tenant for __, tenant, __ in entries],
        config=config,
    )
