"""Append-only on-disk case/result store: a length-prefixed segment log.

The fleet persists its traffic so an operator can **replay** a day of
incidents bit-exactly, **audit** any single one, and **warm-start** the
engines after a restart instead of re-aggregating from cold.  The
format extends the repo's npz case bundle: each *case* record embeds the
exact :func:`~repro.data.io.cases_to_npz_bytes` stream of one case (same
bit-exact array round trip as ``.npz`` bundles), while *result* records
are JSON envelopes carrying the ranked pattern strings.

On-disk layout::

    header   MAGIC (8 bytes) + u32 version
    record   u32 envelope_len | u64 blob_len | u32 crc32(envelope+blob)
             envelope (JSON, utf-8) | blob (npz bytes for cases, empty
             for results)

A sidecar index (``<log>.idx``, JSON) caches ``(kind, seq, tenant,
offset)`` per record plus the log size it describes; it is rewritten on
:meth:`FleetStore.close` and ignored (rebuilt by a full scan) whenever
its recorded size disagrees with the log — so deleting it is always
safe.  A torn tail — the bytes of an append that never completed because
the writer died mid-record — is detected by length/CRC, reported with a
:class:`RuntimeWarning`, and truncated away when the store is opened
writable (an append-only log recovers by dropping the partial record,
exactly like the JSONL reader's truncated-final-line tolerance).

Everything is lock-protected: fleet shard workers append results from
their own threads.
"""

from __future__ import annotations

import json
import struct
import threading
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .. import obs
from ..data.injection import LocalizationCase
from ..data.io import cases_from_npz_bytes, cases_to_npz_bytes
from ..obs import trace as _trace

__all__ = ["FleetStore", "StoreRecord", "MAGIC", "STORE_VERSION"]

#: Segment-log file magic.
MAGIC = b"RAPFLEET"

#: On-disk format version; bump on layout changes.
STORE_VERSION = 1

#: Fixed-size record prefix: envelope length, blob length, CRC32.
_PREFIX = struct.Struct("<IQI")

_HEADER = struct.Struct("<8sI")

PathLike = Union[str, Path]


@dataclass
class StoreRecord:
    """One decoded segment-log record."""

    kind: str
    seq: int
    tenant: str
    #: Envelope fields beyond the routing triple (result rows, case ids).
    envelope: Dict
    #: Raw blob bytes (npz stream for ``kind == "case"``, else empty).
    blob: bytes
    #: Byte offset of the record in the log (auditing handle).
    offset: int

    def case(self) -> LocalizationCase:
        """Decode a ``case`` record's blob (bit-exact round trip)."""
        if self.kind != "case":
            raise ValueError(f"record at offset {self.offset} is a {self.kind!r}")
        return cases_from_npz_bytes(self.blob)[0]


class FleetStore:
    """Append-only segment log of fleet cases and results.

    Open writable (``mode="a"``, the default) to persist a run, or
    read-only (``mode="r"``) to audit/replay one.  The store is a
    context manager; closing flushes the sidecar index.
    """

    def __init__(self, path: PathLike, mode: str = "a"):
        if mode not in ("a", "r"):
            raise ValueError(f"mode must be 'a' or 'r', got {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self._lock = threading.Lock()
        self._index: List[Tuple[str, int, str, int]] = []
        self._handle = None
        if self.path.exists():
            self._open_existing()
        elif mode == "r":
            raise FileNotFoundError(self.path)
        else:
            self._create()

    # -- construction ------------------------------------------------------

    def _create(self) -> None:
        self._handle = self.path.open("w+b")
        self._handle.write(_HEADER.pack(MAGIC, STORE_VERSION))
        self._handle.flush()

    def _open_existing(self) -> None:
        self._handle = self.path.open("r+b" if self.mode == "a" else "rb")
        header = self._handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ValueError(f"{self.path} is not a fleet segment log (short header)")
        magic, version = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ValueError(f"{self.path} is not a fleet segment log")
        if version != STORE_VERSION:
            raise ValueError(
                f"{self.path} is store version {version}, "
                f"this build reads {STORE_VERSION}"
            )
        if not self._load_index():
            self._scan()

    @property
    def _index_path(self) -> Path:
        return self.path.with_name(self.path.name + ".idx")

    def _load_index(self) -> bool:
        """Adopt the sidecar index if it matches the log byte-for-byte."""
        try:
            payload = json.loads(self._index_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return False
        if payload.get("format") != "repro.fleet.idx.v1":
            return False
        if payload.get("log_bytes") != self.path.stat().st_size:
            return False  # stale: the log grew (or was torn) since the flush
        self._index = [
            (str(kind), int(seq), str(tenant), int(offset))
            for kind, seq, tenant, offset in payload.get("records", [])
        ]
        self._handle.seek(0, 2)
        return True

    def _scan(self) -> None:
        """Rebuild the index by walking the log; recover a torn tail."""
        self._index = []
        handle = self._handle
        handle.seek(_HEADER.size)
        good_end = _HEADER.size
        torn = False
        while True:
            offset = handle.tell()
            prefix = handle.read(_PREFIX.size)
            if not prefix:
                break
            if len(prefix) < _PREFIX.size:
                torn = True
                break
            env_len, blob_len, crc = _PREFIX.unpack(prefix)
            body = handle.read(env_len + blob_len)
            if len(body) < env_len + blob_len:
                torn = True
                break
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                torn = True
                break
            try:
                envelope = json.loads(body[:env_len].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                torn = True
                break
            self._index.append(
                (
                    str(envelope.get("kind", "")),
                    int(envelope.get("seq", -1)),
                    str(envelope.get("tenant", "")),
                    offset,
                )
            )
            good_end = handle.tell()
        if torn:
            warnings.warn(
                f"{self.path}: dropped a torn trailing record "
                f"(log recovered at byte {good_end})",
                RuntimeWarning,
                stacklevel=3,
            )
            obs.inc("fleet_store_recovered_total")
            if self.mode == "a":
                handle.truncate(good_end)
        handle.seek(0, 2)

    # -- appends -----------------------------------------------------------

    def _append(self, envelope: Dict, blob: bytes = b"") -> int:
        if self.mode != "a":
            raise ValueError(f"{self.path} is open read-only")
        env_bytes = json.dumps(envelope, sort_keys=True).encode("utf-8")
        crc = zlib.crc32(env_bytes + blob) & 0xFFFFFFFF
        with self._lock:
            self._handle.seek(0, 2)
            offset = self._handle.tell()
            self._handle.write(_PREFIX.pack(len(env_bytes), len(blob), crc))
            self._handle.write(env_bytes)
            if blob:
                self._handle.write(blob)
            self._handle.flush()
            self._index.append(
                (envelope["kind"], envelope["seq"], envelope["tenant"], offset)
            )
        if _trace.ACTIVE:
            obs.inc("fleet_store_records_total", kind=envelope["kind"])
            obs.inc(
                "fleet_store_bytes_total",
                _PREFIX.size + len(env_bytes) + len(blob),
            )
        return offset

    def append_case(self, seq: int, tenant: str, case: LocalizationCase) -> int:
        """Persist one submitted case; returns its log offset."""
        envelope = {
            "kind": "case",
            "seq": int(seq),
            "tenant": str(tenant),
            "case_id": case.case_id,
        }
        return self._append(envelope, cases_to_npz_bytes([case]))

    def append_result(self, seq: int, tenant: str, row: Dict) -> int:
        """Persist one completed result row; returns its log offset.

        ``row`` must be JSON-ready (pattern *strings*, not combinations)
        — the supervisor builds it via its result serialization, so a
        replay can compare ranked output string-for-string.
        """
        envelope = {
            "kind": "result",
            "seq": int(seq),
            "tenant": str(tenant),
            "row": row,
        }
        return self._append(envelope)

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def records(self, kind: Optional[str] = None) -> Iterator[StoreRecord]:
        """Decoded records in append order, optionally filtered by kind."""
        with self._lock:
            entries = list(self._index)
        for entry_kind, seq, tenant, offset in entries:
            if kind is not None and entry_kind != kind:
                continue
            with self._lock:
                self._handle.seek(offset)
                prefix = self._handle.read(_PREFIX.size)
                env_len, blob_len, __ = _PREFIX.unpack(prefix)
                body = self._handle.read(env_len + blob_len)
                self._handle.seek(0, 2)
            envelope = json.loads(body[:env_len].decode("utf-8"))
            yield StoreRecord(
                kind=entry_kind,
                seq=seq,
                tenant=tenant,
                envelope=envelope,
                blob=body[env_len:],
                offset=offset,
            )

    def cases(self) -> List[Tuple[int, str, LocalizationCase]]:
        """Every persisted case as ``(seq, tenant, case)``, in seq order."""
        decoded = [
            (record.seq, record.tenant, record.case())
            for record in self.records(kind="case")
        ]
        decoded.sort(key=lambda entry: entry[0])
        return decoded

    def results(self) -> List[Dict]:
        """Every persisted result row (with seq/tenant), in seq order."""
        rows = [
            dict(record.envelope["row"], seq=record.seq, tenant=record.tenant)
            for record in self.records(kind="result")
        ]
        rows.sort(key=lambda row: row["seq"])
        return rows

    def last_cases(self) -> Dict[str, Tuple[int, LocalizationCase]]:
        """The newest case per tenant for warm starts.

        Keyed by tenant; the value is ``(seq, case)`` for the highest-seq
        case that tenant submitted.
        """
        latest: Dict[str, Tuple[int, int]] = {}
        with self._lock:
            entries = list(self._index)
        for position, (kind, seq, tenant, __) in enumerate(entries):
            if kind != "case":
                continue
            known = latest.get(tenant)
            if known is None or seq > known[0]:
                latest[tenant] = (seq, position)
        out: Dict[str, Tuple[int, LocalizationCase]] = {}
        for record in self.records(kind="case"):
            entry = latest.get(record.tenant)
            if entry is not None and record.seq == entry[0]:
                out[record.tenant] = (record.seq, record.case())
        return out

    # -- lifecycle ---------------------------------------------------------

    def flush_index(self) -> None:
        """Write the sidecar index describing the log's current bytes."""
        if self.mode != "a":
            return
        with self._lock:
            self._handle.flush()
            payload = {
                "format": "repro.fleet.idx.v1",
                "log_bytes": self.path.stat().st_size,
                "records": [list(entry) for entry in self._index],
            }
        self._index_path.write_text(json.dumps(payload))

    def close(self) -> None:
        if self._handle is None:
            return
        self.flush_index()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "FleetStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
