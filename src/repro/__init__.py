"""RAPMiner reproduction: anomaly localization for multi-dimensional KPIs.

Reproduces "RAPMiner: A Generic Anomaly Localization Mechanism for CDN
System with Multi-dimensional KPIs" (DSN 2022): the two-stage RAPMiner
pipeline, the datasets it is evaluated on (a synthetic stand-in for the
ISP CDN trace behind RAPMD, and a Squeeze-style grouped dataset), four
baseline localizers built from scratch, and the metrics/experiment harness
that regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import RAPMiner, RAPMinerConfig, cdn_schema
>>> from repro.data import CDNSimulator, inject_failures, sample_raps
>>> sim = CDNSimulator(cdn_schema(8, 3, 3, 6))
>>> background = sim.snapshot(step=600).to_dataset()
>>> rng = np.random.default_rng(7)
>>> raps = sample_raps(background, 1, rng)
>>> labelled, _ = inject_failures(background, raps, rng)
>>> RAPMiner().localize(labelled, k=1) == raps
True
"""

from .core import (
    AttributeCombination,
    AttributeSchema,
    Cuboid,
    LocalizationResult,
    RAPCandidate,
    RAPMiner,
    RAPMinerConfig,
)
from .data import FineGrainedDataset, LocalizationCase
from .data.schema import cdn_schema

__version__ = "1.0.0"

__all__ = [
    "AttributeCombination",
    "AttributeSchema",
    "Cuboid",
    "LocalizationResult",
    "RAPCandidate",
    "RAPMiner",
    "RAPMinerConfig",
    "FineGrainedDataset",
    "LocalizationCase",
    "cdn_schema",
    "__version__",
]
