"""Process-parallel batch execution of localization workloads.

The paper's operating regime is throughput — one snapshot per KPI per
minute across a CDN fleet — and this package turns the repository's
single-search speed (the shared :class:`~repro.core.engine.AggregationEngine`)
into batch speed: :func:`~repro.parallel.batch.batch_localize` shards case
collections across a process pool, ships leaf tables zero-copy through
:class:`~repro.parallel.shm.SharedCaseStore`, keeps one warm engine per
(worker, schema), and folds worker-side counters back into the parent's
:mod:`repro.obs` registry.  ``n_workers=1`` is the exact serial path, and
batch candidates are bit-identical to serial output in every mode.
"""

from .batch import BatchConfig, batch_localize, shard_indices
from .shm import SharedCaseStore

__all__ = ["BatchConfig", "batch_localize", "shard_indices", "SharedCaseStore"]
