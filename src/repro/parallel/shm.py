"""Zero-copy transport of case collections via POSIX shared memory.

The batch execution layer (:mod:`repro.parallel.batch`) must hand each
worker process the leaf tables of its shard.  Pickling a
:class:`~repro.data.injection.LocalizationCase` serializes every array
into the task payload — for the paper's 10 560-leaf snapshots that is
~340 KB per case per dispatch, copied twice (parent serialize, worker
deserialize).  :class:`SharedCaseStore` instead packs the four columnar
arrays (``codes``, ``v``, ``f``, ``labels``) of *all* cases into one
:class:`multiprocessing.shared_memory.SharedMemory` block; workers attach
by name and build numpy views directly over the block, so the only
per-task payload is the shard's index list plus a small JSON-like spec.

Layout: arrays are appended back to back, each offset rounded up to
:data:`ALIGNMENT` bytes so ``int64``/``float64`` views are always aligned.
The picklable :attr:`SharedCaseStore.spec` records, per case, the
non-array fields (case id, schema, RAP strings, metadata) and per array
the ``(offset, shape, dtype)`` triple needed to rebuild the view.

Lifecycle: the parent calls :meth:`SharedCaseStore.pack` and eventually
:meth:`SharedCaseStore.destroy` (close + unlink); workers call
:meth:`SharedCaseStore.attach` and :meth:`SharedCaseStore.close`.  Worker
attachments deregister themselves from the interpreter's
``resource_tracker`` so a worker exiting does not tear the block down
under the parent (CPython's tracker otherwise treats every attachment as
an ownership claim).
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..core.attribute import AttributeCombination
from ..data.dataset import FineGrainedDataset
from ..data.injection import LocalizationCase
from ..data.io import schema_from_dict, schema_to_dict

__all__ = ["SharedCaseStore", "ALIGNMENT"]

#: Byte alignment of every array inside the block (covers int64/float64).
ALIGNMENT = 8

#: The leaf-table fields shipped through the block, in layout order.
_ARRAY_FIELDS = ("codes", "v", "f", "labels")


def _aligned(offset: int) -> int:
    """Round *offset* up to the next :data:`ALIGNMENT` boundary."""
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _reap_orphan(shm: shared_memory.SharedMemory) -> None:
    """Last-resort unlink of a block whose owner never called ``destroy``.

    Runs from the owner's :func:`weakref.finalize` guard — at garbage
    collection of an abandoned store, or at interpreter exit (finalizers
    double as atexit hooks) when e.g. a worker crashed between fork and
    attach and the parent bailed without its ``finally``.  Without it the
    segment outlives the process in ``/dev/shm``.
    """
    try:
        obs.inc("parallel_shm_orphans_total")
    except Exception:  # pragma: no cover - interpreter teardown
        pass
    try:
        shm.close()
    except BufferError:  # leaked views still export the buffer
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - lost the unlink race
        pass


class SharedCaseStore:
    """One shared-memory block holding the leaf tables of many cases.

    Construct via :meth:`pack` (parent side) or :meth:`attach` (worker
    side); both sides expose :meth:`case` / :meth:`cases` returning
    :class:`LocalizationCase` objects whose arrays are read-only views
    over the block — no copies on either side.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: Dict, owner: bool):
        self._shm = shm
        self.spec = spec
        self._owner = owner
        # The owner arms an orphan guard: if destroy() never runs (crash
        # between fork and attach, abandoned store), the finalizer unlinks
        # the segment and counts it as parallel_shm_orphans_total.
        self._orphan_guard = (
            weakref.finalize(self, _reap_orphan, shm) if owner else None
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def pack(cls, cases: Sequence[LocalizationCase]) -> "SharedCaseStore":
        """Copy every case's leaf table into a fresh shared block (parent)."""
        entries: List[Dict] = []
        offset = 0
        staged = []
        for case in cases:
            dataset = case.dataset
            arrays: Dict[str, Dict] = {}
            for field in _ARRAY_FIELDS:
                array = np.ascontiguousarray(getattr(dataset, field))
                offset = _aligned(offset)
                arrays[field] = {
                    "offset": offset,
                    "shape": list(array.shape),
                    "dtype": array.dtype.str,
                }
                staged.append((offset, array))
                offset += array.nbytes
            entries.append(
                {
                    "case_id": case.case_id,
                    "schema": schema_to_dict(dataset.schema),
                    "true_raps": [str(rap) for rap in case.true_raps],
                    "metadata": dict(case.metadata),
                    "arrays": arrays,
                }
            )
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for start, array in staged:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=start)
            view[...] = array
        spec = {"shm_name": shm.name, "cases": entries}
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: Dict) -> "SharedCaseStore":
        """Open the block named by *spec* without taking ownership (worker).

        CPython registers the attachment with the resource tracker as if
        this process owned the block (bpo-38119), but the tracker is one
        process shared by the whole pool, its cache is a set, and the
        parent registered the same name at creation — so the extra
        registration is a no-op and the owner's :meth:`destroy` clears it.
        Unregistering here would instead clobber the parent's entry.
        """
        return cls(shared_memory.SharedMemory(name=spec["shm_name"]), spec, owner=False)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spec["cases"])

    def case(self, index: int) -> LocalizationCase:
        """Rebuild case *index* with zero-copy read-only array views."""
        entry = self.spec["cases"][index]
        views = {}
        for field in _ARRAY_FIELDS:
            meta = entry["arrays"][field]
            view = np.ndarray(
                tuple(meta["shape"]),
                dtype=np.dtype(meta["dtype"]),
                buffer=self._shm.buf,
                offset=meta["offset"],
            )
            view.flags.writeable = False
            views[field] = view
        schema = schema_from_dict(entry["schema"])
        dataset = FineGrainedDataset(
            schema, views["codes"], views["v"], views["f"], views["labels"]
        )
        raps = tuple(AttributeCombination.parse(text) for text in entry["true_raps"])
        return LocalizationCase(
            case_id=entry["case_id"],
            dataset=dataset,
            true_raps=raps,
            metadata=dict(entry["metadata"]),
        )

    def cases(self, indices: Optional[Sequence[int]] = None) -> List[LocalizationCase]:
        """The cases at *indices* (all of them when omitted), in order."""
        if indices is None:
            indices = range(len(self))
        return [self.case(i) for i in indices]

    @property
    def nbytes(self) -> int:
        """Size of the underlying block in bytes."""
        return self._shm.size

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (the block itself survives)."""
        self._shm.close()

    def destroy(self) -> None:
        """Close and unlink the block; owner side only, idempotent."""
        self.close()
        if self._owner:
            if self._orphan_guard is not None:
                self._orphan_guard.detach()  # clean teardown: not an orphan
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._owner = False

    def __enter__(self) -> "SharedCaseStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.destroy() if self._owner else self.close()
