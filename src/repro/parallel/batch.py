"""Process-pool batch execution of localization case collections.

This is the throughput layer the paper's operating regime needs: one
ISP-CDN deployment emits a full multi-dimensional snapshot every 60 s for
many KPIs (PAPER.md §V), so production localization is *many independent
searches*, not one.  :func:`batch_localize` shards a case collection
across a process pool and reproduces :func:`repro.experiments.runner.run_cases`
semantics exactly:

* **Deterministic ordering** — results are reassembled by original case
  index, so the returned :class:`MethodEvaluation` lists results in input
  order regardless of shard completion order.
* **Per-case timing inside the worker** — each case is timed with
  :func:`~repro.metrics.timing.time_localization` in the worker process,
  so ``seconds`` measures the localization itself, never pool dispatch or
  result pickling.
* **Bit-identical candidates** — workers either build engines cold
  (exactly the serial path) or reuse a warm per-(worker, schema) engine
  clone; the engine's warm-refresh path reproduces the cold leaf-level
  summation order (see ``core/engine.py``), so ranked output matches the
  serial run bit for bit in every mode.
* **Truthful telemetry** — each worker runs under its own
  :class:`~repro.obs.trace.Collector`; registry snapshots travel back
  with the shard results and fold into the parent's active collector via
  :meth:`~repro.obs.metrics.MetricRegistry.merge`.  Counter totals of a
  sharded run therefore equal the serial run's (spans are per-process and
  are *not* merged — see ``docs/operational.md``).
* **Fault tolerance** — a shard whose worker raises or dies is requeued
  once on a fresh executor; a second failure degrades that shard's cases
  to per-case error records (empty predictions,
  :attr:`~repro.experiments.runner.CaseResult.error` set) so the batch
  always completes (see ``docs/resilience.md``).

Transports: ``"shm"`` packs every leaf table into one
:class:`~repro.parallel.shm.SharedCaseStore` block and ships only index
lists per task; ``"pickle"`` ships the cases inside the task payload
(simpler, but serializes every array twice per dispatch).

Modes: ``"sharded"`` runs the per-case loop in each worker;
``"vectorized"`` skips the pool and feeds every case through the
method's case-stacked batch kernel (one fused aggregation pass per
cuboid for a whole layout group — see ``core/stacked.py``); ``"auto"``
picks vectorized on few-CPU hosts and sharded-with-vectorized-workers
otherwise.  All modes return bit-identical candidates.

``n_workers=1`` bypasses the pool entirely and runs the exact serial
loop, so callers can thread a worker count through unconditionally.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.engine import AggregationEngine, engine_for, install_engine
from ..data.injection import LocalizationCase
from ..metrics.timing import time_localization
from ..native import get_default_backend, set_default_backend
from ..obs import trace as _trace
from .shm import SharedCaseStore

__all__ = ["BatchConfig", "batch_localize", "shard_indices"]

#: Transports understood by :class:`BatchConfig`.
TRANSPORTS = ("shm", "pickle")

#: Execution modes understood by :class:`BatchConfig`.
MODES = ("sharded", "vectorized", "auto")


@dataclass
class BatchConfig:
    """Knobs of one batch execution.

    Parameters
    ----------
    n_workers:
        Pool size.  ``1`` means the exact serial path (no pool, no
        transport, no snapshot merging — just ``run_cases``).
    transport:
        ``"shm"`` (zero-copy shared-memory leaf tables, the default) or
        ``"pickle"`` (cases serialized into each task payload).
    chunk_size:
        Cases per shard.  Defaults to an even contiguous split into
        ``n_workers`` shards; smaller chunks trade warm-engine reuse for
        load balancing.
    warm_engines:
        Keep one warm :class:`AggregationEngine` per (worker, schema) and
        :meth:`~AggregationEngine.warm_clone` it onto each compatible
        dataset.  Candidates stay bit-identical either way; disable to
        reproduce the serial cost profile exactly.
    mp_context:
        Multiprocessing start method (``"fork"`` where available,
        otherwise the platform default).
    collect_metrics:
        Capture worker-side counters and merge them into the parent's
        active collector.  ``None`` (default) collects exactly when the
        parent has a collector installed at call time.
    mode:
        How cases are batched.  ``"sharded"`` (default) runs the classic
        per-case loop in each pool worker.  ``"vectorized"`` skips the
        pool and runs the method's case-stacked batch kernel
        (:meth:`~repro.core.miner.RAPMiner.run_batch`) in-process —
        every case of a layout group is aggregated in one fused pass.
        ``"auto"`` picks for the host: the in-process vectorized kernel
        when ``n_workers <= 1`` or the machine has fewer than four CPUs
        (process sharding loses to fork/IPC overhead there), otherwise
        the pool with each worker running the vectorized kernel on its
        shard.  Candidates are bit-identical in every mode.
    """

    n_workers: int = 1
    transport: str = "shm"
    chunk_size: Optional[int] = None
    warm_engines: bool = True
    mp_context: Optional[str] = None
    collect_metrics: Optional[bool] = None
    mode: str = "sharded"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")

    def resolve_mode(self) -> Tuple[str, bool]:
        """``(execution, worker_vectorized)`` after the ``"auto"`` heuristic.

        ``execution`` is ``"vectorized"`` (in-process stacked kernel) or
        ``"sharded"`` (process pool); ``worker_vectorized`` asks each pool
        worker to run the stacked kernel over its shard instead of the
        per-case loop.
        """
        if self.mode == "sharded":
            return "sharded", False
        if self.mode == "vectorized":
            return "vectorized", False
        if self.n_workers <= 1 or (os.cpu_count() or 1) < 4:
            return "vectorized", False
        return "sharded", True


def shard_indices(
    n_cases: int, n_workers: int, chunk_size: Optional[int] = None
) -> List[List[int]]:
    """Contiguous index shards for *n_cases* over *n_workers*.

    Without *chunk_size* the cases split into at most ``n_workers``
    near-equal contiguous runs (sizes differ by at most one); with it,
    fixed-size chunks, letting the pool balance more finely.  Contiguity
    matters: consecutive cases of one KPI share a leaf population, so a
    contiguous shard maximizes warm-engine reuse inside a worker.
    """
    if n_cases <= 0:
        return []
    if chunk_size is None:
        n_shards = min(n_workers, n_cases)
        base, extra = divmod(n_cases, n_shards)
        shards = []
        start = 0
        for shard in range(n_shards):
            size = base + (1 if shard < extra else 0)
            shards.append(list(range(start, start + size)))
            start += size
        return shards
    return [
        list(range(start, min(start + chunk_size, n_cases)))
        for start in range(0, n_cases, chunk_size)
    ]


# -- worker side -----------------------------------------------------------

#: Worker-resident shared-memory attachments, keyed by block name.  The
#: mapping lives until the worker process exits: warm engines keep views
#: into the block alive, so per-shard ``close()`` would raise.
_WORKER_STORES: Dict[str, SharedCaseStore] = {}

#: Worker-resident warm engines, keyed by schema identity.
_WORKER_ENGINES: Dict[Tuple, AggregationEngine] = {}


def _schema_key(schema) -> Tuple:
    return (schema.names, schema.sizes)


def _adopt_engine(dataset) -> AggregationEngine:
    """A (possibly warm) shared engine for *dataset*, worker-resident.

    Consecutive snapshots of one KPI share a leaf population, so the
    previous engine's code-derived caches (linear keys, posting lists,
    cuboid occupancy) carry over via :meth:`AggregationEngine.warm_clone`;
    a population change falls back to a cold engine, exactly like serial.
    """
    key = _schema_key(dataset.schema)
    previous = _WORKER_ENGINES.get(key)
    if previous is not None and previous.compatible_with(dataset):
        engine = install_engine(previous.warm_clone(dataset))
        outcome = "warm_clone"
    else:
        engine = engine_for(dataset)
        outcome = "incompatible" if previous is not None else "cold"
    _WORKER_ENGINES[key] = engine
    if _trace.ACTIVE:
        obs.inc("parallel_warm_engines_total", outcome=outcome)
    return engine


def _run_shard(payload: Dict) -> Tuple[List[Tuple], Optional[List[Dict]]]:
    """Execute one shard; returns (per-case result rows, metric snapshot).

    Runs in the worker process.  Under the ``fork`` start method the
    child inherits the parent's installed collector, whose buffers the
    parent never sees again — so the first act is to detach it and, when
    collecting, install a fresh one whose registry snapshot rides home
    with the results.
    """
    _trace.uninstall(None)
    collector = _trace.Collector() if payload["collect"] else None
    if collector is not None:
        _trace.install(collector)
    # Pin the parent's kernel backend: a spawn-started worker re-reads the
    # environment only, so an explicitly selected backend would be lost
    # (and shard results would mix backends in telemetry).  The compiled
    # library comes from the shared on-disk cache, so this never re-compiles.
    if payload.get("backend"):
        set_default_backend(payload["backend"])
    try:
        if payload["transport"] == "shm":
            spec = payload["spec"]
            store = _WORKER_STORES.get(spec["shm_name"])
            if store is None:
                store = SharedCaseStore.attach(spec)
                _WORKER_STORES[spec["shm_name"]] = store
            cases = store.cases(payload["indices"])
        else:
            cases = payload["cases"]
        if _trace.ACTIVE:
            obs.inc("parallel_shards_total")
            obs.inc(
                "parallel_cases_total", len(cases), transport=payload["transport"]
            )
        if payload.get("vectorized"):
            rows = _vectorized_rows(
                payload["method"],
                cases,
                payload["indices"],
                payload["k"],
                payload["k_from_truth"],
                payload["group_key"],
            )
        else:
            rows = []
            for index, case in zip(payload["indices"], cases):
                if payload["warm_engines"]:
                    _adopt_engine(case.dataset)
                case_k = (
                    len(case.true_raps) if payload["k_from_truth"] else payload["k"]
                )
                predicted, seconds = time_localization(
                    payload["method"].localize, case.dataset, case_k
                )
                rows.append(
                    (
                        index,
                        case.case_id,
                        list(predicted),
                        tuple(case.true_raps),
                        seconds,
                        case.metadata.get(payload["group_key"]),
                    )
                )
        snapshot = collector.metrics.snapshot() if collector is not None else None
        return rows, snapshot
    finally:
        if collector is not None:
            _trace.uninstall(None)


def _vectorized_rows(
    method,
    cases: Sequence[LocalizationCase],
    indices: Sequence[int],
    k: Optional[int],
    k_from_truth: bool,
    group_key: str,
) -> List[Tuple]:
    """Result rows for *cases* through the method's case-stacked kernel.

    One ``run_batch`` call localizes the whole list; per-case truncation
    (``k`` / ``k_from_truth``) happens afterwards on the full ranking,
    which equals truncating inside the run because the ranking is a total
    order.  The fused pass has no per-case boundary to clock, so
    ``seconds`` is the batch wall time amortized evenly over the cases
    (see ``docs/operational.md`` before comparing latency distributions
    across modes).
    """
    start = time.perf_counter()
    results = method.run_batch([case.dataset for case in cases], k=None)
    per_case = (time.perf_counter() - start) / max(len(cases), 1)
    rows = []
    for index, case, result in zip(indices, cases, results):
        case_k = len(case.true_raps) if k_from_truth else k
        predicted = result.patterns if case_k is None else result.top(case_k)
        rows.append(
            (
                index,
                case.case_id,
                list(predicted),
                tuple(case.true_raps),
                per_case,
                case.metadata.get(group_key),
            )
        )
    return rows


# -- parent side -----------------------------------------------------------


def _shard_error_rows(
    cases: Sequence[LocalizationCase],
    indices: Sequence[int],
    group_key: str,
    error: BaseException,
) -> List[Tuple]:
    """Per-case error rows for a shard that failed both attempts.

    The batch completes instead of raising: each case of the dead shard
    becomes a well-formed result row with empty predictions and the error
    message in the seventh slot, so downstream aggregation keeps working
    and the caller can inspect ``MethodEvaluation.failures()``.
    """
    message = f"{type(error).__name__}: {error}"
    obs.inc("resilience_case_errors_total", len(indices))
    rows = []
    for index in indices:
        case = cases[index]
        rows.append(
            (
                index,
                case.case_id,
                [],
                tuple(case.true_raps),
                0.0,
                case.metadata.get(group_key),
                message,
            )
        )
    return rows


def _execute_shards(
    payloads: List[Dict],
    config: BatchConfig,
    context,
    cases: Sequence[LocalizationCase],
    group_key: str,
) -> List[Tuple[List[Tuple], Optional[List[Dict]]]]:
    """Run shard payloads across a process pool, surviving worker faults.

    Each shard gets up to two attempts.  A failed shard — whether its
    worker raised (the exception travels back through the future) or died
    outright (``BrokenProcessPool`` poisons every in-flight future) — is
    requeued once onto **one** lazily-created requeue executor shared by
    the whole batch: the primary pool may be broken and is never reused,
    but building a fresh pool per crashed shard would pay worker spawn
    latency per fault.  Retries are submitted the moment the fault is
    seen, so they overlap the still-running primary shards instead of
    waiting for a synchronized retry round.  A shard that fails twice
    degrades to per-case error rows via :func:`_shard_error_rows` instead
    of raising, so one poisoned case can never take down the other
    ``n - 1`` shards' results.  Requeues are counted under
    ``resilience_shard_requeues_total`` and their fault-to-finish latency
    lands in the ``resilience_requeue_seconds`` histogram.
    """
    outcomes: List[Optional[Tuple]] = [None] * len(payloads)
    attempts = [0] * len(payloads)
    requeue_pool: Optional[ProcessPoolExecutor] = None
    primary = ProcessPoolExecutor(
        max_workers=min(config.n_workers, len(payloads)), mp_context=context
    )
    #: future -> (shard index, retry start time or None for first attempts)
    active: Dict = {
        primary.submit(_run_shard, payloads[i]): (i, None)
        for i in range(len(payloads))
    }
    try:
        while active:
            done, __ = wait(list(active), return_when=FIRST_COMPLETED)
            for future in done:
                i, retry_started = active.pop(future)
                try:
                    outcomes[i] = future.result()
                except Exception as exc:  # noqa: BLE001 - worker fault boundary
                    attempts[i] += 1
                    if attempts[i] < 2:
                        obs.inc("resilience_shard_requeues_total")
                        if requeue_pool is None:
                            # Retries trickle in one fault at a time, so a
                            # small pool suffices; sizing it like the primary
                            # would double the process count while the
                            # surviving primary shards are still running.
                            requeue_pool = ProcessPoolExecutor(
                                max_workers=min(2, config.n_workers),
                                mp_context=context,
                            )
                        retry = requeue_pool.submit(_run_shard, payloads[i])
                        active[retry] = (i, time.perf_counter())
                    else:
                        outcomes[i] = (
                            _shard_error_rows(
                                cases, payloads[i]["indices"], group_key, exc
                            ),
                            None,
                        )
                if retry_started is not None:
                    obs.observe(
                        "resilience_requeue_seconds",
                        time.perf_counter() - retry_started,
                    )
    finally:
        primary.shutdown(wait=True)
        if requeue_pool is not None:
            requeue_pool.shutdown(wait=True)
    return [outcome for outcome in outcomes if outcome is not None]


def batch_localize(
    method,
    cases: Sequence[LocalizationCase],
    k: Optional[int] = None,
    k_from_truth: bool = False,
    group_key: str = "group",
    config: Optional[BatchConfig] = None,
):
    """Evaluate *method* over *cases* through a process pool.

    Drop-in equivalent of :func:`repro.experiments.runner.run_cases` — same
    parameters, same :class:`MethodEvaluation` result in the same case
    order, with candidates bit-identical to the serial run.  ``config``
    selects pool size, transport, engine warming, and the execution
    ``mode`` — classic per-case sharding, the in-process case-stacked
    kernel, or the ``"auto"`` heuristic combining both (see
    :class:`BatchConfig`); the default single-worker sharded config
    routes through the serial path untouched.  Methods without a
    ``run_batch`` kernel silently fall back to the per-case loop (counted
    as ``stacked_fallback_cases_total``).
    """
    from ..experiments.runner import CaseResult, MethodEvaluation, run_cases

    config = config or BatchConfig()
    execution, worker_vectorized = config.resolve_mode()
    supports_batch = callable(getattr(method, "run_batch", None))
    if (execution == "vectorized" or worker_vectorized) and not supports_batch:
        # The method has no stacked kernel: fall back to the per-case
        # loop (serial here, classic sharding below) and say so.
        if _trace.ACTIVE:
            obs.inc("stacked_fallback_cases_total", len(cases))
        execution, worker_vectorized = "sharded", False
    if execution == "vectorized" and len(cases) > 0:
        evaluation = MethodEvaluation(
            method_name=getattr(method, "name", type(method).__name__)
        )
        rows = _vectorized_rows(
            method, list(cases), range(len(cases)), k, k_from_truth, group_key
        )
        for __, case_id, predicted, true_raps, seconds, group in rows:
            evaluation.results.append(
                CaseResult(
                    case_id=case_id,
                    predicted=predicted,
                    true_raps=true_raps,
                    seconds=seconds,
                    group=group,
                )
            )
        return evaluation
    if config.n_workers == 1 or len(cases) == 0:
        return run_cases(
            method, cases, k=k, k_from_truth=k_from_truth, group_key=group_key
        )

    collect = config.collect_metrics
    if collect is None:
        collect = _trace.is_active()

    shards = shard_indices(len(cases), config.n_workers, config.chunk_size)
    base_payload = {
        "method": method,
        "k": k,
        "k_from_truth": k_from_truth,
        "group_key": group_key,
        "transport": config.transport,
        "warm_engines": config.warm_engines,
        "collect": collect,
        "vectorized": worker_vectorized,
        "backend": get_default_backend().name,
    }
    store = None
    if config.transport == "shm":
        store = SharedCaseStore.pack(cases)
    try:
        payloads = []
        for indices in shards:
            payload = dict(base_payload, indices=indices)
            if store is not None:
                payload["spec"] = store.spec
            else:
                payload["cases"] = [cases[i] for i in indices]
            payloads.append(payload)

        context = multiprocessing.get_context(config.mp_context or _default_start())
        outcomes = _execute_shards(payloads, config, context, cases, group_key)
    finally:
        if store is not None:
            store.destroy()

    rows = []
    snapshots = []
    for shard_rows, snapshot in outcomes:
        rows.extend(shard_rows)
        if snapshot is not None:
            snapshots.append(snapshot)
    rows.sort(key=lambda row: row[0])

    collector = _trace.active_collector()
    if collector is not None:
        for snapshot in snapshots:
            collector.metrics.merge(snapshot)
            obs.inc("parallel_merge_snapshots_total")

    evaluation = MethodEvaluation(
        method_name=getattr(method, "name", type(method).__name__)
    )
    for row in rows:
        __, case_id, predicted, true_raps, seconds, group = row[:6]
        evaluation.results.append(
            CaseResult(
                case_id=case_id,
                predicted=predicted,
                true_raps=true_raps,
                seconds=seconds,
                group=group,
                error=row[6] if len(row) > 6 else None,
            )
        )
    return evaluation


def _default_start() -> str:
    """``fork`` where the platform offers it (cheap, inherits read-only
    state), otherwise the platform default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()
