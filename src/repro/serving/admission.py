"""Admission control: bounded depth, per-tenant shares, shed-not-queue.

The fleet's tenant quota bounds *queue memory*; the serving tier must
also bound *latency* — an unbounded accept queue turns overload into
timeouts for everyone.  :class:`AdmissionController` decides, at the
moment a request arrives, one of three fates:

* **admit full** — depth below the soft cap: the request runs with
  whatever deadline it asked for (or none).
* **admit degraded** — depth between the soft and hard caps: the
  request is admitted but pinned to a tight
  :attr:`AdmissionConfig.degraded_deadline_ms` budget with the
  degradation ladder active, so a congested server serves *partial
  results quickly* instead of full results late.
* **shed** — a typed refusal (:data:`~repro.serving.protocol.SHED_CODES`)
  with a retry hint, in strict precedence ``shutting_down`` >
  ``queue_full`` > ``tenant_quota``.  Shedding is O(1) and touches no
  shard: the client learns *immediately*.

A slot is held from admission until the fleet finishes the case — not
until the response is written — so a client that times out and walks
away cannot launder extra capacity.  The controller is pure state (no
metrics, no clocks beyond the caller's), which is what lets the
property suite drive it with thousands of random admit/release
interleavings; the server wires the ``serving_*`` gauges around it.

Sizing math lives in ``docs/operational.md``; the knobs are surfaced on
``repro serve`` one-to-one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["Admission", "AdmissionConfig", "AdmissionController"]


@dataclass
class AdmissionConfig:
    """Knobs of the serving tier's admission policy."""

    #: Hard cap on admitted-but-unfinished requests, server-wide.  At
    #: this depth new requests shed with ``queue_full``.
    max_queue_depth: int = 64
    #: Soft cap: depth at or above this admits **degraded** (tight
    #: deadline + ladder) instead of full.  ``None`` disables the
    #: degraded band; must be <= ``max_queue_depth`` otherwise.
    soft_queue_depth: Optional[int] = 48
    #: Max admitted-but-unfinished requests per tenant; above it the
    #: tenant sheds with ``tenant_quota`` while others still admit.
    tenant_inflight_limit: int = 16
    #: The deadline pinned onto degraded admissions, in milliseconds.
    degraded_deadline_ms: float = 250.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.soft_queue_depth is not None and not (
            1 <= self.soft_queue_depth <= self.max_queue_depth
        ):
            raise ValueError(
                f"soft_queue_depth must be in [1, max_queue_depth], "
                f"got {self.soft_queue_depth}"
            )
        if self.tenant_inflight_limit < 1:
            raise ValueError(
                f"tenant_inflight_limit must be >= 1, got {self.tenant_inflight_limit}"
            )
        if self.degraded_deadline_ms <= 0:
            raise ValueError(
                f"degraded_deadline_ms must be > 0, got {self.degraded_deadline_ms}"
            )


@dataclass(frozen=True)
class Admission:
    """One admission verdict."""

    #: The request may proceed to the fleet.
    admitted: bool
    #: ``"full"`` or ``"degraded"`` when admitted, else ``None``.
    tier: Optional[str] = None
    #: A :data:`~repro.serving.protocol.SHED_CODES` key when shed.
    shed_reason: Optional[str] = None
    #: Deadline the server must pin on a degraded admission (ms).
    deadline_ms: Optional[float] = None


class AdmissionController:
    """Thread-safe admit/release ledger implementing the policy above."""

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config if config is not None else AdmissionConfig()
        self._lock = threading.Lock()
        self._depth = 0
        self._per_tenant: Dict[str, int] = {}
        self._shutting_down = False

    # -- policy ------------------------------------------------------------

    def try_admit(self, tenant: str) -> Admission:
        """Decide one request's fate and (on admit) take its slot."""
        config = self.config
        with self._lock:
            if self._shutting_down:
                return Admission(admitted=False, shed_reason="shutting_down")
            if self._depth >= config.max_queue_depth:
                return Admission(admitted=False, shed_reason="queue_full")
            if self._per_tenant.get(tenant, 0) >= config.tenant_inflight_limit:
                return Admission(admitted=False, shed_reason="tenant_quota")
            degraded = (
                config.soft_queue_depth is not None
                and self._depth >= config.soft_queue_depth
            )
            self._depth += 1
            self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
            if degraded:
                return Admission(
                    admitted=True,
                    tier="degraded",
                    deadline_ms=config.degraded_deadline_ms,
                )
            return Admission(admitted=True, tier="full")

    def release(self, tenant: str) -> None:
        """Return one tenant's slot (called when the fleet finishes it)."""
        with self._lock:
            if self._depth <= 0:
                raise RuntimeError("release without a matching admit")
            held = self._per_tenant.get(tenant, 0)
            if held <= 0:
                raise RuntimeError(f"release for tenant {tenant!r} holding no slot")
            self._depth -= 1
            if held == 1:
                del self._per_tenant[tenant]
            else:
                self._per_tenant[tenant] = held - 1

    # -- lifecycle / introspection ----------------------------------------

    def begin_shutdown(self) -> None:
        """Shed every request from now on; held slots still release."""
        with self._lock:
            self._shutting_down = True

    @property
    def shutting_down(self) -> bool:
        with self._lock:
            return self._shutting_down

    @property
    def depth(self) -> int:
        """Admitted-but-unfinished requests right now."""
        with self._lock:
            return self._depth

    def tenant_inflight(self, tenant: str) -> int:
        with self._lock:
            return self._per_tenant.get(tenant, 0)

    def snapshot(self) -> Dict[str, int]:
        """Per-tenant held slots (a copy; for gauges and debugging)."""
        with self._lock:
            return dict(self._per_tenant)

    def retry_after_ms(self, estimate_ms: float = 50.0) -> float:
        """A crude backoff hint: one in-flight request's worth of time.

        The server multiplies a per-case latency estimate by the depth
        share a retry would wait behind; clients treat it as a hint, not
        a promise.
        """
        with self._lock:
            return max(1.0, estimate_ms * max(1, self._depth))
