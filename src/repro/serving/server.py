"""The serving front door: an asyncio server over the warm-engine fleet.

:class:`LocalizationServer` is the network face of a
:class:`~repro.fleet.supervisor.FleetSupervisor`: per-tick KPI snapshot
requests arrive over HTTP JSON and/or the RPSV binary stream
(:mod:`repro.serving.protocol`), pass the admission controller
(:mod:`repro.serving.admission`), run on the fleet's warm shards, and
return ranked root-cause sets.  Three design rules hold everything
together:

* **Bind-then-report.**  Listener sockets are bound synchronously in
  :meth:`start` *before* the event loop thread exists;
  :attr:`http_port` / :attr:`binary_port` are exact the moment
  :meth:`start` returns.  No sleep-and-retry, no reading ports out of
  logs — the flake class where a test races the listener is structurally
  impossible.
* **Shed, never queue unboundedly.**  Admission is decided at arrival:
  full, degraded (tight deadline + ladder), or a typed shed response.
  An admitted slot is held until the *fleet* finishes the case, so
  abandoning a request frees nothing early.
* **The fleet stays bit-exact.**  An accepted request without a
  deadline runs the exact serial ``localize`` path on a warm shard —
  the response's root causes are bit-identical to an in-process run on
  the same case.  Degradation only ever enters through an explicit
  ``deadline_ms`` (the client's or the degraded tier's).

The event loop runs in a dedicated daemon thread; fleet workers resolve
per-request futures through ``loop.call_soon_threadsafe``.  Telemetry
routes (``/metrics``, ``/healthz``, ``/readyz``, ``/debug/*``) are
mounted on the HTTP listener by delegating to
:meth:`~repro.obs.server.TelemetryServer.dispatch`, so one port serves
both planes; every request feeds the ``serving_*`` metric family and
the :class:`~repro.obs.slo.SLOTracker`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from .. import obs
from ..fleet.supervisor import CaseOutcome, FleetSupervisor
from ..obs.server import TelemetryServer
from ..obs.slo import SLOTracker, TickOutcome
from .admission import AdmissionConfig, AdmissionController
from .protocol import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    LocalizeRequest,
    ProtocolError,
    encode_frame,
    error_body,
    http_status_for,
    ok_body,
    parse_request,
    read_frame,
    shed_body,
)

__all__ = ["LocalizationServer", "ServingConfig", "TELEMETRY_ROUTES"]

#: Telemetry-plane routes the HTTP listener forwards to the dispatcher.
TELEMETRY_ROUTES = ("/metrics", "/healthz", "/readyz", "/debug/spans", "/debug/profile")


@dataclass
class ServingConfig:
    """Network and policy knobs of one :class:`LocalizationServer`."""

    host: str = "127.0.0.1"
    #: HTTP JSON listener port; ``0`` binds ephemeral (read it back from
    #: :attr:`LocalizationServer.http_port`).
    port: int = 0
    #: RPSV binary listener port; ``None`` disables the binary plane.
    binary_port: Optional[int] = 0
    #: Admission policy (queue caps, tenant shares, degraded deadline).
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Reject request payloads larger than this before decoding them.
    max_payload_bytes: int = 8 * 1024 * 1024
    #: Server-side cap on waiting for an admitted case's result; the
    #: response degrades to a typed ``timeout`` error past it (the slot
    #: is still held until the fleet finishes).
    request_timeout_s: float = 60.0
    #: Tenant allowlist; ``None`` admits any tenant string.
    tenants: Optional[Sequence[str]] = None
    #: Deadline pinned on full-tier requests that did not bring one
    #: (``None`` = unlimited, the bit-exact serial path).
    default_deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_payload_bytes < 1024:
            raise ValueError(
                f"max_payload_bytes must be >= 1024, got {self.max_payload_bytes}"
            )
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )


class LocalizationServer:
    """Serve localization requests over a fleet (see module docstring).

    Parameters
    ----------
    supervisor:
        The fleet to serve on.  The server owns its serving lifecycle
        (:meth:`~repro.fleet.supervisor.FleetSupervisor.start_serving` /
        ``stop_serving``) and its ``on_result`` hook for the duration.
    config:
        Network and admission knobs; defaults bind ephemeral localhost
        ports for both planes.
    telemetry:
        Route dispatcher for the telemetry plane.  Default: a fresh
        (never-started) :class:`~repro.obs.server.TelemetryServer` whose
        readiness probe reflects this server's state.
    slo:
        Tracker fed one :class:`~repro.obs.slo.TickOutcome` per admitted
        request.  Default: a fresh tracker with the stock objectives.
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        config: Optional[ServingConfig] = None,
        telemetry: Optional[TelemetryServer] = None,
        slo: Optional[SLOTracker] = None,
    ):
        self.supervisor = supervisor
        self.config = config if config is not None else ServingConfig()
        self.admission = AdmissionController(self.config.admission)
        self.slo = slo if slo is not None else SLOTracker()
        self.telemetry = (
            telemetry
            if telemetry is not None
            else TelemetryServer(readiness=self._readiness)
        )
        self._allowed = (
            None if self.config.tenants is None else frozenset(self.config.tenants)
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._http_sock: Optional[socket.socket] = None
        self._binary_sock: Optional[socket.socket] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._binary_server: Optional[asyncio.AbstractServer] = None
        #: seq -> (future, tenant); guarded by ``_pending_lock`` together
        #: with ``_early`` (results that landed before registration).
        self._pending: Dict[int, Tuple[asyncio.Future, str]] = {}
        self._early: Dict[int, CaseOutcome] = {}
        self._pending_lock = threading.Lock()
        self._started = False
        self._requests_served = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "LocalizationServer":
        """Bind, start the fleet's serving mode, and begin accepting."""
        if self._started:
            raise RuntimeError("serving server already started")
        # Bind first: ports are known (and owned) before anything async
        # exists, so http_port/binary_port never race the accept loop.
        self._http_sock = socket.create_server(
            (self.config.host, self.config.port), reuse_port=False
        )
        if self.config.binary_port is not None:
            try:
                self._binary_sock = socket.create_server(
                    (self.config.host, self.config.binary_port), reuse_port=False
                )
            except OSError:
                self._http_sock.close()
                self._http_sock = None
                raise
        self.supervisor.on_result = self._on_result
        self.supervisor.start_serving()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serving", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self._open_listeners(), self._loop).result(
            timeout=30
        )
        self._started = True
        return self

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    async def _open_listeners(self) -> None:
        self._http_server = await asyncio.start_server(
            self._serve_http, sock=self._http_sock
        )
        if self._binary_sock is not None:
            self._binary_server = await asyncio.start_server(
                self._serve_binary, sock=self._binary_sock
            )

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and shut down: shed new work, finish admitted work.

        Order matters: admission flips to ``shutting_down`` (typed sheds
        from here on), listeners stop accepting, the fleet runs its
        queues dry delivering every admitted result, in-flight handlers
        write their responses, then the loop thread exits.  Idempotent.
        """
        if not self._started:
            return
        self._started = False
        self.admission.begin_shutdown()
        assert self._loop is not None and self._thread is not None
        asyncio.run_coroutine_threadsafe(self._close_listeners(), self._loop).result(
            timeout=timeout
        )
        self.supervisor.stop_serving(timeout=timeout)
        self.supervisor.on_result = None
        asyncio.run_coroutine_threadsafe(self._quiesce(), self._loop).result(
            timeout=timeout
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._loop = None
        self._thread = None
        self._http_server = None
        self._binary_server = None
        self._http_sock = None
        self._binary_sock = None

    async def _close_listeners(self) -> None:
        for server in (self._http_server, self._binary_server):
            if server is not None:
                server.close()
                await server.wait_closed()

    async def _quiesce(self) -> None:
        """Let in-flight handler tasks write their responses and finish."""
        current = asyncio.current_task()
        tasks = [t for t in asyncio.all_tasks() if t is not current]
        if tasks:
            await asyncio.wait(tasks, timeout=5.0)

    def __enter__(self) -> "LocalizationServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started

    @property
    def http_port(self) -> int:
        """The bound HTTP port (exact once :meth:`start` returned)."""
        if self._http_sock is None:
            return self.config.port
        return self._http_sock.getsockname()[1]

    @property
    def binary_port(self) -> Optional[int]:
        """The bound binary port (``None`` when the plane is disabled)."""
        if self._binary_sock is None:
            return self.config.binary_port
        return self._binary_sock.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.http_port}"

    @property
    def requests_served(self) -> int:
        """Localize requests answered (any status) since :meth:`start`."""
        with self._pending_lock:
            return self._requests_served

    def _readiness(self) -> Dict[str, object]:
        return {
            "ready": self._started and not self.admission.shutting_down,
            "queue_depth": self.admission.depth,
            "serving": self.supervisor.serving,
        }

    # -- result plumbing ---------------------------------------------------

    def _on_result(self, outcome: CaseOutcome) -> None:
        """Fleet worker callback: release the slot, resolve the future.

        Runs on whichever shard thread finished the case.  A result may
        land before the submitting handler registered its future (submit
        returns after dispatch); it parks in ``_early`` and the handler
        picks it up.  The admission slot releases *here* — when the work
        actually finished — never at response time.
        """
        self.admission.release(outcome.tenant)
        if obs.trace.ACTIVE:
            obs.set_gauge("serving_queue_depth", self.admission.depth)
            obs.set_gauge(
                "serving_tenant_inflight",
                self.admission.tenant_inflight(outcome.tenant),
                tenant=outcome.tenant,
            )
            if outcome.stop_reason == "deadline":
                obs.inc("serving_deadline_stops_total")
        with self._pending_lock:
            entry = self._pending.pop(outcome.seq, None)
            if entry is None:
                self._early[outcome.seq] = outcome
                return
        future, __ = entry
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._resolve_future, future, outcome)

    @staticmethod
    def _resolve_future(future: asyncio.Future, outcome: CaseOutcome) -> None:
        if not future.done():
            future.set_result(outcome)

    # -- request handling (shared by both planes) --------------------------

    async def _localize(self, payload: bytes, protocol: str) -> Dict:
        """Run one request payload end to end; always returns a body."""
        started = time.perf_counter()
        request_id: Optional[str] = None
        try:
            request = parse_request(payload)
            request_id = request.request_id
            if self._allowed is not None and request.tenant not in self._allowed:
                raise ProtocolError(
                    "unknown_tenant", f"tenant {request.tenant!r} is not served here"
                )
            body = await self._admit_and_run(request)
        except ProtocolError as exc:
            obs.inc("serving_malformed_total", code=exc.code)
            body = error_body(exc.code, exc.message, request_id=request_id)
        elapsed = time.perf_counter() - started
        obs.inc("serving_requests_total", protocol=protocol, status=body["status"])
        obs.observe("serving_request_seconds", elapsed)
        with self._pending_lock:
            self._requests_served += 1
        return body

    async def _admit_and_run(self, request: LocalizeRequest) -> Dict:
        verdict = self.admission.try_admit(request.tenant)
        if not verdict.admitted:
            obs.inc("serving_shed_total", reason=verdict.shed_reason)
            return shed_body(
                verdict.shed_reason,
                retry_after_ms=self.admission.retry_after_ms(),
                request_id=request.request_id,
            )
        obs.inc("serving_admitted_total", tier=verdict.tier)
        obs.set_gauge("serving_queue_depth", self.admission.depth)
        obs.set_gauge(
            "serving_tenant_inflight",
            self.admission.tenant_inflight(request.tenant),
            tenant=request.tenant,
        )
        if verdict.tier == "degraded":
            # The degraded band overrides a laxer client deadline but
            # never loosens a tighter one.
            deadline_ms = (
                verdict.deadline_ms
                if request.deadline_ms is None
                else min(request.deadline_ms, verdict.deadline_ms)
            )
            degrade = True
        else:
            deadline_ms = (
                request.deadline_ms
                if request.deadline_ms is not None
                else self.config.default_deadline_ms
            )
            degrade = False
        started = time.perf_counter()
        outcome = await self._run_on_fleet(request, deadline_ms, degrade)
        if outcome is None:
            return error_body(
                "timeout",
                f"no result within {self.config.request_timeout_s}s",
                request_id=request.request_id,
            )
        seconds = time.perf_counter() - started
        tier = outcome.tier if outcome.tier is not None else verdict.tier
        self.slo.record(
            TickOutcome(
                seconds=seconds,
                error=outcome.error is not None,
                degraded=tier not in (None, "full")
                or outcome.stop_reason == "deadline",
                tier=tier,
            )
        )
        if outcome.error is not None:
            return error_body("internal", outcome.error, request_id=request.request_id)
        return ok_body(
            case_id=outcome.case_id,
            tenant=outcome.tenant,
            root_causes=outcome.predicted,
            seconds=outcome.seconds,
            tier=tier,
            stop_reason=outcome.stop_reason,
            shard=outcome.shard,
            request_id=request.request_id,
        )

    async def _run_on_fleet(
        self,
        request: LocalizeRequest,
        deadline_ms: Optional[float],
        degrade: bool,
    ) -> Optional[CaseOutcome]:
        """Submit one admitted case; await its outcome (None = timeout)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        seq = self.supervisor.submit(
            request.case,
            tenant=request.tenant,
            deadline_ms=deadline_ms,
            degrade=degrade,
            k=request.k,
        )
        early: Optional[CaseOutcome] = None
        with self._pending_lock:
            early = self._early.pop(seq, None)
            if early is None:
                self._pending[seq] = (future, request.tenant)
        if early is not None:
            return early
        try:
            return await asyncio.wait_for(future, timeout=self.config.request_timeout_s)
        except asyncio.TimeoutError:
            # The slot stays held: the case is still running and the
            # release happens in _on_result when it truly finishes.
            with self._pending_lock:
                self._pending.pop(seq, None)
            return None

    # -- HTTP plane --------------------------------------------------------

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One HTTP/1.1 exchange (``Connection: close`` semantics)."""
        try:
            await self._http_exchange(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _http_exchange(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_line = await reader.readline()
        if not request_line:
            return
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            await self._http_send(
                writer, error_body("bad_request", "malformed request line")
            )
            return
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        parsed = urlparse(target)
        route = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)

        if method == "GET":
            if route in TELEMETRY_ROUTES:
                status, content_type, body = self.telemetry.dispatch(route, query)
                await self._http_raw(writer, status, content_type, body)
                return
            if route == "/localize":
                await self._http_send(
                    writer, error_body("bad_method", "POST a request body to /localize")
                )
                return
            await self._http_send(
                writer,
                error_body(
                    "not_found",
                    f"no route {route!r}; localize via POST /localize, "
                    f"telemetry at {', '.join(TELEMETRY_ROUTES)}",
                ),
            )
            return
        if method != "POST":
            await self._http_send(
                writer, error_body("bad_method", f"method {method} is not supported")
            )
            return
        if route != "/localize":
            await self._http_send(
                writer, error_body("not_found", f"no POST route {route!r}")
            )
            return

        length_text = headers.get("content-length")
        if length_text is None or not length_text.isdigit():
            await self._http_send(
                writer,
                error_body("bad_request", "POST /localize requires Content-Length"),
            )
            return
        length = int(length_text)
        if length > self.config.max_payload_bytes:
            # Shed the bytes unread: the declaration alone is the offence.
            obs.inc("serving_malformed_total", code="oversized_payload")
            await self._http_send(
                writer,
                error_body(
                    "oversized_payload",
                    f"body declares {length} bytes "
                    f"(cap {self.config.max_payload_bytes})",
                ),
            )
            return
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            obs.inc("serving_malformed_total", code="truncated")
            await self._http_send(
                writer,
                error_body(
                    "truncated",
                    f"body ended at {len(exc.partial)}/{length} bytes",
                ),
            )
            return
        body = await self._localize(payload, protocol="http")
        await self._http_send(writer, body)

    async def _http_send(self, writer: asyncio.StreamWriter, body: Dict) -> None:
        data = json.dumps(body).encode("utf-8")
        await self._http_raw(writer, http_status_for(body), "application/json", data)

    @staticmethod
    async def _http_raw(
        writer: asyncio.StreamWriter, status: int, content_type: str, data: bytes
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 403: "Forbidden", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable", 504: "Gateway Timeout"}.get(status, "")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # -- binary plane ------------------------------------------------------

    async def _serve_binary(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve RPSV frames until EOF; a protocol error ends the stream.

        Requests on one connection run sequentially in arrival order —
        an agent wanting parallelism opens parallel connections.  After
        a malformed frame the stream position is untrustworthy, so the
        server answers with an error frame and closes.
        """
        try:
            while True:
                try:
                    frame = await read_frame(reader, self.config.max_payload_bytes)
                except ProtocolError as exc:
                    obs.inc("serving_malformed_total", code=exc.code)
                    obs.inc(
                        "serving_requests_total", protocol="binary", status="error"
                    )
                    writer.write(
                        encode_frame(KIND_ERROR, error_body(exc.code, exc.message))
                    )
                    await writer.drain()
                    return
                if frame is None:
                    return
                kind, payload = frame
                if kind != KIND_REQUEST:
                    obs.inc("serving_malformed_total", code="bad_frame")
                    writer.write(
                        encode_frame(
                            KIND_ERROR,
                            error_body(
                                "bad_frame", f"clients send request frames, got kind {kind}"
                            ),
                        )
                    )
                    await writer.drain()
                    return
                body = await self._localize(payload, protocol="binary")
                writer.write(
                    encode_frame(
                        KIND_RESPONSE if body["status"] != "error" else KIND_ERROR, body
                    )
                )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
