"""Blocking clients for both serving planes (tests, tools, quickstarts).

Both clients speak the vocabulary of :mod:`repro.serving.protocol` and
return the decoded response body as a plain dict — callers branch on
``body["status"]`` / ``body["code"]``, exactly as the protocol spec
(``docs/serving.md``) prescribes.  They are dependency-free (stdlib
``http.client`` / ``socket``) and deliberately synchronous: the serving
tier's concurrency lives server-side, and a per-tick agent submits one
snapshot at a time.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Optional

from ..data.injection import LocalizationCase
from ..data.io import case_to_dict
from .protocol import (
    FRAME_HEADER,
    KIND_REQUEST,
    ProtocolError,
    _check_header,
    encode_frame,
)

__all__ = ["BinaryServingClient", "ServingClient", "localize_payload"]


def localize_payload(
    case: LocalizationCase,
    tenant: Optional[str] = None,
    k: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    request_id: Optional[str] = None,
) -> Dict:
    """The request object both clients send (see ``docs/serving.md``)."""
    payload: Dict = {"case": case_to_dict(case)}
    if tenant is not None:
        payload["tenant"] = tenant
    if k is not None:
        payload["k"] = k
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    if request_id is not None:
        payload["request_id"] = request_id
    return payload


class ServingClient:
    """HTTP JSON client: one connection per call, simplest possible."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def localize(
        self,
        case: LocalizationCase,
        tenant: Optional[str] = None,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Dict:
        """POST one case; returns the decoded response body."""
        body = json.dumps(
            localize_payload(case, tenant, k, deadline_ms, request_id)
        ).encode("utf-8")
        status, _, data = self.request("POST", "/localize", body)
        response = json.loads(data.decode("utf-8"))
        response["http_status"] = status
        return response

    def request(
        self, method: str, route: str, body: Optional[bytes] = None
    ) -> tuple:
        """One raw exchange: ``(status, content_type, body_bytes)``."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Length": str(len(body))} if body is not None else {}
            conn.request(method, route, body=body, headers=headers)
            response = conn.getresponse()
            return (
                response.status,
                response.getheader("Content-Type", ""),
                response.read(),
            )
        finally:
            conn.close()

    def metrics(self) -> str:
        """Scrape ``/metrics`` off the serving port (Prometheus text)."""
        status, __, data = self.request("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"/metrics returned {status}")
        return data.decode("utf-8")


class BinaryServingClient:
    """RPSV frame client over one persistent connection."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "BinaryServingClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def localize(
        self,
        case: LocalizationCase,
        tenant: Optional[str] = None,
        k: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Dict:
        """Send one request frame and read the matching response frame."""
        frame = encode_frame(
            KIND_REQUEST, localize_payload(case, tenant, k, deadline_ms, request_id)
        )
        self._sock.sendall(frame)
        __, payload = self._read_frame()
        return json.loads(payload.decode("utf-8"))

    def send_raw(self, data: bytes) -> None:
        """Send arbitrary bytes (the malformed-input tests use this)."""
        self._sock.sendall(data)

    def read_response(self) -> Dict:
        """Read one response frame's decoded body."""
        __, payload = self._read_frame()
        return json.loads(payload.decode("utf-8"))

    def _read_frame(self) -> tuple:
        header = self._recv_exact(FRAME_HEADER.size)
        kind, length = _check_header(header, None)
        return kind, self._recv_exact(length)

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ProtocolError(
                    "truncated", f"server closed mid-frame ({n - remaining}/{n} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
