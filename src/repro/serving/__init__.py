"""Network serving tier: per-tick localization requests over the fleet.

The fleet layer (:mod:`repro.fleet`) serves cases already in the
process; this package puts a wire in front of it.  A
:class:`~repro.serving.server.LocalizationServer` accepts per-tick KPI
snapshot requests over HTTP JSON and/or a length-prefixed binary frame
stream (:mod:`repro.serving.protocol`), runs them through real
admission control — bounded queue depth, per-tenant in-flight shares,
shed-on-overload with typed responses, a degraded band that trades a
tight per-request deadline for latency under congestion
(:mod:`repro.serving.admission`) — and executes on the supervisor's
warm-engine shards.  Accepted full-tier requests return root causes
**bit-identical** to an in-process serial run of the same case.

``docs/serving.md`` is the protocol spec; ``docs/operational.md`` has
the queue/shed sizing math; ``repro serve`` is the CLI entry point.
"""

from .admission import Admission, AdmissionConfig, AdmissionController
from .client import BinaryServingClient, ServingClient, localize_payload
from .protocol import (
    ERROR_CODES,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAGIC,
    PROTOCOL_VERSION,
    LocalizeRequest,
    ProtocolError,
    SHED_CODES,
    decode_frame,
    encode_frame,
    parse_request,
)
from .server import LocalizationServer, ServingConfig

__all__ = [
    "Admission",
    "AdmissionConfig",
    "AdmissionController",
    "BinaryServingClient",
    "ERROR_CODES",
    "KIND_ERROR",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "LocalizationServer",
    "LocalizeRequest",
    "MAGIC",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SHED_CODES",
    "ServingClient",
    "ServingConfig",
    "decode_frame",
    "encode_frame",
    "localize_payload",
    "parse_request",
]
