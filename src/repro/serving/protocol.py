"""Wire protocol of the serving front door: schemas, codes, framing.

One request/response vocabulary serves both listeners:

* **HTTP JSON** — ``POST /localize`` with a JSON body; responses are
  JSON with an HTTP status mirroring the typed code.
* **Binary (RPSV)** — a length-prefixed frame stream for agents that
  submit every tick: ``b"RPSV"`` magic, a version byte, a kind byte
  (request / response / error), a big-endian ``u32`` payload length,
  then the UTF-8 JSON payload.  Same JSON vocabulary, no HTTP overhead.

Every failure mode has a **typed code** (:data:`ERROR_CODES`,
:data:`SHED_CODES`) so clients branch on ``code``, never on prose, and
the ``serving_malformed_total`` / ``serving_shed_total`` metric families
label by the same strings.  Malformed input of any shape — truncated
frame, oversized payload, undecodable JSON, schema violations, an
unknown tenant — raises :class:`ProtocolError` *before* anything touches
the fleet, so a bad request can never wedge or leak a shard.

``docs/serving.md`` is the normative prose spec of everything here; the
two must change together.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..data.injection import LocalizationCase
from ..data.io import case_from_dict

__all__ = [
    "ERROR_CODES",
    "FRAME_HEADER",
    "KIND_ERROR",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "MAGIC",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "LocalizeRequest",
    "SHED_CODES",
    "decode_frame",
    "encode_frame",
    "error_body",
    "http_status_for",
    "ok_body",
    "parse_request",
    "read_frame",
    "shed_body",
]

#: Frame magic: four bytes at the start of every binary frame.
MAGIC = b"RPSV"
#: Wire protocol version carried in every frame header.
PROTOCOL_VERSION = 1
#: ``>4s B B I`` — magic, version, kind, payload length (big-endian).
FRAME_HEADER = struct.Struct(">4sBBI")

#: Frame kinds.
KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3

#: Typed request-rejection codes → HTTP status.  A response with
#: ``status: "error"`` carries exactly one of these in ``code``.
ERROR_CODES: Dict[str, int] = {
    "bad_frame": 400,  # binary header malformed (magic/version/kind)
    "truncated": 400,  # stream ended inside a frame or HTTP body
    "oversized_payload": 413,  # declared or actual size over the cap
    "bad_json": 400,  # payload is not valid JSON
    "bad_request": 400,  # JSON shape violates the request schema
    "bad_case": 400,  # case bundle does not decode into a dataset
    "unknown_tenant": 403,  # tenant not in the server's allowlist
    "not_found": 404,  # no such route
    "bad_method": 405,  # route exists, method does not
    "timeout": 504,  # result did not land within the server cap
    "internal": 500,  # localizer raised; the error rides in message
}

#: Typed admission-shed codes → HTTP status.  A response with
#: ``status: "shed"`` carries exactly one of these in ``code``.
SHED_CODES: Dict[str, int] = {
    "queue_full": 503,  # server-wide admitted depth at the hard cap
    "tenant_quota": 429,  # this tenant's in-flight share exhausted
    "shutting_down": 503,  # server is draining; resubmit elsewhere
}


class ProtocolError(Exception):
    """A typed wire-level rejection (never reaches the fleet).

    ``code`` is a key of :data:`ERROR_CODES`; ``message`` is the
    human-readable detail included in the response body.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class LocalizeRequest:
    """One validated localization request, ready for admission."""

    case: LocalizationCase
    tenant: str
    k: Optional[int] = None
    deadline_ms: Optional[float] = None
    request_id: Optional[str] = None


def parse_request(payload: bytes) -> LocalizeRequest:
    """Decode and validate one request payload (HTTP body or frame).

    Raises :class:`ProtocolError` with ``bad_json`` / ``bad_request`` /
    ``bad_case`` — the caller maps the code to a response; nothing
    invalid gets past this function.
    """
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_json", f"request payload is not JSON: {exc}")
    if not isinstance(data, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    unknown = set(data) - {"case", "tenant", "k", "deadline_ms", "request_id"}
    if unknown:
        raise ProtocolError("bad_request", f"unknown fields: {sorted(unknown)}")
    case_data = data.get("case")
    if not isinstance(case_data, dict):
        raise ProtocolError("bad_request", "'case' must be a case bundle object")
    k = data.get("k")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 1):
        raise ProtocolError("bad_request", f"'k' must be a positive integer, got {k!r}")
    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool):
            raise ProtocolError("bad_request", "'deadline_ms' must be a number")
        if not deadline_ms > 0:
            raise ProtocolError("bad_request", "'deadline_ms' must be > 0")
    request_id = data.get("request_id")
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError("bad_request", "'request_id' must be a string")
    tenant = data.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        raise ProtocolError("bad_request", "'tenant' must be a string")
    try:
        case = case_from_dict(case_data)
    except Exception as exc:  # noqa: BLE001 - any decode failure is the client's
        raise ProtocolError("bad_case", f"case bundle does not decode: {exc}")
    if tenant is None:
        tenant = str(case.metadata.get("tenant", "default"))
    return LocalizeRequest(
        case=case,
        tenant=tenant,
        k=k,
        deadline_ms=None if deadline_ms is None else float(deadline_ms),
        request_id=request_id,
    )


# -- response bodies -------------------------------------------------------


def ok_body(
    *,
    case_id: str,
    tenant: str,
    root_causes,
    seconds: float,
    tier: Optional[str],
    stop_reason: Optional[str],
    shard: Optional[int],
    request_id: Optional[str],
) -> Dict:
    """The ``status: "ok"`` response object (see ``docs/serving.md``)."""
    return {
        "status": "ok",
        "case_id": case_id,
        "tenant": tenant,
        "root_causes": [str(p) for p in root_causes],
        "seconds": seconds,
        "tier": tier if tier is not None else "full",
        "stop_reason": stop_reason,
        "shard": shard,
        "request_id": request_id,
    }


def shed_body(
    code: str, *, retry_after_ms: Optional[float] = None, request_id: Optional[str] = None
) -> Dict:
    """The ``status: "shed"`` response object for an admission refusal."""
    if code not in SHED_CODES:
        raise ValueError(f"unknown shed code {code!r}")
    return {
        "status": "shed",
        "code": code,
        "retry_after_ms": retry_after_ms,
        "request_id": request_id,
    }


def error_body(
    code: str, message: str, *, request_id: Optional[str] = None
) -> Dict:
    """The ``status: "error"`` response object for a typed rejection."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {
        "status": "error",
        "code": code,
        "message": message,
        "request_id": request_id,
    }


def http_status_for(body: Dict) -> int:
    """The HTTP status mirroring a response body's typed code."""
    status = body.get("status")
    if status == "ok":
        return 200
    if status == "shed":
        return SHED_CODES[body["code"]]
    if status == "error":
        return ERROR_CODES[body["code"]]
    raise ValueError(f"unknown response status {status!r}")


# -- binary framing --------------------------------------------------------


def encode_frame(kind: int, payload: Dict) -> bytes:
    """One RPSV frame: header plus the JSON payload."""
    if kind not in (KIND_REQUEST, KIND_RESPONSE, KIND_ERROR):
        raise ValueError(f"unknown frame kind {kind!r}")
    body = json.dumps(payload).encode("utf-8")
    return FRAME_HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, len(body)) + body


def decode_frame(data: bytes, max_payload: Optional[int] = None) -> Tuple[int, bytes]:
    """Split one complete in-memory frame into ``(kind, payload)``.

    Raises :class:`ProtocolError` (``bad_frame`` / ``truncated`` /
    ``oversized_payload``) on anything that is not a whole valid frame.
    """
    if len(data) < FRAME_HEADER.size:
        raise ProtocolError("truncated", f"frame header needs {FRAME_HEADER.size} bytes")
    kind, length = _check_header(data[: FRAME_HEADER.size], max_payload)
    payload = data[FRAME_HEADER.size :]
    if len(payload) < length:
        raise ProtocolError(
            "truncated", f"frame declares {length} payload bytes, got {len(payload)}"
        )
    return kind, payload[:length]


async def read_frame(
    reader: asyncio.StreamReader, max_payload: int
) -> Optional[Tuple[int, bytes]]:
    """Read one frame from a stream; ``None`` on clean EOF between frames.

    A stream ending *inside* a frame raises ``truncated``; a declared
    length over *max_payload* raises ``oversized_payload`` before any
    payload byte is read, so an abusive declaration costs no memory.
    """
    header = await reader.read(FRAME_HEADER.size)
    if not header:
        return None
    while len(header) < FRAME_HEADER.size:
        chunk = await reader.read(FRAME_HEADER.size - len(header))
        if not chunk:
            raise ProtocolError(
                "truncated", f"stream ended inside a frame header ({len(header)} bytes)"
            )
        header += chunk
    kind, length = _check_header(header, max_payload)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            "truncated",
            f"stream ended inside a frame payload ({len(exc.partial)}/{length} bytes)",
        )
    return kind, payload


def _check_header(header: bytes, max_payload: Optional[int]) -> Tuple[int, int]:
    magic, version, kind, length = FRAME_HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError("bad_frame", f"bad magic {magic!r} (want {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad_frame", f"unsupported protocol version {version} (want {PROTOCOL_VERSION})"
        )
    if kind not in (KIND_REQUEST, KIND_RESPONSE, KIND_ERROR):
        raise ProtocolError("bad_frame", f"unknown frame kind {kind}")
    if max_payload is not None and length > max_payload:
        raise ProtocolError(
            "oversized_payload", f"frame declares {length} bytes (cap {max_payload})"
        )
    return kind, length
