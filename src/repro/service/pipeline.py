"""The online localization service: forecast -> alarm -> detect -> localize.

Wires the repository's pieces into the operational loop of the paper's
Fig. 1.  At every collection interval the service receives the actual
per-leaf KPI vector; it forecasts from the rolling history, checks the
overall-KPI alarm, and — only when the alarm fires — labels the leaf table
with the detector and runs the localizer, emitting an
:class:`IncidentReport` with the affected scopes an operator can act on.

The localizer is pluggable (:class:`~repro.core.miner.RAPMiner` by
default, any :class:`~repro.baselines.base.Localizer` works), as are the
forecaster, detector, and alarm.

Under an installed :mod:`repro.obs` collector every observed interval
opens a ``service.interval`` span with per-stage children (forecast ->
alarm -> detect -> localize -> impact), forming the per-incident audit
trail rendered by :func:`repro.obs.report.incident_timeline`.

The serving path is hardened (see ``docs/resilience.md``): malformed
inputs (NaN lanes, truncated value vectors) are sanitized and counted,
forecaster/detector calls run behind retry + circuit breakers with
deterministic fallbacks, and an optional per-interval deadline budget is
threaded through the localizer so an over-budget search returns a
partial-but-valid :class:`IncidentReport` (``stop_reason="deadline"``)
instead of hanging the loop.  With clean inputs and no deadline the
pipeline is bit-identical to the unhardened one.
"""

from __future__ import annotations

import inspect
import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.attribute import AttributeCombination, AttributeSchema
from ..obs import trace as _trace
from ..core.delta import DeltaConfig, DeltaSession
from ..core.engine import engine_for
from ..core.miner import RAPMiner
from ..data.dataset import FineGrainedDataset
from ..detection.detectors import Detector, DeviationThresholdDetector
from ..detection.forecasting import Forecaster, SeasonalNaiveForecaster
from ..resilience.breaker import CircuitBreaker, RetryPolicy, guarded_call
from ..resilience.budget import Budget
from ..resilience.degrade import TIERS, DegradationPolicy
from .alarm import Alarm, DeviationAlarm
from .history import RollingHistory

__all__ = ["ScopeImpact", "IncidentReport", "LocalizationService"]


@dataclass(frozen=True)
class ScopeImpact:
    """One localized scope with its measured impact."""

    pattern: AttributeCombination
    actual: float
    forecast: float
    anomalous_leaves: int
    total_leaves: int

    @property
    def drop_fraction(self) -> float:
        """Relative KPI shortfall of the scope (positive = below forecast).

        When the forecast is zero the ratio is undefined; the convention
        is ``-math.inf`` for a scope that carried traffic anyway
        (infinitely above its zero baseline, keeping the sign of the
        finite case) and ``0.0`` only when actual and forecast are both
        zero (a genuinely dead scope).
        """
        if self.forecast == 0.0:
            return -math.inf if self.actual > 0.0 else 0.0
        return (self.forecast - self.actual) / self.forecast


@dataclass
class IncidentReport:
    """Everything the service learned about one alarmed step."""

    step: int
    total_actual: float
    total_forecast: float
    anomalous_leaves: int
    scopes: List[ScopeImpact] = field(default_factory=list)
    #: Why the localizer's search ended (``coverage_early_stop``,
    #: ``lattice_exhausted``, ``max_layer_reached``, ``no_anomalous_leaves``
    #: or ``deadline``); ``None`` for localizers without search stats.
    stop_reason: Optional[str] = None
    #: Degradation-ladder rung that produced the scopes (``None`` when no
    #: :class:`~repro.resilience.DegradationPolicy` was active).
    degradation_tier: Optional[str] = None
    #: Pipeline stages that fell back to a degraded implementation this
    #: interval (``"forecast"``, ``"detect"``, ``"localize"``), in order.
    degraded_stages: List[str] = field(default_factory=list)

    @property
    def patterns(self) -> List[AttributeCombination]:
        return [scope.pattern for scope in self.scopes]

    @property
    def partial(self) -> bool:
        """True when the deadline budget cut the search short."""
        return self.stop_reason == "deadline"

    def render(self) -> str:
        """Human-readable incident summary."""
        lines = [
            f"INCIDENT at step {self.step}: "
            f"total {self.total_actual:,.0f} vs expected {self.total_forecast:,.0f}, "
            f"{self.anomalous_leaves} anomalous leaf KPIs",
        ]
        if self.partial:
            lines.append(
                "  (partial: deadline budget exhausted — scopes cover the "
                "layers searched so far)"
            )
        if self.degraded_stages:
            lines.append(
                f"  (degraded stages: {', '.join(self.degraded_stages)})"
            )
        for rank, scope in enumerate(self.scopes, start=1):
            drop = scope.drop_fraction
            impact = (
                f"{drop * 100:.0f}% down"
                if math.isfinite(drop)
                else "above zero forecast"
            )
            lines.append(
                f"  {rank}. {scope.pattern}  "
                f"{impact} "
                f"({scope.anomalous_leaves}/{scope.total_leaves} leaves anomalous)"
            )
        if not self.scopes:
            lines.append("  (no scope localized — escalate to manual triage)")
        return "\n".join(lines)


class LocalizationService:
    """Stateful per-interval monitor emitting incident reports.

    Parameters
    ----------
    schema, codes:
        The fixed leaf population being monitored (one row of ``codes``
        per leaf, matching every ``observe`` call's value vector).
    forecaster / detector / alarm / localizer:
        Pluggable pipeline stages; paper-faithful defaults.
    history_capacity:
        Ring-buffer length; must cover the forecaster's needs (one season
        for the default seasonal-naive forecaster).
    min_history:
        Observations required before the service starts judging steps.
    max_scopes:
        Upper bound on reported scopes per incident.
    deadline_ms:
        Wall-clock allowance per observed interval (``None`` =
        unlimited).  The budget starts when :meth:`observe` is entered
        and is threaded through the localizer, so a slow detector leaves
        less time for the search; expiry yields a partial report with
        ``stop_reason="deadline"``.
    degradation:
        Optional :class:`~repro.resilience.DegradationPolicy` forwarded
        to localizers that accept one; the chosen rung lands on
        ``IncidentReport.degradation_tier``.
    delta / delta_config:
        Streaming aggregation across alarmed intervals.  By default the
        service holds a :class:`~repro.core.delta.DeltaSession`: each
        alarmed tick's labelled table is diffed against the previous
        one, and when the changed-leaf fraction is below the (measured)
        crossover the cached cuboid aggregates are patched in place
        instead of re-aggregated cold — candidates stay bit-identical
        either way.  The session is only engaged for localizers whose
        ``run`` accepts an ``engine`` (the default
        :class:`~repro.core.miner.RAPMiner` does); pass ``delta=False``
        to force cold aggregation every interval.
    retry:
        Retry/backoff policy for the forecaster and detector calls
        (default: one retry, 50 ms backoff).
    slo:
        Optional :class:`~repro.obs.slo.SLOTracker` fed one
        :class:`~repro.obs.slo.TickOutcome` per observed interval
        (latency, degraded stages, partial reports, degradation tier),
        exporting the ``slo_*`` burn-rate gauges into the active
        registry.  ``None`` (default) costs nothing.
    forecast_breaker / detect_breaker:
        Circuit breakers guarding the pluggable stages.  When a stage
        exhausts its retries (or its breaker is open) the service falls
        back deterministically — last-history-row forecast, default
        :class:`~repro.detection.detectors.DeviationThresholdDetector` —
        and records the stage in ``IncidentReport.degraded_stages``.
    """

    def __init__(
        self,
        schema: AttributeSchema,
        codes: np.ndarray,
        forecaster: Optional[Forecaster] = None,
        detector: Optional[Detector] = None,
        alarm: Optional[Alarm] = None,
        localizer=None,
        history_capacity: int = 1440,
        min_history: int = 10,
        max_scopes: int = 5,
        deadline_ms: Optional[float] = None,
        degradation: Optional[DegradationPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        forecast_breaker: Optional[CircuitBreaker] = None,
        detect_breaker: Optional[CircuitBreaker] = None,
        delta: bool = True,
        delta_config: Optional[DeltaConfig] = None,
        slo=None,
    ):
        self.schema = schema
        self.codes = np.ascontiguousarray(codes, dtype=np.int64)
        self.forecaster = forecaster if forecaster is not None else SeasonalNaiveForecaster()
        self.detector = detector if detector is not None else DeviationThresholdDetector()
        self.alarm = alarm if alarm is not None else DeviationAlarm()
        self.localizer = localizer if localizer is not None else RAPMiner()
        if min_history < 1:
            raise ValueError("min_history must be positive")
        if deadline_ms is not None and deadline_ms <= 0.0:
            raise ValueError("deadline_ms must be positive (or None for unlimited)")
        self.min_history = min_history
        self.max_scopes = max_scopes
        self.deadline_ms = deadline_ms
        self.degradation = degradation
        #: Cross-interval delta aggregation state (``None`` = always cold).
        self.delta_session = DeltaSession(delta_config) if delta else None
        self.retry = retry if retry is not None else RetryPolicy()
        self.forecast_breaker = (
            forecast_breaker
            if forecast_breaker is not None
            else CircuitBreaker(name="forecast")
        )
        self.detect_breaker = (
            detect_breaker if detect_breaker is not None else CircuitBreaker(name="detect")
        )
        #: Deterministic stand-in detector used when the pluggable one is
        #: down; deviation-threshold is the paper's implied default.
        self.fallback_detector = DeviationThresholdDetector()
        #: Optional SLO tracker fed once per observed interval.
        self.slo = slo
        self.history = RollingHistory(self.codes.shape[0], history_capacity)
        self._step = 0
        #: Count of observed steps that raised an incident.
        self.incidents_raised = 0
        #: Count of sanitized inputs (NaN lanes, wrong-length vectors).
        self.malformed_inputs = 0

    @property
    def current_step(self) -> int:
        return self._step

    def warm_up(self, values_matrix: np.ndarray) -> None:
        """Preload history rows (no alarm evaluation), oldest first."""
        for row in np.asarray(values_matrix, dtype=float):
            self.history.append(row)
            self._step += 1

    def observe(self, values: np.ndarray) -> Optional[IncidentReport]:
        """Process one collection interval; returns a report when alarmed.

        The observed values are appended to the history *after* judging the
        step, so the forecast never sees the value it is predicting.

        Malformed inputs never abort the interval: a wrong-length vector
        is padded/truncated to the leaf population and NaN/Inf lanes are
        replaced by their forecast (neutral — never spuriously anomalous),
        both counted under ``resilience_malformed_inputs_total``.  Clean
        inputs pass through untouched, bit for bit.
        """
        started = time.perf_counter()
        budget = Budget.from_ms(self.deadline_ms)
        values = self._coerce_length(np.asarray(values, dtype=float).ravel())
        step = self._step
        report: Optional[IncidentReport] = None
        degraded_stages: List[str] = []
        with obs.span("service.interval", step=step) as interval_span:
            if len(self.history) >= self.min_history:
                with obs.span("service.forecast"):
                    forecast = self._forecast(degraded_stages)
                values = self._sanitize_lanes(values, forecast)
                with obs.span("service.alarm") as alarm_span:
                    triggered = self.alarm.should_trigger(
                        float(values.sum()), float(forecast.sum())
                    )
                    alarm_span.set(triggered=triggered)
                if triggered:
                    report = self._localize(
                        step, values, forecast, budget, degraded_stages
                    )
                    self.incidents_raised += 1
            else:
                values = self._sanitize_lanes(values, forecast=None)
            interval_span.set(alarmed=report is not None)
            if _trace.ACTIVE:
                obs.inc("service_intervals_total")
                if report is not None:
                    obs.inc("service_incidents_total")
                self.export_state_gauges(report)
        self.history.append(values)
        self._step += 1
        if self.slo is not None:
            from ..obs.slo import TickOutcome

            self.slo.record(
                TickOutcome(
                    seconds=time.perf_counter() - started,
                    error=report is not None and report.stop_reason == "localizer_error",
                    degraded=bool(degraded_stages)
                    or (report is not None and report.partial),
                    tier=report.degradation_tier if report is not None else None,
                )
            )
        return report

    # -- live-telemetry surface ------------------------------------------------

    def export_state_gauges(self, report: Optional[IncidentReport] = None) -> None:
        """Publish breaker and degradation state as gauges for live scrapes.

        Called once per observed interval when a collector is installed;
        a scrape therefore always sees the *current* breaker states, not
        just whichever transitions happened to fire since capture start.
        ``resilience_degradation_tier`` encodes the latest report's rung
        as its index into :data:`~repro.resilience.degrade.TIERS`
        (``-1`` = no degradation policy consulted).
        """
        self.forecast_breaker.export_state_gauge()
        self.detect_breaker.export_state_gauge()
        if report is not None:
            tier = report.degradation_tier
            obs.set_gauge(
                "resilience_degradation_tier",
                TIERS.index(tier) if tier in TIERS else -1,
            )

    def readiness(self) -> dict:
        """The ``/readyz`` probe body for a telemetry server.

        Ready means the service can judge the next interval at full
        fidelity: enough history for the forecaster, and neither pluggable
        stage's circuit breaker open.
        """
        breakers = {
            self.forecast_breaker.name: self.forecast_breaker.state,
            self.detect_breaker.name: self.detect_breaker.state,
        }
        warmed = len(self.history) >= self.min_history
        open_breakers = sorted(n for n, s in breakers.items() if s == "open")
        ready = warmed and not open_breakers
        reason = None
        if not warmed:
            reason = f"history {len(self.history)}/{self.min_history}"
        elif open_breakers:
            reason = f"open breakers: {', '.join(open_breakers)}"
        return {
            "ready": ready,
            "reason": reason,
            "step": self._step,
            "breakers": breakers,
            "incidents_raised": self.incidents_raised,
        }

    def telemetry_server(self, host: str = "127.0.0.1", port: int = 0):
        """A :class:`~repro.obs.server.TelemetryServer` wired to this service.

        The server's ``/readyz`` reflects :meth:`readiness` (history
        warm-up and breaker state); start/stop it around the serving loop::

            with service.telemetry_server(port=9464) as server:
                for values in feed:
                    service.observe(values)
        """
        from ..obs.server import TelemetryServer

        return TelemetryServer(host=host, port=port, readiness=self.readiness)

    # -- input hygiene ---------------------------------------------------------

    def _coerce_length(self, values: np.ndarray) -> np.ndarray:
        """Pad (with NaN, sanitized later) or truncate to the leaf count."""
        n_leaves = self.codes.shape[0]
        if values.shape[0] == n_leaves:
            return values
        self.malformed_inputs += 1
        obs.inc("resilience_malformed_inputs_total", kind="length")
        if values.shape[0] > n_leaves:
            return values[:n_leaves]
        padded = np.full(n_leaves, np.nan)
        padded[: values.shape[0]] = values
        return padded

    def _sanitize_lanes(
        self, values: np.ndarray, forecast: Optional[np.ndarray]
    ) -> np.ndarray:
        """Replace non-finite lanes with their expected value.

        With a forecast available the replacement is the forecast lane
        (the lane looks exactly on-trend, so a collection gap never
        manufactures an anomaly); before the warm-up it is the last
        history row, or 0.0 on a cold start.  Finite inputs are returned
        unchanged — not copied — so the clean path stays bit-identical.
        """
        bad = ~np.isfinite(values)
        if not bad.any():
            return values
        self.malformed_inputs += 1
        obs.inc("resilience_malformed_inputs_total", int(bad.sum()), kind="nan")
        values = values.copy()
        if forecast is not None:
            values[bad] = forecast[bad]
        elif len(self.history):
            values[bad] = self.history.to_matrix()[-1][bad]
        else:
            values[bad] = 0.0
        return values

    # -- guarded pluggable stages ----------------------------------------------

    def _forecast(self, degraded_stages: List[str]) -> np.ndarray:
        """The pluggable forecaster behind retry + breaker, with fallback.

        When the forecaster is down (retries exhausted or breaker open)
        the service degrades to the last history row — the naive
        persistence forecast — rather than skipping the interval.
        """
        history_matrix = self.history.to_matrix()
        forecast, error = guarded_call(
            self.forecaster.forecast,
            history_matrix,
            retry=self.retry,
            breaker=self.forecast_breaker,
            stage="forecast",
        )
        if error is None:
            forecast = np.asarray(forecast, dtype=float)
            if forecast.shape[0] == self.codes.shape[0] and np.isfinite(forecast).all():
                return forecast
            obs.inc("resilience_malformed_inputs_total", kind="forecast")
        degraded_stages.append("forecast")
        obs.inc("resilience_fallback_total", stage="forecast")
        return history_matrix[-1].copy()

    def _detect(
        self, values: np.ndarray, forecast: np.ndarray, degraded_stages: List[str]
    ) -> np.ndarray:
        """The pluggable detector behind retry + breaker, with fallback."""
        labels, error = guarded_call(
            self.detector.detect,
            values,
            forecast,
            retry=self.retry,
            breaker=self.detect_breaker,
            stage="detect",
        )
        if error is None:
            return np.asarray(labels, dtype=bool)
        degraded_stages.append("detect")
        obs.inc("resilience_fallback_total", stage="detect")
        return np.asarray(self.fallback_detector.detect(values, forecast), dtype=bool)

    def _run_localizer(
        self, labelled: FineGrainedDataset, budget: Optional[Budget]
    ) -> Tuple[List[AttributeCombination], Optional[str], Optional[str]]:
        """``(patterns, stop_reason, degradation_tier)`` from the localizer.

        Localizers exposing a ``run`` method (RAPMiner, the incremental
        miner) are invoked through it so search stats surface on the
        report; the budget/degradation kwargs are passed only when the
        signature accepts them, keeping any ``Localizer`` pluggable.

        When the service holds a delta session and the localizer's
        ``run`` accepts an ``engine``, the interval's engine comes from
        :meth:`DeltaSession.begin_tick` — patched from the previous
        alarmed interval when the churn is low, cold otherwise.
        Localizers that manage their own engines (the incremental and
        streaming miners) simply do not take the kwarg and bypass the
        session entirely.
        """
        runner = getattr(self.localizer, "run", None)
        if callable(runner):
            kwargs = {}
            try:
                parameters = inspect.signature(runner).parameters
            except (TypeError, ValueError):  # pragma: no cover - exotic callables
                parameters = {}
            tick = None
            started = time.perf_counter()
            if self.delta_session is not None and "engine" in parameters:
                tick = self.delta_session.begin_tick(
                    labelled, budget=budget, policy=self.degradation
                )
                kwargs["engine"] = tick.engine
                if tick.decision is not None and "_decision" in parameters:
                    kwargs["_decision"] = tick.decision
            if budget is not None and "budget" in parameters:
                kwargs["budget"] = budget
            if self.degradation is not None and "degradation" in parameters:
                kwargs["degradation"] = self.degradation
            result = runner(labelled, k=self.max_scopes, **kwargs)
            if tick is not None:
                self.delta_session.record_tick_seconds(
                    tick, time.perf_counter() - started
                )
            stats = getattr(result, "stats", None)
            return (
                list(result.patterns),
                getattr(stats, "stop_reason", None),
                getattr(stats, "degradation_tier", None),
            )
        return list(self.localizer.localize(labelled, k=self.max_scopes)), None, None

    def _localize(
        self,
        step: int,
        values: np.ndarray,
        forecast: np.ndarray,
        budget: Optional[Budget] = None,
        degraded_stages: Optional[List[str]] = None,
    ) -> IncidentReport:
        degraded_stages = degraded_stages if degraded_stages is not None else []
        with obs.span("service.detect") as detect_span:
            table = FineGrainedDataset(self.schema, self.codes, values, forecast)
            labelled = table.with_labels(self._detect(values, forecast, degraded_stages))
            detect_span.set(anomalous_leaves=labelled.n_anomalous)
        with obs.span("service.localize") as localize_span:
            outcome, error = guarded_call(
                self._run_localizer,
                labelled,
                budget,
                retry=RetryPolicy(max_attempts=1),
                stage="localize",
            )
            if error is None:
                patterns, stop_reason, degradation_tier = outcome
            else:
                # A crashed localizer still yields a well-formed (empty)
                # report; the render() escalation line tells the operator.
                patterns, stop_reason, degradation_tier = [], "localizer_error", None
                degraded_stages.append("localize")
                obs.inc("resilience_fallback_total", stage="localize")
            localize_span.set(n_patterns=len(patterns))
            obs.inc(
                "resilience_stop_reason_total",
                reason=stop_reason or "none",
                tier=degradation_tier or "none",
            )
        with obs.span("service.impact") as impact_span:
            # Same shared engine the localizer used for this interval, so the
            # impact roll-up reuses its posting lists instead of fresh masks.
            engine = engine_for(labelled)
            scopes = []
            for pattern in patterns:
                rows = engine.rows_of(pattern)
                scopes.append(
                    ScopeImpact(
                        pattern=pattern,
                        actual=float(values[rows].sum()),
                        forecast=float(forecast[rows].sum()),
                        anomalous_leaves=int(labelled.labels[rows].sum()),
                        total_leaves=int(rows.size),
                    )
                )
            impact_span.set(n_scopes=len(scopes))
        return IncidentReport(
            step=step,
            total_actual=float(values.sum()),
            total_forecast=float(forecast.sum()),
            anomalous_leaves=labelled.n_anomalous,
            scopes=scopes,
            stop_reason=stop_reason,
            degradation_tier=degradation_tier,
            degraded_stages=list(degraded_stages),
        )
