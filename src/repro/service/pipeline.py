"""The online localization service: forecast -> alarm -> detect -> localize.

Wires the repository's pieces into the operational loop of the paper's
Fig. 1.  At every collection interval the service receives the actual
per-leaf KPI vector; it forecasts from the rolling history, checks the
overall-KPI alarm, and — only when the alarm fires — labels the leaf table
with the detector and runs the localizer, emitting an
:class:`IncidentReport` with the affected scopes an operator can act on.

The localizer is pluggable (:class:`~repro.core.miner.RAPMiner` by
default, any :class:`~repro.baselines.base.Localizer` works), as are the
forecaster, detector, and alarm.

Under an installed :mod:`repro.obs` collector every observed interval
opens a ``service.interval`` span with per-stage children (forecast ->
alarm -> detect -> localize -> impact), forming the per-incident audit
trail rendered by :func:`repro.obs.report.incident_timeline`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.attribute import AttributeCombination, AttributeSchema
from ..obs import trace as _trace
from ..core.engine import engine_for
from ..core.miner import RAPMiner
from ..data.dataset import FineGrainedDataset
from ..detection.detectors import Detector, DeviationThresholdDetector
from ..detection.forecasting import Forecaster, SeasonalNaiveForecaster
from .alarm import Alarm, DeviationAlarm
from .history import RollingHistory

__all__ = ["ScopeImpact", "IncidentReport", "LocalizationService"]


@dataclass(frozen=True)
class ScopeImpact:
    """One localized scope with its measured impact."""

    pattern: AttributeCombination
    actual: float
    forecast: float
    anomalous_leaves: int
    total_leaves: int

    @property
    def drop_fraction(self) -> float:
        """Relative KPI shortfall of the scope (positive = below forecast).

        When the forecast is zero the ratio is undefined; the convention
        is ``-math.inf`` for a scope that carried traffic anyway
        (infinitely above its zero baseline, keeping the sign of the
        finite case) and ``0.0`` only when actual and forecast are both
        zero (a genuinely dead scope).
        """
        if self.forecast == 0.0:
            return -math.inf if self.actual > 0.0 else 0.0
        return (self.forecast - self.actual) / self.forecast


@dataclass
class IncidentReport:
    """Everything the service learned about one alarmed step."""

    step: int
    total_actual: float
    total_forecast: float
    anomalous_leaves: int
    scopes: List[ScopeImpact] = field(default_factory=list)

    @property
    def patterns(self) -> List[AttributeCombination]:
        return [scope.pattern for scope in self.scopes]

    def render(self) -> str:
        """Human-readable incident summary."""
        lines = [
            f"INCIDENT at step {self.step}: "
            f"total {self.total_actual:,.0f} vs expected {self.total_forecast:,.0f}, "
            f"{self.anomalous_leaves} anomalous leaf KPIs",
        ]
        for rank, scope in enumerate(self.scopes, start=1):
            drop = scope.drop_fraction
            impact = (
                f"{drop * 100:.0f}% down"
                if math.isfinite(drop)
                else "above zero forecast"
            )
            lines.append(
                f"  {rank}. {scope.pattern}  "
                f"{impact} "
                f"({scope.anomalous_leaves}/{scope.total_leaves} leaves anomalous)"
            )
        if not self.scopes:
            lines.append("  (no scope localized — escalate to manual triage)")
        return "\n".join(lines)


class LocalizationService:
    """Stateful per-interval monitor emitting incident reports.

    Parameters
    ----------
    schema, codes:
        The fixed leaf population being monitored (one row of ``codes``
        per leaf, matching every ``observe`` call's value vector).
    forecaster / detector / alarm / localizer:
        Pluggable pipeline stages; paper-faithful defaults.
    history_capacity:
        Ring-buffer length; must cover the forecaster's needs (one season
        for the default seasonal-naive forecaster).
    min_history:
        Observations required before the service starts judging steps.
    max_scopes:
        Upper bound on reported scopes per incident.
    """

    def __init__(
        self,
        schema: AttributeSchema,
        codes: np.ndarray,
        forecaster: Optional[Forecaster] = None,
        detector: Optional[Detector] = None,
        alarm: Optional[Alarm] = None,
        localizer=None,
        history_capacity: int = 1440,
        min_history: int = 10,
        max_scopes: int = 5,
    ):
        self.schema = schema
        self.codes = np.ascontiguousarray(codes, dtype=np.int64)
        self.forecaster = forecaster if forecaster is not None else SeasonalNaiveForecaster()
        self.detector = detector if detector is not None else DeviationThresholdDetector()
        self.alarm = alarm if alarm is not None else DeviationAlarm()
        self.localizer = localizer if localizer is not None else RAPMiner()
        if min_history < 1:
            raise ValueError("min_history must be positive")
        self.min_history = min_history
        self.max_scopes = max_scopes
        self.history = RollingHistory(self.codes.shape[0], history_capacity)
        self._step = 0
        #: Count of observed steps that raised an incident.
        self.incidents_raised = 0

    @property
    def current_step(self) -> int:
        return self._step

    def warm_up(self, values_matrix: np.ndarray) -> None:
        """Preload history rows (no alarm evaluation), oldest first."""
        for row in np.asarray(values_matrix, dtype=float):
            self.history.append(row)
            self._step += 1

    def observe(self, values: np.ndarray) -> Optional[IncidentReport]:
        """Process one collection interval; returns a report when alarmed.

        The observed values are appended to the history *after* judging the
        step, so the forecast never sees the value it is predicting.
        """
        values = np.asarray(values, dtype=float)
        step = self._step
        report: Optional[IncidentReport] = None
        with obs.span("service.interval", step=step) as interval_span:
            if len(self.history) >= self.min_history:
                with obs.span("service.forecast"):
                    forecast = self.forecaster.forecast(self.history.to_matrix())
                with obs.span("service.alarm") as alarm_span:
                    triggered = self.alarm.should_trigger(
                        float(values.sum()), float(forecast.sum())
                    )
                    alarm_span.set(triggered=triggered)
                if triggered:
                    report = self._localize(step, values, forecast)
                    self.incidents_raised += 1
            interval_span.set(alarmed=report is not None)
            if _trace.ACTIVE:
                obs.inc("service_intervals_total")
                if report is not None:
                    obs.inc("service_incidents_total")
        self.history.append(values)
        self._step += 1
        return report

    def _localize(
        self, step: int, values: np.ndarray, forecast: np.ndarray
    ) -> IncidentReport:
        with obs.span("service.detect") as detect_span:
            table = FineGrainedDataset(self.schema, self.codes, values, forecast)
            labelled = table.with_labels(self.detector.detect(values, forecast))
            detect_span.set(anomalous_leaves=labelled.n_anomalous)
        with obs.span("service.localize") as localize_span:
            patterns = self.localizer.localize(labelled, k=self.max_scopes)
            localize_span.set(n_patterns=len(patterns))
        with obs.span("service.impact") as impact_span:
            # Same shared engine the localizer used for this interval, so the
            # impact roll-up reuses its posting lists instead of fresh masks.
            engine = engine_for(labelled)
            scopes = []
            for pattern in patterns:
                rows = engine.rows_of(pattern)
                scopes.append(
                    ScopeImpact(
                        pattern=pattern,
                        actual=float(values[rows].sum()),
                        forecast=float(forecast[rows].sum()),
                        anomalous_leaves=int(labelled.labels[rows].sum()),
                        total_leaves=int(rows.size),
                    )
                )
            impact_span.set(n_scopes=len(scopes))
        return IncidentReport(
            step=step,
            total_actual=float(values.sum()),
            total_forecast=float(forecast.sum()),
            anomalous_leaves=labelled.n_anomalous,
            scopes=scopes,
        )
