"""Online localization service: the operational loop of the paper's Fig. 1."""

from .alarm import Alarm, DeviationAlarm, ResidualSigmaAlarm
from .history import RollingHistory
from .pipeline import IncidentReport, LocalizationService, ScopeImpact
from .stream import StreamReplay, TickRecord, replay_stream

__all__ = [
    "Alarm",
    "DeviationAlarm",
    "ResidualSigmaAlarm",
    "RollingHistory",
    "IncidentReport",
    "LocalizationService",
    "ScopeImpact",
    "StreamReplay",
    "TickRecord",
    "replay_stream",
]
