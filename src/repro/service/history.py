"""Rolling per-leaf KPI history for the online localization service.

The operational flow of the paper's Fig. 1 needs, at every collection
interval, the recent history of every leaf KPI to produce a forecast.
:class:`RollingHistory` is a fixed-capacity ring buffer over the leaf
population: O(1) appends, contiguous matrix views for the vectorized
forecasters, no per-step allocation once warm.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["RollingHistory"]


class RollingHistory:
    """Ring buffer of ``capacity`` steps x ``n_series`` leaf values."""

    def __init__(self, n_series: int, capacity: int):
        if n_series < 1:
            raise ValueError("need at least one series")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._buffer = np.empty((capacity, n_series))
        self._capacity = capacity
        self._n_series = n_series
        self._size = 0
        self._next = 0

    @property
    def n_series(self) -> int:
        return self._n_series

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self._capacity

    def append(self, values: np.ndarray) -> None:
        """Add one step; evicts the oldest step when full."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self._n_series,):
            raise ValueError(
                f"expected {self._n_series} values, got shape {values.shape}"
            )
        self._buffer[self._next] = values
        self._next = (self._next + 1) % self._capacity
        self._size = min(self._size + 1, self._capacity)

    def to_matrix(self) -> np.ndarray:
        """Chronological ``(len(self), n_series)`` copy, oldest row first."""
        if self._size < self._capacity:
            return self._buffer[: self._size].copy()
        return np.concatenate(
            [self._buffer[self._next :], self._buffer[: self._next]], axis=0
        )

    def last(self) -> Optional[np.ndarray]:
        """The most recent step, or ``None`` when empty."""
        if self._size == 0:
            return None
        return self._buffer[(self._next - 1) % self._capacity].copy()

    def clear(self) -> None:
        self._size = 0
        self._next = 0
