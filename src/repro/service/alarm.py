"""Overall-KPI anomaly alarms: the trigger of the localization flow.

The paper's pipeline (Fig. 1 / §II-C) runs localization only "when a
failure alarm occurs [and] the overall KPI of the CDN usually shows
abnormal behaviors" — anomaly *detection* on the aggregate KPI gates
anomaly *localization*.  These alarms decide, per step, whether the
aggregate actual value is anomalous against its aggregate forecast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["Alarm", "DeviationAlarm", "ResidualSigmaAlarm"]


class Alarm:
    """Interface: should localization be triggered for this step?"""

    def should_trigger(self, actual_total: float, forecast_total: float) -> bool:
        raise NotImplementedError


@dataclass
class DeviationAlarm:
    """Trigger when the aggregate relative deviation crosses a threshold.

    One-sided by default (traffic drops), mirroring the leaf detector.
    """

    threshold: float = 0.05
    two_sided: bool = False
    epsilon: float = 1e-9

    def should_trigger(self, actual_total: float, forecast_total: float) -> bool:
        dev = (forecast_total - actual_total) / (forecast_total + self.epsilon)
        if self.two_sided:
            return abs(dev) > self.threshold
        return dev > self.threshold


@dataclass
class ResidualSigmaAlarm:
    """Trigger on a k-sigma outlier of the aggregate residual history.

    Keeps a window of recent relative residuals and flags a step whose
    residual deviates from the window median by more than ``k`` robust
    standard deviations.  Self-calibrating: no absolute threshold needed.
    """

    k: float = 4.0
    window: int = 200
    min_history: int = 10
    epsilon: float = 1e-9
    _residuals: List[float] = field(default_factory=list)

    def should_trigger(self, actual_total: float, forecast_total: float) -> bool:
        residual = (forecast_total - actual_total) / (forecast_total + self.epsilon)
        history = self._residuals
        triggered = False
        if len(history) >= self.min_history:
            center = float(np.median(history))
            mad = float(np.median(np.abs(np.asarray(history) - center)))
            scale = 1.4826 * mad
            if scale <= 0.0:
                scale = float(np.std(history)) or self.epsilon
            triggered = abs(residual - center) > self.k * scale
        # Anomalous steps are excluded from the calibration window so a
        # long incident cannot teach the alarm that failure is normal.
        if not triggered:
            history.append(residual)
            if len(history) > self.window:
                del history[: len(history) - self.window]
        return triggered
