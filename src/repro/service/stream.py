"""Replay a tick sequence through the streaming delta pipeline.

The evaluation harness (:mod:`repro.experiments.runner`) treats cases as
independent problems; this module treats them as *consecutive ticks of
one stream*, which is what the delta path
(:class:`~repro.core.incremental.StreamingRAPMiner` over a
:class:`~repro.core.delta.DeltaSession`) is built for.  It backs the
``repro stream-localize`` subcommand and the ``make bench-stream``
benchmark, and doubles as the reference harness for asserting the delta
path's bit-identical-candidates contract against a stateless miner
(``verify=True``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..core.incremental import StreamingRAPMiner
from ..core.miner import RAPMiner
from ..data.dataset import FineGrainedDataset
from ..data.injection import LocalizationCase

__all__ = ["TickRecord", "StreamReplay", "replay_stream"]


@dataclass
class TickRecord:
    """One replayed tick's outcome and cost."""

    index: int
    case_id: Optional[str]
    path: str
    reason: Optional[str]
    changed_fraction: float
    seconds: float
    stop_reason: Optional[str]
    patterns: list
    #: Predicted patterns found in the case's ground truth (``None``
    #: when the tick came without truth).
    hits: Optional[int] = None
    #: ``verify`` mode only: candidates bit-identical to stateless?
    verified: Optional[bool] = None


@dataclass
class StreamReplay:
    """Everything one stream replay produced."""

    ticks: List[TickRecord] = field(default_factory=list)

    @property
    def patched_ticks(self) -> int:
        return sum(1 for t in self.ticks if t.path == "patched")

    @property
    def cold_ticks(self) -> int:
        return sum(1 for t in self.ticks if t.path == "cold")

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.ticks)

    @property
    def amortized_seconds(self) -> float:
        """Mean per-tick latency, cold first tick included."""
        return self.total_seconds / len(self.ticks) if self.ticks else 0.0

    @property
    def mismatches(self) -> List[int]:
        """Tick indices where ``verify`` found a candidate divergence."""
        return [t.index for t in self.ticks if t.verified is False]


def _stateless_candidates(miner: RAPMiner, dataset: FineGrainedDataset, k):
    """Reference run on a rebuilt dataset (fresh engine, no shared caches)."""
    rebuilt = FineGrainedDataset(
        dataset.schema, dataset.codes.copy(), dataset.v, dataset.f, dataset.labels
    )
    return miner.run(rebuilt, k).candidates


def replay_stream(
    ticks: Sequence[Union[FineGrainedDataset, LocalizationCase]],
    miner: Optional[StreamingRAPMiner] = None,
    k: Optional[int] = None,
    verify: bool = False,
    slo=None,
) -> StreamReplay:
    """Run *ticks* in order through one streaming miner.

    Parameters
    ----------
    ticks:
        Labelled datasets, or :class:`LocalizationCase` instances whose
        datasets are replayed in input order (their ground truth, when
        present, fills ``TickRecord.hits``).
    miner:
        The streaming miner to drive (a fresh default one otherwise).
        Its session persists across the whole replay — layout changes
        between ticks re-anchor it cold, exactly as in production.
    k:
        Top-k per tick (``None`` = every candidate; for cases with
        truth, ``None`` means k = number of true RAPs, matching the
        evaluation harness convention).
    verify:
        Re-run every tick through a stateless :class:`RAPMiner` on a
        fresh engine and record whether the candidates are identical —
        full field equality, float confidences included.
    slo:
        Optional :class:`~repro.obs.slo.SLOTracker` fed one
        :class:`~repro.obs.slo.TickOutcome` per replayed tick (latency,
        patched/cold path, deadline stops, verify mismatches), exporting
        the ``slo_*`` burn-rate gauges into the active registry so a
        live scrape judges the replay against its objectives.
    """
    miner = miner if miner is not None else StreamingRAPMiner()
    reference = RAPMiner(miner.config) if verify else None
    replay = StreamReplay()
    for index, tick in enumerate(ticks):
        case = tick if isinstance(tick, LocalizationCase) else None
        dataset = case.dataset if case is not None else tick
        tick_k = k
        if tick_k is None and case is not None and case.true_raps:
            tick_k = len(case.true_raps)
        started = time.perf_counter()
        result = miner.run(dataset, tick_k)
        seconds = time.perf_counter() - started
        stats = miner.stats
        hits = None
        if case is not None and case.true_raps:
            hits = sum(1 for p in result.patterns if p in case.true_raps)
        verified = None
        if reference is not None:
            verified = result.candidates == _stateless_candidates(
                reference, dataset, tick_k
            )
        record = TickRecord(
            index=index,
            case_id=case.case_id if case is not None else None,
            path=stats.last_path or "cold",
            reason=stats.last_reason,
            changed_fraction=stats.last_changed_fraction or 1.0,
            seconds=seconds,
            stop_reason=result.stats.stop_reason,
            patterns=result.patterns,
            hits=hits,
            verified=verified,
        )
        replay.ticks.append(record)
        if slo is not None:
            from ..obs.slo import TickOutcome

            slo.record(
                TickOutcome(
                    seconds=seconds,
                    error=verified is False,
                    degraded=record.stop_reason == "deadline",
                    tier=getattr(result.stats, "degradation_tier", None),
                    path=record.path,
                )
            )
    return replay
