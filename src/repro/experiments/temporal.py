"""Operational evaluation: the full Fig. 1 loop over a continuous trace.

Where Fig. 8/9 evaluate localizers on frozen alarmed snapshots, this
harness evaluates the *whole service* — forecaster, alarm, detector,
localizer — against a trace with scheduled incidents, reporting the
quantities an SRE team actually tunes for:

* **detection rate / delay** — was each incident alarmed, and how many
  intervals after onset;
* **false alarms** — alarmed intervals with no active incident;
* **localization accuracy at alarm time** — among the intervals that both
  had an active incident and raised an alarm, the fraction whose active
  scopes appear in the report's top-k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.attribute import AttributeCombination
from ..data.cdn_simulator import CDNSimulator
from ..data.trace import IncidentSchedule, generate_trace
from ..service.pipeline import IncidentReport, LocalizationService

__all__ = ["TemporalEvaluation", "evaluate_service"]


@dataclass
class TemporalEvaluation:
    """Outcome of one service-over-trace run."""

    n_steps: int = 0
    #: step -> report for every alarmed interval.
    reports: Dict[int, IncidentReport] = field(default_factory=dict)
    #: steps with an active incident.
    incident_steps: List[int] = field(default_factory=list)
    #: per-incident alarm delay in intervals (None = never alarmed).
    detection_delays: Dict[int, Optional[int]] = field(default_factory=dict)
    #: alarmed steps with no active incident.
    false_alarm_steps: List[int] = field(default_factory=list)
    #: (step, truth, reported) for alarmed incident steps.
    localizations: List[Tuple[int, Tuple[AttributeCombination, ...], List[AttributeCombination]]] = field(
        default_factory=list
    )

    @property
    def detection_rate(self) -> float:
        """Fraction of incidents that were alarmed at least once."""
        if not self.detection_delays:
            return 1.0
        detected = sum(1 for d in self.detection_delays.values() if d is not None)
        return detected / len(self.detection_delays)

    @property
    def mean_detection_delay(self) -> Optional[float]:
        """Mean intervals from onset to first alarm (detected incidents only)."""
        delays = [d for d in self.detection_delays.values() if d is not None]
        if not delays:
            return None
        return sum(delays) / len(delays)

    @property
    def false_alarm_rate(self) -> float:
        """False alarms per quiet interval."""
        quiet = self.n_steps - len(self.incident_steps)
        if quiet <= 0:
            return 0.0
        return len(self.false_alarm_steps) / quiet

    def localization_accuracy(self, k: int = 3) -> float:
        """Fraction of alarmed incident intervals whose truth scopes all
        appear in the report's top-``k``."""
        if not self.localizations:
            return 0.0
        hits = 0
        for __, truth, reported in self.localizations:
            top = reported[:k]
            if all(pattern in top for pattern in truth):
                hits += 1
        return hits / len(self.localizations)


def evaluate_service(
    service: LocalizationService,
    simulator: CDNSimulator,
    schedule: IncidentSchedule,
    n_steps: int,
    sample_every: int = 30,
    start_minute: int = 0,
) -> TemporalEvaluation:
    """Drive *service* through the trace and collect operational metrics.

    The service must already be warmed up (its forecaster needs history);
    intervals observed here continue its internal state.
    """
    evaluation = TemporalEvaluation(n_steps=n_steps)
    incident_first_step: Dict[int, int] = {
        i: incident.start for i, incident in enumerate(schedule.incidents)
    }
    evaluation.detection_delays = {i: None for i in incident_first_step}
    evaluation.incident_steps = [
        s for s in schedule.incident_steps if s < n_steps
    ]

    for step in generate_trace(
        simulator, schedule, n_steps, sample_every=sample_every, start_minute=start_minute
    ):
        report = service.observe(step.values)
        if report is None:
            continue
        evaluation.reports[step.index] = report
        if step.truth:
            evaluation.localizations.append(
                (step.index, step.truth, report.patterns)
            )
            for i, incident in enumerate(schedule.incidents):
                if incident.active_at(step.index) and evaluation.detection_delays[i] is None:
                    evaluation.detection_delays[i] = step.index - incident.start
        else:
            evaluation.false_alarm_steps.append(step.index)
    return evaluation
