"""Multi-seed replication: mean ± std for the headline comparisons.

A single generated dataset is one draw; a reproduction claim ("RAPMiner
beats FP-growth by ≥10 points RC@3") should hold across draws.  This
module re-runs the RAPMD comparison over several generator seeds and
aggregates per-method statistics, giving EXPERIMENTS.md its error bars
and the shape tests a variance-aware basis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..data.rapmd import RAPMDConfig, generate_rapmd
from .presets import ExperimentPreset, fast_preset, paper_methods
from .runner import run_cases

__all__ = ["SeedStatistics", "replicate_rapmd_comparison"]


@dataclass
class SeedStatistics:
    """Per-method score samples across seeds."""

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, method_name: str, value: float) -> None:
        self.samples.setdefault(method_name, []).append(value)

    def mean(self, method_name: str) -> float:
        values = self.samples[method_name]
        return sum(values) / len(values)

    def std(self, method_name: str) -> float:
        """Sample standard deviation (0 for fewer than two samples)."""
        values = self.samples[method_name]
        if len(values) < 2:
            return 0.0
        mu = self.mean(method_name)
        return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))

    def summary(self) -> Dict[str, str]:
        """``method -> "mean ± std"`` rendering."""
        return {
            name: f"{self.mean(name):.3f} ± {self.std(name):.3f}"
            for name in self.samples
        }

    def always_better(self, method_a: str, method_b: str, margin: float = 0.0) -> bool:
        """True when A beats B by at least *margin* on *every* seed."""
        a = self.samples[method_a]
        b = self.samples[method_b]
        if len(a) != len(b):
            raise ValueError("methods were run on different seed counts")
        return all(x >= y + margin for x, y in zip(a, b))


def replicate_rapmd_comparison(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    preset_factory: Callable[[int], ExperimentPreset] = fast_preset,
    methods_factory: Callable[[], Sequence] = paper_methods,
    k: int = 3,
) -> SeedStatistics:
    """RC@k of the cohort on a fresh RAPMD per seed.

    ``preset_factory(seed)`` builds the dataset configuration per seed
    (use :func:`repro.experiments.presets.paper_preset` for full scale);
    ``methods_factory()`` builds a *fresh* method cohort per seed so no
    state leaks across replications.
    """
    statistics = SeedStatistics()
    for seed in seeds:
        preset = preset_factory(seed)
        cases = preset.rapmd_cases()
        for method in methods_factory():
            evaluation = run_cases(method, cases, k=k)
            statistics.add(method.name, evaluation.recall_at(k))
    return statistics
