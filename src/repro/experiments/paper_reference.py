"""The paper's published numbers, as machine-readable reference data.

Digitized from the RAPMiner paper's text and figures (DSN 2022).  Exact
values come from the prose (§V-E/F/H quote them); figure-only values are
approximate read-offs and are marked as such via :data:`APPROXIMATE`.
Used by the report builder to print paper-vs-measured columns and by the
documentation tests to keep EXPERIMENTS.md honest.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "TABLE4",
    "TABLE6",
    "FIG8A_F1",
    "FIG8B_RC",
    "ADTRIBUTOR_RAPMD_RC",
    "APPROXIMATE",
    "fig8a_reference",
]

#: Table IV, quoted exactly.
TABLE4: Dict[int, float] = {1: 0.5, 2: 0.75, 3: 0.875, 4: 0.9375, 5: 0.96875}

#: Table VI, quoted exactly (RC@3 in percent, time in seconds).
TABLE6 = {
    "rc3_with_deletion": 0.814,
    "rc3_without_deletion": 0.863,
    "seconds_with_deletion": 0.618,
    "seconds_without_deletion": 1.067,
    "efficiency_improvement": 0.4207,
    "effectiveness_decrease": 0.0487,
}

#: Fig. 8(a) F1 values the prose quotes exactly, keyed (method, group).
#: Only the per-group *winners* are given numerically in the text.
FIG8A_F1: Dict[Tuple[str, Tuple[int, int]], float] = {
    ("RAPMiner", (1, 1)): 1.0,
    ("RAPMiner", (1, 2)): 0.995,
    ("RAPMiner", (1, 3)): 0.985,
    ("RAPMiner", (3, 1)): 1.0,
    ("RAPMiner", (3, 2)): 0.967,
    ("Squeeze", (2, 2)): 0.970,
    ("Squeeze", (2, 3)): 0.982,
    ("FP-growth", (2, 1)): 1.0,
    ("FP-growth", (3, 3)): 0.963,
}

#: Fig. 8(b): the prose gives RAPMiner "above 80%" (Table VI pins 81.4%
#: for RC@3 with deletion) and FP-growth "at least 10% lower".
FIG8B_RC: Dict[str, float] = {
    "RAPMiner RC@3": 0.814,
}

#: "its RC@k can reach about 33%" for Adtributor on RAPMD.
ADTRIBUTOR_RAPMD_RC: float = 0.33

#: Values read off figures rather than quoted in prose.
APPROXIMATE = frozenset({"ADTRIBUTOR_RAPMD_RC"})


def fig8a_reference(method: str, group: Tuple[int, int]) -> Optional[float]:
    """The paper's exact F1 for (method, group), when the prose quotes one."""
    return FIG8A_F1.get((method, group))
