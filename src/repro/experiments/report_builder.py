"""One-shot reproduction report: every table/figure into a Markdown document.

``build_report`` executes the complete evaluation (Fig. 8(a)/(b),
Fig. 9(a)/(b), Fig. 10(a)/(b), Tables IV and VI, plus the extension
studies when requested) at a chosen preset scale and renders a single
Markdown report.  The committed EXPERIMENTS.md is a curated version of
this output with paper-comparison commentary; the builder exists so a
fresh environment can regenerate the raw numbers with one call::

    from repro.experiments.report_builder import build_report
    text = build_report(scale="paper", seed=1)
    Path("report.md").write_text(text)

or ``python -m repro.experiments.report_builder --scale paper``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .extensions import attribute_scaling_study, noise_level_study
from .figures import (
    figure8a,
    figure8b,
    figure9a,
    figure9b,
    figure10a,
    figure10b,
    run_rapmd_comparison,
    run_squeeze_comparison,
)
from .paper_reference import FIG8B_RC, TABLE6
from .presets import fast_preset, paper_preset
from .reporting import (
    format_percent,
    format_seconds,
    render_bar_chart,
    render_series_table,
    render_table,
)
from .tables import table4, table6

__all__ = ["ReportSections", "build_report"]

GROUP_ORDER = [(d, r) for d in (1, 2, 3) for r in (1, 2, 3)]


@dataclass
class ReportSections:
    """Which parts of the evaluation to run."""

    squeeze: bool = True
    rapmd: bool = True
    sensitivity: bool = True
    ablation: bool = True
    extensions: bool = False


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n{body}\n"


def build_report(
    scale: str = "fast",
    seed: int = 1,
    sections: Optional[ReportSections] = None,
    methods: Optional[Sequence] = None,
) -> str:
    """Run the evaluation and return the Markdown report text."""
    if scale not in ("fast", "paper"):
        raise ValueError("scale must be 'fast' or 'paper'")
    sections = sections if sections is not None else ReportSections()
    preset = paper_preset(seed) if scale == "paper" else fast_preset(seed)

    parts: List[str] = [
        "# RAPMiner reproduction report",
        "",
        f"preset: **{preset.name}**, seed: **{seed}**",
        "",
    ]

    parts.append(
        _section(
            "Table IV — DecreaseRatio@k",
            render_table(
                ["k"] + [str(k) for k in table4()],
                [["DecreaseRatio@k"] + [f"{v:.5f}" for v in table4().values()]],
            ),
        )
    )

    if sections.squeeze:
        squeeze_cases = preset.squeeze_cases()
        evaluations = run_squeeze_comparison(squeeze_cases, methods)
        parts.append(
            _section(
                "Fig. 8(a) — F1 on Squeeze-B0 by (n_dim, n_raps)",
                render_series_table(figure8a(evaluations), column_order=GROUP_ORDER),
            )
        )
        parts.append(
            _section(
                "Fig. 9(a) — mean running time (s) on Squeeze-B0",
                render_series_table(
                    figure9a(evaluations), value_format="{:.4f}", column_order=GROUP_ORDER
                ),
            )
        )

    rapmd_cases = None
    if sections.rapmd or sections.sensitivity or sections.ablation:
        rapmd_cases = preset.rapmd_cases()

    if sections.rapmd:
        evaluations = run_rapmd_comparison(rapmd_cases, methods)
        rc = figure8b(evaluations)
        body = render_series_table(rc, column_order=[3, 4, 5], first_header="method \\ k")
        body += "\n\nRC@3, measured (paper quotes RAPMiner at "
        body += f"{FIG8B_RC['RAPMiner RC@3']:.3f}):\n\n```\n"
        body += render_bar_chart({name: series[3] for name, series in rc.items()})
        body += "\n```"
        parts.append(_section("Fig. 8(b) — RC@k on RAPMD", body))
        seconds = figure9b(evaluations)
        body = render_table(
            ["method", "mean time"],
            [[name, format_seconds(s)] for name, s in seconds.items()],
        )
        body += "\n\n```\n" + render_bar_chart(seconds, value_format="{:.4f}s") + "\n```"
        parts.append(_section("Fig. 9(b) — mean running time on RAPMD", body))

    if sections.sensitivity:
        curve_a = figure10a(rapmd_cases)
        curve_b = figure10b(rapmd_cases)
        parts.append(
            _section(
                "Fig. 10(a) — RC@3 vs t_CP",
                render_table(
                    ["t_CP"] + [f"{t:g}" for t in curve_a],
                    [["RC@3"] + [f"{v:.3f}" for v in curve_a.values()]],
                ),
            )
        )
        parts.append(
            _section(
                "Fig. 10(b) — RC@3 vs t_conf",
                render_table(
                    ["t_conf"] + [f"{t:g}" for t in curve_b],
                    [["RC@3"] + [f"{v:.3f}" for v in curve_b.values()]],
                ),
            )
        )

    if sections.ablation:
        ablation = table6(rapmd_cases)
        body = render_table(
            ["variant", "RC@3", "mean time"],
            [
                [
                    "with deletion",
                    f"{ablation.rc3_with_deletion * 100:.1f}%",
                    format_seconds(ablation.seconds_with_deletion),
                ],
                [
                    "without deletion",
                    f"{ablation.rc3_without_deletion * 100:.1f}%",
                    format_seconds(ablation.seconds_without_deletion),
                ],
            ],
        )
        body += (
            f"\n\nefficiency improvement: {format_percent(ablation.efficiency_improvement)} "
            f"(paper: {format_percent(TABLE6['efficiency_improvement'])}); "
            f"effectiveness decreased: {format_percent(ablation.effectiveness_decrease)} "
            f"(paper: {format_percent(TABLE6['effectiveness_decrease'])})"
        )
        parts.append(_section("Table VI — redundant-attribute-deletion ablation", body))

    if sections.extensions:
        noise = noise_level_study(seed=seed)
        parts.append(
            _section(
                "Extension — RAPMiner F1 vs label-noise level",
                render_table(
                    ["level"] + list(noise),
                    [["mean F1"] + [f"{v:.3f}" for v in noise.values()]],
                ),
            )
        )
        by_attributes, by_dimension = attribute_scaling_study(seed=seed)
        parts.append(
            _section(
                "Extension — running time vs schema width (RAP dim fixed)",
                render_table(
                    ["n_attributes", "mean time (ms)", "kept attrs"],
                    [
                        [
                            str(r.n_attributes),
                            f"{r.mean_seconds * 1000:.2f}",
                            f"{r.mean_kept_attributes:.1f}",
                        ]
                        for r in by_attributes
                    ],
                ),
            )
        )
        parts.append(
            _section(
                "Extension — running time vs RAP dimension (width fixed)",
                render_table(
                    ["rap_dim", "mean time (ms)", "kept attrs"],
                    [
                        [
                            str(r.rap_dimension),
                            f"{r.mean_seconds * 1000:.2f}",
                            f"{r.mean_kept_attributes:.1f}",
                        ]
                        for r in by_dimension
                    ],
                ),
            )
        )

    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["fast", "paper"], default="fast")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None, help="write to file instead of stdout")
    parser.add_argument("--extensions", action="store_true")
    args = parser.parse_args(argv)
    text = build_report(
        scale=args.scale,
        seed=args.seed,
        sections=ReportSections(extensions=args.extensions),
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
