"""Experiment harness: one entry point per table/figure of the paper."""

from .figures import (
    DEFAULT_TCONF_GRID,
    DEFAULT_TCP_GRID,
    figure8a,
    figure8b,
    figure9a,
    figure9b,
    figure10a,
    figure10b,
    run_rapmd_comparison,
    run_squeeze_comparison,
)
from .crossover import SpreadStudyConfig, generate_spread_cases, magnitude_spread_study
from .extensions import (
    AttributeScalingResult,
    attribute_scaling_study,
    detector_robustness_study,
    noise_level_study,
)
from .multi_seed import SeedStatistics, replicate_rapmd_comparison
from .report_builder import ReportSections, build_report
from .temporal import TemporalEvaluation, evaluate_service
from .presets import ExperimentPreset, all_methods, fast_preset, paper_methods, paper_preset
from .reporting import (
    format_group,
    format_percent,
    format_seconds,
    render_series_table,
    render_table,
)
from .runner import CaseResult, MethodEvaluation, run_cases
from .tables import Table6Result, table4, table5, table6

__all__ = [
    "DEFAULT_TCONF_GRID",
    "DEFAULT_TCP_GRID",
    "figure8a",
    "figure8b",
    "figure9a",
    "figure9b",
    "figure10a",
    "figure10b",
    "run_rapmd_comparison",
    "run_squeeze_comparison",
    "SpreadStudyConfig",
    "generate_spread_cases",
    "magnitude_spread_study",
    "AttributeScalingResult",
    "attribute_scaling_study",
    "detector_robustness_study",
    "noise_level_study",
    "SeedStatistics",
    "replicate_rapmd_comparison",
    "ReportSections",
    "build_report",
    "TemporalEvaluation",
    "evaluate_service",
    "ExperimentPreset",
    "all_methods",
    "fast_preset",
    "paper_methods",
    "paper_preset",
    "format_group",
    "format_percent",
    "format_seconds",
    "render_series_table",
    "render_table",
    "CaseResult",
    "MethodEvaluation",
    "run_cases",
    "Table6Result",
    "table4",
    "table5",
    "table6",
]
