"""Regeneration of every figure in the paper's evaluation (§V-E…§V-G).

Each ``figure*`` function returns the figure's data series as plain
dictionaries (method → group/series → value) ready for
:mod:`repro.experiments.reporting` to render; the comparison runners are
shared so effectiveness (Fig. 8) and efficiency (Fig. 9) come from the
same executions, exactly as in the paper.

| Function    | Paper figure | Content                                           |
|-------------|--------------|---------------------------------------------------|
| figure8a    | Fig. 8(a)    | F1 per (n_dim, n_raps) group on Squeeze-B0        |
| figure8b    | Fig. 8(b)    | RC@3/4/5 on RAPMD                                 |
| figure9a    | Fig. 9(a)    | mean running time per group on Squeeze-B0         |
| figure9b    | Fig. 9(b)    | mean running time on RAPMD                        |
| figure10a   | Fig. 10(a)   | RAPMiner RC@3 vs t_CP                             |
| figure10b   | Fig. 10(b)   | RAPMiner RC@3 vs t_conf                           |
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.config import RAPMinerConfig
from ..core.miner import RAPMiner
from ..data.injection import LocalizationCase
from .presets import ExperimentPreset, fast_preset, paper_methods
from .runner import MethodEvaluation, run_cases

__all__ = [
    "run_squeeze_comparison",
    "run_rapmd_comparison",
    "figure8a",
    "figure8b",
    "figure9a",
    "figure9b",
    "figure10a",
    "figure10b",
    "DEFAULT_TCP_GRID",
    "DEFAULT_TCONF_GRID",
]

#: The sensitivity grids of Fig. 10 (t_CP kept below 0.1; t_conf above 0.5).
DEFAULT_TCP_GRID: Tuple[float, ...] = (0.005, 0.01, 0.02, 0.04, 0.07, 0.10)
DEFAULT_TCONF_GRID: Tuple[float, ...] = (0.55, 0.65, 0.75, 0.85, 0.95)

#: k used by the RAPMD recall metrics.
RAPMD_KS: Tuple[int, ...] = (3, 4, 5)


def run_squeeze_comparison(
    cases: Sequence[LocalizationCase],
    methods: Optional[Sequence] = None,
    n_workers: int = 1,
) -> Dict[str, MethodEvaluation]:
    """Run the cohort on Squeeze-style cases under the F1 protocol.

    ``n_workers`` shards each method's cases over a process pool (see
    :func:`repro.experiments.runner.run_cases`); figures are unchanged by
    it — batch output is bit-identical to serial.
    """
    methods = list(methods) if methods is not None else paper_methods()
    return {
        m.name: run_cases(m, cases, k_from_truth=True, n_workers=n_workers)
        for m in methods
    }


def run_rapmd_comparison(
    cases: Sequence[LocalizationCase],
    methods: Optional[Sequence] = None,
    k: int = max(RAPMD_KS),
    n_workers: int = 1,
) -> Dict[str, MethodEvaluation]:
    """Run the cohort on RAPMD cases under the top-k protocol.

    ``n_workers`` as in :func:`run_squeeze_comparison`.
    """
    methods = list(methods) if methods is not None else paper_methods()
    return {m.name: run_cases(m, cases, k=k, n_workers=n_workers) for m in methods}


# -- Fig. 8: effectiveness -----------------------------------------------------


def figure8a(
    evaluations: Dict[str, MethodEvaluation],
) -> Dict[str, Dict[Hashable, float]]:
    """Fig. 8(a): per-group mean F1 of each method on Squeeze-B0."""
    return {name: ev.group_mean_f1() for name, ev in evaluations.items()}


def figure8b(
    evaluations: Dict[str, MethodEvaluation],
    ks: Sequence[int] = RAPMD_KS,
) -> Dict[str, Dict[int, float]]:
    """Fig. 8(b): RC@k of each method on RAPMD."""
    return {name: {k: ev.recall_at(k) for k in ks} for name, ev in evaluations.items()}


# -- Fig. 9: efficiency --------------------------------------------------------


def figure9a(
    evaluations: Dict[str, MethodEvaluation],
) -> Dict[str, Dict[Hashable, float]]:
    """Fig. 9(a): per-group mean running time (seconds) on Squeeze-B0."""
    return {name: ev.group_mean_seconds() for name, ev in evaluations.items()}


def figure9b(evaluations: Dict[str, MethodEvaluation]) -> Dict[str, float]:
    """Fig. 9(b): mean running time (seconds) on RAPMD."""
    return {name: ev.mean_seconds for name, ev in evaluations.items()}


# -- Fig. 10: parameter sensitivity ---------------------------------------------


def figure10a(
    cases: Sequence[LocalizationCase],
    t_cp_values: Sequence[float] = DEFAULT_TCP_GRID,
    t_conf: float = 0.8,
    k: int = 3,
) -> Dict[float, float]:
    """Fig. 10(a): RAPMiner RC@k on RAPMD as ``t_CP`` varies."""
    curve: Dict[float, float] = {}
    for t_cp in t_cp_values:
        miner = RAPMiner(RAPMinerConfig(t_cp=t_cp, t_conf=t_conf))
        curve[t_cp] = run_cases(miner, cases, k=k).recall_at(k)
    return curve


def figure10b(
    cases: Sequence[LocalizationCase],
    t_conf_values: Sequence[float] = DEFAULT_TCONF_GRID,
    t_cp: float = 0.005,
    k: int = 3,
) -> Dict[float, float]:
    """Fig. 10(b): RAPMiner RC@k on RAPMD as ``t_conf`` varies."""
    curve: Dict[float, float] = {}
    for t_conf in t_conf_values:
        miner = RAPMiner(RAPMinerConfig(t_cp=t_cp, t_conf=t_conf))
        curve[t_conf] = run_cases(miner, cases, k=k).recall_at(k)
    return curve
