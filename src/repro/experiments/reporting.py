"""Plain-text rendering of experiment outputs.

The benchmark harness and the example scripts print the paper's rows and
series through these helpers, so every regenerated table/figure has a
stable, diffable textual form (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "render_table",
    "render_series_table",
    "render_bar_chart",
    "format_group",
    "format_seconds",
    "format_percent",
]


def format_group(group: Hashable) -> str:
    """Render a (n_dim, n_raps) group key the way the paper writes it."""
    if isinstance(group, (tuple, list)) and len(group) == 2:
        return f"({group[0]},{group[1]})"
    return str(group)


def format_seconds(seconds: float) -> str:
    """Seconds with magnitude-appropriate precision (the Fig. 9 scale)."""
    if seconds >= 10.0:
        return f"{seconds:.1f}s"
    if seconds >= 0.01:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000.0:.2f}ms"


def format_percent(fraction: float) -> str:
    return f"{fraction * 100.0:.2f}%"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """ASCII table with per-column width fitting."""
    materialized: List[List[str]] = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(widths):
            raise ValueError("row arity does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)) + " |"

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def render_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    value_format: str = "{:.3f}",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart, one row per labelled value.

    Gives the paper's bar figures (Fig. 8/9) a terminal-friendly shape
    next to the exact tables.  Bars scale to *max_value* (default: the
    data maximum); zero/negative values render as empty bars.
    """
    if width < 1:
        raise ValueError("width must be positive")
    items = list(values.items())
    if not items:
        return "(no data)"
    peak = max_value if max_value is not None else max(v for __, v in items)
    if peak <= 0.0:
        peak = 1.0
    label_width = max(len(str(label)) for label, __ in items)
    lines = []
    for label, value in items:
        filled = int(round(width * max(value, 0.0) / peak))
        filled = min(filled, width)
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{str(label).ljust(label_width)} |{bar}| {value_format.format(value)}")
    return "\n".join(lines)


def render_series_table(
    series: Mapping[str, Mapping[Hashable, float]],
    value_format: str = "{:.3f}",
    column_order: Optional[Sequence[Hashable]] = None,
    first_header: str = "method",
) -> str:
    """Render {row_name: {column_key: value}} as an ASCII table.

    Used for the Fig. 8(a)/9(a) method-by-group matrices and the Fig. 8(b)
    method-by-k matrix.
    """
    columns: List[Hashable] = []
    if column_order is not None:
        columns = list(column_order)
    else:
        seen: Dict[Hashable, None] = {}
        for row in series.values():
            for key in row:
                if key not in seen:
                    seen[key] = None
        columns = sorted(seen, key=lambda c: (str(type(c)), str(c)))

    headers = [first_header] + [format_group(c) for c in columns]
    rows = []
    for name, row in series.items():
        cells = [name]
        for column in columns:
            value = row.get(column)
            cells.append("-" if value is None else value_format.format(value))
        rows.append(cells)
    return render_table(headers, rows)
