"""Regeneration of the paper's tables (IV, V, VI).

* **Table IV** — the closed-form ``DecreaseRatio@k`` of redundant-attribute
  deletion (Eq. 2): pure arithmetic, no data needed.
* **Table V** — the vertex ↔ attribute-combination mapping of the
  3-attribute example lattice; structural, regenerated from the cuboid
  enumeration.
* **Table VI** — the ablation: RAPMiner RC@3 and mean running time on
  RAPMD with and without Algorithm 1, plus the derived efficiency
  improvement / effectiveness decrease percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.attribute import AttributeCombination
from ..core.config import RAPMinerConfig
from ..core.cuboid import decrease_ratio, decrease_ratio_lower_bound, lattice_vertex_labels
from ..core.miner import RAPMiner
from ..data.injection import LocalizationCase
from ..data.schema import paper_example_schema
from .runner import run_cases

__all__ = ["table4", "table5", "Table6Result", "table6"]


def table4(ks: Sequence[int] = (1, 2, 3, 4, 5), n_attributes: Optional[int] = None) -> Dict[int, float]:
    """Table IV: fraction of cuboids removed by deleting ``k`` attributes.

    With ``n_attributes=None`` returns the paper's tabulated lower bounds
    ``(2**k - 1) / 2**k``; with a concrete ``n_attributes`` returns the
    exact Eq. 2 ratio for that lattice.
    """
    if n_attributes is None:
        return {k: decrease_ratio_lower_bound(k) for k in ks}
    return {k: decrease_ratio(n_attributes, k) for k in ks}


def table5() -> Dict[str, AttributeCombination]:
    """Table V: ``layer-index`` labels of the (3, 2, 2) example lattice."""
    return lattice_vertex_labels(paper_example_schema(), max_layer=3)


@dataclass
class Table6Result:
    """Table VI rows plus the derived percentages."""

    rc3_with_deletion: float
    rc3_without_deletion: float
    seconds_with_deletion: float
    seconds_without_deletion: float

    @property
    def efficiency_improvement(self) -> float:
        """Relative running-time reduction from Algorithm 1 (paper: 42.07%)."""
        if self.seconds_without_deletion == 0.0:
            return 0.0
        return (
            self.seconds_without_deletion - self.seconds_with_deletion
        ) / self.seconds_without_deletion

    @property
    def effectiveness_decrease(self) -> float:
        """Relative RC@3 loss from Algorithm 1 (paper: 4.87%)."""
        if self.rc3_without_deletion == 0.0:
            return 0.0
        return (
            self.rc3_without_deletion - self.rc3_with_deletion
        ) / self.rc3_without_deletion


def table6(
    cases: Sequence[LocalizationCase],
    config: Optional[RAPMinerConfig] = None,
    k: int = 3,
) -> Table6Result:
    """Table VI: the redundant-attribute-deletion ablation on RAPMD."""
    base = config if config is not None else RAPMinerConfig()
    with_deletion = RAPMinerConfig(
        t_cp=base.t_cp,
        t_conf=base.t_conf,
        enable_attribute_deletion=True,
        early_stop=base.early_stop,
        max_layer=base.max_layer,
        layer_normalized_ranking=base.layer_normalized_ranking,
    )
    without_deletion = RAPMinerConfig(
        t_cp=base.t_cp,
        t_conf=base.t_conf,
        enable_attribute_deletion=False,
        early_stop=base.early_stop,
        max_layer=base.max_layer,
        layer_normalized_ranking=base.layer_normalized_ranking,
    )
    eval_with = run_cases(RAPMiner(with_deletion), cases, k=k)
    eval_without = run_cases(RAPMiner(without_deletion), cases, k=k)
    return Table6Result(
        rc3_with_deletion=eval_with.recall_at(k),
        rc3_without_deletion=eval_without.recall_at(k),
        seconds_with_deletion=eval_with.mean_seconds,
        seconds_without_deletion=eval_without.mean_seconds,
    )
