"""Uniform evaluation of localizers over case collections.

One runner drives every comparison in the paper: it executes a localizer
on each :class:`~repro.data.injection.LocalizationCase`, records the ranked
predictions and wall-clock time, and exposes the aggregations the figures
need (per-group mean F1, RC@k, mean running time).

Two evaluation protocols exist, matching §V-B:

* ``k_from_truth=True`` — the Squeeze-dataset protocol: the method returns
  exactly as many patterns as there are true RAPs, and F1 compares the two
  sets.
* ``k_from_truth=False`` with an explicit ``k`` — the RAPMD protocol: the
  method returns its top-``k`` and RC@k counts how many true RAPs appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.attribute import AttributeCombination
from ..data.injection import LocalizationCase
from ..metrics.localization import f1_score, recall_at_k
from ..metrics.timing import time_localization

__all__ = ["CaseResult", "MethodEvaluation", "run_cases"]


@dataclass
class CaseResult:
    """Outcome of one (method, case) execution."""

    case_id: str
    predicted: List[AttributeCombination]
    true_raps: Tuple[AttributeCombination, ...]
    seconds: float
    group: Optional[Hashable] = None
    #: Failure record from the fault-tolerant batch layer: when a pool
    #: shard crashes twice, its cases come back with empty predictions and
    #: the error message here instead of the whole batch raising (see
    #: :func:`repro.parallel.batch.batch_localize`).  ``None`` = clean run.
    error: Optional[str] = None

    @property
    def f1(self) -> float:
        return f1_score(self.predicted, self.true_raps)


@dataclass
class MethodEvaluation:
    """All case results of one method over one dataset."""

    method_name: str
    results: List[CaseResult] = field(default_factory=list)

    # -- aggregations ----------------------------------------------------------

    @property
    def mean_f1(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.f1 for r in self.results) / len(self.results)

    @property
    def mean_seconds(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.seconds for r in self.results) / len(self.results)

    def recall_at(self, k: int) -> float:
        return recall_at_k(((r.predicted, r.true_raps) for r in self.results), k)

    def failures(self) -> List[CaseResult]:
        """Results that carry a batch-layer error record."""
        return [r for r in self.results if r.error is not None]

    def groups(self) -> List[Hashable]:
        """Distinct case groups, in first-seen order."""
        seen: Dict[Hashable, None] = {}
        for result in self.results:
            if result.group is not None and result.group not in seen:
                seen[result.group] = None
        return list(seen)

    def by_group(self) -> Dict[Hashable, "MethodEvaluation"]:
        """Split the results per case group (e.g. the (n_dim, n_raps) keys)."""
        split: Dict[Hashable, MethodEvaluation] = {}
        for result in self.results:
            bucket = split.setdefault(result.group, MethodEvaluation(self.method_name))
            bucket.results.append(result)
        return split

    def group_mean_f1(self) -> Dict[Hashable, float]:
        return {group: ev.mean_f1 for group, ev in self.by_group().items()}

    def group_mean_seconds(self) -> Dict[Hashable, float]:
        return {group: ev.mean_seconds for group, ev in self.by_group().items()}


def run_cases(
    method,
    cases: Sequence[LocalizationCase],
    k: Optional[int] = None,
    k_from_truth: bool = False,
    group_key: str = "group",
    n_workers: int = 1,
) -> MethodEvaluation:
    """Evaluate *method* over *cases*.

    Parameters
    ----------
    method:
        Any object with ``name`` and ``localize(dataset, k)`` (the
        :class:`~repro.baselines.base.Localizer` interface).
    k:
        Fixed number of returned patterns (RAPMD protocol).  Ignored when
        ``k_from_truth`` is set.
    k_from_truth:
        Request exactly ``len(case.true_raps)`` patterns per case (the
        Squeeze-dataset F1 protocol).
    group_key:
        Metadata key used to group results (``"group"`` for the Squeeze
        dataset's ``(n_dim, n_raps)`` keys).
    n_workers:
        Shard the cases over a process pool of this size via
        :func:`repro.parallel.batch_localize`.  Results keep input order,
        ``seconds`` is still measured inside the worker per case, and the
        ranked output is bit-identical to the serial run; ``1`` (default)
        is the serial loop below.
    """
    if n_workers > 1:
        from ..parallel import BatchConfig, batch_localize

        return batch_localize(
            method,
            cases,
            k=k,
            k_from_truth=k_from_truth,
            group_key=group_key,
            config=BatchConfig(n_workers=n_workers),
        )
    evaluation = MethodEvaluation(method_name=getattr(method, "name", type(method).__name__))
    for case in cases:
        case_k = len(case.true_raps) if k_from_truth else k
        predicted, seconds = time_localization(method.localize, case.dataset, case_k)
        evaluation.results.append(
            CaseResult(
                case_id=case.case_id,
                predicted=list(predicted),
                true_raps=tuple(case.true_raps),
                seconds=seconds,
                group=case.metadata.get(group_key),
            )
        )
    return evaluation
