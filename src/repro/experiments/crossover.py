"""Assumption-violation crossover: where Squeeze loses to RAPMiner.

The paper's two datasets sit at opposite ends of one axis: the Squeeze
dataset gives every leaf of a failure the *same* relative deviation
(vertical assumption), RAPMD gives each leaf its *own* uniform draw.
This study sweeps that axis continuously — per-leaf deviations are drawn
as ``case_dev ± spread`` — and measures each method's RC@k along it,
exposing the crossover the two headline figures only show endpoint-wise:
Squeeze is competitive at spread 0 and collapses as the vertical
assumption erodes, while label-driven methods (RAPMiner, FP-growth) stay
flat because the leaf *labels* do not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cuboid import cuboids_in_layer
from ..data.dataset import FineGrainedDataset
from ..data.injection import InjectionConfig, LocalizationCase, sample_raps
from ..data.schema import schema_from_sizes
from .presets import paper_methods
from .runner import run_cases

__all__ = ["SpreadStudyConfig", "magnitude_spread_study", "generate_spread_cases"]


@dataclass
class SpreadStudyConfig:
    """Workload knobs of the spread sweep."""

    attribute_sizes: Tuple[int, ...] = (8, 6, 5, 4)
    n_cases: int = 12
    #: RAPs per case and their dimensions (Squeeze-style: one cuboid each).
    n_raps: int = 2
    rap_dimensions: Tuple[int, ...] = (1, 2)
    #: Center of the per-case anomaly magnitude.
    case_dev_center: Tuple[float, float] = (0.4, 0.6)
    #: Deviation floor for anomalous leaves whatever the spread.
    min_anomalous_dev: float = 0.12
    max_anomalous_dev: float = 0.95
    volume_log_mean: float = 4.0
    volume_log_sigma: float = 1.2
    min_rap_support: int = 4
    seed: int = 0


def generate_spread_cases(
    spread: float, config: Optional[SpreadStudyConfig] = None
) -> List[LocalizationCase]:
    """Cases whose anomalous-leaf deviations are ``case_dev ± spread``.

    ``spread = 0`` reproduces the vertical assumption exactly; large
    spreads approach RAPMD's independent-per-leaf draws.  Every *other*
    Squeeze assumption is deliberately held intact — all RAPs of a case
    live in one cuboid and case magnitudes differ — so the sweep isolates
    the vertical-assumption axis.  Leaf labels are produced by the same
    threshold detector in all settings, so label-driven methods face an
    *identical* problem at every spread.
    """
    cfg = config if config is not None else SpreadStudyConfig()
    if spread < 0.0:
        raise ValueError("spread must be non-negative")
    rng = np.random.default_rng(cfg.seed)
    schema = schema_from_sizes(cfg.attribute_sizes)
    n = schema.n_leaves
    injection = InjectionConfig()
    cases: List[LocalizationCase] = []
    for index in range(cfg.n_cases):
        v = rng.lognormal(cfg.volume_log_mean, cfg.volume_log_sigma, n)
        background = FineGrainedDataset.full(schema, v, v.copy())
        dimension = int(rng.choice(np.asarray(cfg.rap_dimensions)))
        layer_cuboids = cuboids_in_layer(schema.n_attributes, dimension)
        cuboid = layer_cuboids[int(rng.integers(len(layer_cuboids)))]
        raps = sample_raps(
            background,
            cfg.n_raps,
            rng,
            cuboid=cuboid,
            min_support=min(
                cfg.min_rap_support, max(1, schema.n_leaves // cuboid.length(schema))
            ),
        )
        case_dev = float(rng.uniform(*cfg.case_dev_center))
        # Build per-leaf deviations: shared center, bounded spread.
        dev = rng.uniform(injection.normal_dev_range[0], injection.normal_dev_range[1], n)
        truth = np.zeros(n, dtype=bool)
        for rap in raps:
            mask = background.mask_of(rap)
            jitter = rng.uniform(-spread, spread, int(mask.sum()))
            dev[mask] = np.clip(
                case_dev + jitter, cfg.min_anomalous_dev, cfg.max_anomalous_dev
            )
            truth |= mask
        f = (background.v + dev * injection.epsilon) / (1.0 - dev)
        labels = dev > injection.threshold()
        labelled = FineGrainedDataset(schema, background.codes, background.v, f, labels)
        cases.append(
            LocalizationCase(
                case_id=f"spread-{spread:.2f}-{index:03d}",
                dataset=labelled,
                true_raps=tuple(raps),
                metadata={"spread": spread, "case_dev": case_dev},
            )
        )
    return cases


def magnitude_spread_study(
    spreads: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    methods: Optional[Sequence] = None,
    k: int = 3,
    config: Optional[SpreadStudyConfig] = None,
) -> Dict[str, Dict[float, float]]:
    """RC@k per method as the vertical assumption erodes.

    Returns ``{method_name: {spread: rc_at_k}}``.
    """
    methods = list(methods) if methods is not None else paper_methods()
    results: Dict[str, Dict[float, float]] = {m.name: {} for m in methods}
    for spread in spreads:
        cases = generate_spread_cases(spread, config)
        for method in methods:
            evaluation = run_cases(method, cases, k=k)
            results[method.name][spread] = evaluation.recall_at(k)
    return results
