"""Extension studies beyond the paper's figures, validating its prose claims.

Two claims in the paper's text get no figure of their own; these studies
measure them directly:

* **Noise levels** (§V-E1): "the varying noise levels only affect the
  anomaly detection of each most fine-grained attribute combination …
  data with different noise levels is almost the same for RAPMiner [given
  equally good detection]".  :func:`noise_level_study` runs RAPMiner over
  B0–B3 (increasing label-flip probability) and reports how localization
  degrades *only* through label quality.
* **Attribute-count independence** (§V-F): "the efficiency of RAPMiner is
  not related to the total number of attributes, but the number of
  attributes contained in the RAPs".  :func:`attribute_scaling_study`
  measures running time while (a) growing the total attribute count with
  the RAP dimension fixed, and (b) growing the RAP dimension with the
  total fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import RAPMinerConfig
from ..core.miner import RAPMiner
from ..data.injection import InjectionConfig, inject_failures, sample_raps
from ..data.dataset import FineGrainedDataset
from ..data.schema import schema_from_sizes
from ..data.squeeze_dataset import NOISE_LEVELS, SqueezeDatasetConfig, generate_squeeze_dataset
from .runner import run_cases

__all__ = [
    "noise_level_study",
    "AttributeScalingResult",
    "attribute_scaling_study",
    "detector_robustness_study",
]


def noise_level_study(
    levels: Sequence[str] = ("B0", "B1", "B2", "B3"),
    cases_per_group: int = 5,
    groups: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 1), (2, 2)),
    attribute_sizes: Tuple[int, ...] = (6, 5, 4, 4),
    seed: int = 0,
    config: Optional[RAPMinerConfig] = None,
) -> Dict[str, float]:
    """Mean F1 of RAPMiner per noise level of the Squeeze-style dataset.

    Labels degrade with the level's flip probability; everything else is
    held fixed, so the curve isolates RAPMiner's dependence on detection
    quality — the paper's stated reason for evaluating on B0 only.
    """
    results: Dict[str, float] = {}
    miner = RAPMiner(config)
    for level in levels:
        if level not in NOISE_LEVELS:
            raise KeyError(f"unknown noise level {level!r}")
        cases = generate_squeeze_dataset(
            SqueezeDatasetConfig(
                attribute_sizes=attribute_sizes,
                cases_per_group=cases_per_group,
                groups=groups,
                noise_level=level,
                seed=seed,
            )
        )
        results[level] = run_cases(miner, cases, k_from_truth=True).mean_f1
    return results


@dataclass
class AttributeScalingResult:
    """One point of the attribute-scaling study."""

    n_attributes: int
    rap_dimension: int
    mean_seconds: float
    mean_kept_attributes: float
    recall_at_1: float


def _scaling_schema(n_attributes: int, target_leaves: int):
    """A schema of *n_attributes* whose leaf count stays near *target_leaves*.

    Holding the leaf-table size (the data volume) roughly constant while
    the attribute count varies is what isolates the paper's §V-F claim —
    otherwise a wider schema also means exponentially more leaves and the
    two effects confound.
    """
    elements = max(2, int(round(target_leaves ** (1.0 / n_attributes))))
    return schema_from_sizes([elements] * n_attributes)


def _scaling_cases(
    n_attributes: int,
    rap_dimension: int,
    n_cases: int,
    target_leaves: int,
    rng: np.random.Generator,
) -> List:
    from ..data.injection import LocalizationCase

    schema = _scaling_schema(n_attributes, target_leaves)
    n = schema.n_leaves
    cases = []
    for index in range(n_cases):
        v = rng.lognormal(3.0, 1.0, n)
        background = FineGrainedDataset.full(schema, v, v.copy())
        raps = sample_raps(
            background, 1, rng, dimensions=[rap_dimension], min_support=2
        )
        labelled, __ = inject_failures(background, raps, rng, InjectionConfig())
        cases.append(
            LocalizationCase(
                case_id=f"scale-{n_attributes}a-{rap_dimension}d-{index}",
                dataset=labelled,
                true_raps=tuple(raps),
            )
        )
    return cases


def attribute_scaling_study(
    attribute_counts: Sequence[int] = (4, 5, 6, 7),
    rap_dimensions: Sequence[int] = (1, 2, 3),
    fixed_rap_dimension: int = 1,
    fixed_attribute_count: int = 6,
    n_cases: int = 8,
    target_leaves: int = 2048,
    seed: int = 0,
    config: Optional[RAPMinerConfig] = None,
) -> Tuple[List[AttributeScalingResult], List[AttributeScalingResult]]:
    """Measure the §V-F efficiency claim.

    The leaf-table size is held near *target_leaves* across all points so
    the series vary only the quantity under study.

    Returns
    -------
    (by_attribute_count, by_rap_dimension):
        The first series grows the schema with the RAP dimension fixed —
        the paper predicts roughly flat running time, because Algorithm 1
        deletes every attribute outside the RAP.  The second grows the RAP
        dimension with the schema fixed — time should rise with the BFS
        depth.
    """
    rng = np.random.default_rng(seed)
    miner = RAPMiner(config)

    def measure(n_attributes: int, rap_dimension: int) -> AttributeScalingResult:
        cases = _scaling_cases(
            n_attributes, rap_dimension, n_cases, target_leaves, rng
        )
        evaluation = run_cases(miner, cases, k=1)
        kept_total = 0
        for case in cases:
            run = miner.run(case.dataset, k=1)
            kept_total += len(run.deletion.kept_indices) if run.deletion else n_attributes
        return AttributeScalingResult(
            n_attributes=n_attributes,
            rap_dimension=rap_dimension,
            mean_seconds=evaluation.mean_seconds,
            mean_kept_attributes=kept_total / len(cases),
            recall_at_1=evaluation.recall_at(1),
        )

    by_attributes = [measure(n, fixed_rap_dimension) for n in attribute_counts]
    by_dimension = [measure(fixed_attribute_count, d) for d in rap_dimensions]
    return by_attributes, by_dimension


def detector_robustness_study(
    cases: Sequence,
    false_negative_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    false_positive_rates: Sequence[float] = (0.0, 0.01, 0.02, 0.05),
    k: int = 3,
    seed: int = 0,
    config: Optional[RAPMinerConfig] = None,
) -> Dict[str, Dict[float, float]]:
    """RAPMiner's RC@k under *asymmetric* detector errors.

    The paper's §V-E1 notes RAPMiner's quality is bounded by the leaf
    detector's; this study separates the two error directions, which
    stress different parts of the algorithm:

    * **false negatives** (missed anomalous leaves) lower the Anomaly
      Confidence of true RAPs — tolerated until confidence falls through
      ``t_conf`` (Criteria 2's "error-tolerant rate");
    * **false positives** (healthy leaves flagged) raise the confidence of
      unrelated combinations and blunt Algorithm 1's CP signal.

    Returns ``{"false_negative": {rate: rc}, "false_positive": {rate: rc}}``
    computed over perturbed copies of *cases*.
    """
    rng = np.random.default_rng(seed)
    miner = RAPMiner(config)

    def perturb(case, fn_rate: float, fp_rate: float):
        from ..data.injection import LocalizationCase

        labels = case.dataset.labels.copy()
        if fn_rate > 0.0:
            anomalous = np.flatnonzero(labels)
            drop = anomalous[rng.random(anomalous.size) < fn_rate]
            labels[drop] = False
        if fp_rate > 0.0:
            normal = np.flatnonzero(~case.dataset.labels)
            add = normal[rng.random(normal.size) < fp_rate]
            labels[add] = True
        return LocalizationCase(
            case_id=case.case_id,
            dataset=case.dataset.with_labels(labels),
            true_raps=case.true_raps,
            metadata=dict(case.metadata),
        )

    results: Dict[str, Dict[float, float]] = {"false_negative": {}, "false_positive": {}}
    for rate in false_negative_rates:
        perturbed = [perturb(case, rate, 0.0) for case in cases]
        results["false_negative"][rate] = run_cases(miner, perturbed, k=k).recall_at(k)
    for rate in false_positive_rates:
        perturbed = [perturb(case, 0.0, rate) for case in cases]
        results["false_positive"][rate] = run_cases(miner, perturbed, k=k).recall_at(k)
    return results
