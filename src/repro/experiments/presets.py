"""Experiment presets: dataset scales and the paper's method cohort.

``paper_preset`` matches the paper's scale (full Table I CDN schema, 105
RAPMD failures, 9 Squeeze groups); ``fast_preset`` shrinks everything so
the whole table/figure suite runs in seconds — used by tests and the
pytest-benchmark harness, where relative shapes (who wins, by how much)
are what is checked, not absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..baselines import (
    Adtributor,
    AssociationRuleLocalizer,
    HotSpot,
    IDice,
    Localizer,
    RecursiveAdtributor,
    Squeeze,
)
from ..core.config import RAPMinerConfig
from ..core.miner import RAPMiner
from ..data.cdn_simulator import CDNSimulatorConfig
from ..data.injection import LocalizationCase
from ..data.rapmd import RAPMDConfig, generate_rapmd
from ..data.schema import cdn_schema
from ..data.squeeze_dataset import SqueezeDatasetConfig, generate_squeeze_dataset

__all__ = ["ExperimentPreset", "fast_preset", "paper_preset", "paper_methods", "all_methods"]


@dataclass
class ExperimentPreset:
    """A reproducible pair of dataset configurations."""

    name: str
    squeeze_config: SqueezeDatasetConfig
    rapmd_config: RAPMDConfig
    #: Builder of the CDN schema RAPMD is generated over.
    rapmd_schema: Callable = cdn_schema

    def squeeze_cases(self) -> List[LocalizationCase]:
        return generate_squeeze_dataset(self.squeeze_config)

    def rapmd_cases(self) -> List[LocalizationCase]:
        return generate_rapmd(self.rapmd_schema(), self.rapmd_config)


def fast_preset(seed: int = 0) -> ExperimentPreset:
    """Seconds-scale preset for tests and benchmarks."""
    return ExperimentPreset(
        name="fast",
        squeeze_config=SqueezeDatasetConfig(
            attribute_sizes=(6, 5, 4, 4),
            cases_per_group=4,
            seed=seed,
        ),
        rapmd_config=RAPMDConfig(n_cases=15, n_days=7, seed=seed),
        rapmd_schema=lambda: cdn_schema(10, 3, 3, 8),
    )


def paper_preset(seed: int = 0) -> ExperimentPreset:
    """Paper-scale preset (full CDN schema, 105 failures, 9 groups)."""
    return ExperimentPreset(
        name="paper",
        squeeze_config=SqueezeDatasetConfig(
            attribute_sizes=(10, 8, 6, 5),
            cases_per_group=25,
            seed=seed,
        ),
        rapmd_config=RAPMDConfig(n_cases=105, n_days=35, seed=seed),
        rapmd_schema=cdn_schema,
    )


def paper_methods(rapminer_config: RAPMinerConfig | None = None) -> List[Localizer]:
    """The five methods of Fig. 8/9, in the paper's presentation order."""
    return [
        RAPMiner(rapminer_config),
        Squeeze(),
        AssociationRuleLocalizer(),
        Adtributor(),
        IDice(),
    ]


def all_methods() -> List[Localizer]:
    """Paper cohort plus the HotSpot and R-Adtributor extensions."""
    return paper_methods() + [HotSpot(), RecursiveAdtributor()]
