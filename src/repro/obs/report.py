"""Human-readable summaries of one captured run.

Turns a :class:`~repro.obs.trace.Collector` into the two artefacts an
operator actually reads:

* :func:`render_summary` — per-span-name duration statistics (count,
  total, mean, p50/p95 via
  :class:`~repro.metrics.timing.TimingAccumulator`) followed by every
  scalar metric, in one fixed-width block.
* :func:`incident_timeline` — the per-incident audit trail: each
  ``service.interval`` span of an alarmed step expanded into its ordered
  child stages (forecast -> alarm -> detect -> localize -> impact) with
  durations, so one incident's latency budget reads top to bottom.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics.timing import TimingAccumulator
from .trace import Collector, Span

__all__ = ["span_accumulators", "render_summary", "incident_timeline"]


def span_accumulators(collector: Collector) -> Dict[str, TimingAccumulator]:
    """Span durations grouped by name, in first-completion order."""
    accumulators: Dict[str, TimingAccumulator] = {}
    for span in collector.spans:
        accumulators.setdefault(span.name, TimingAccumulator()).add(span.duration_s)
    return accumulators


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_summary(collector: Collector) -> str:
    """Fixed-width span and metric summary of one captured run."""
    lines: List[str] = []
    accumulators = span_accumulators(collector)
    if accumulators:
        name_width = max(len(name) for name in accumulators)
        lines.append("spans:")
        header = (
            f"  {'name'.ljust(name_width)}  {'count':>5}  {'total':>9}  "
            f"{'mean':>9}  {'p50':>9}  {'p95':>9}"
        )
        lines.append(header)
        for name, acc in accumulators.items():
            lines.append(
                f"  {name.ljust(name_width)}  {acc.n:>5}  "
                f"{_format_seconds(acc.total):>9}  {_format_seconds(acc.mean):>9}  "
                f"{_format_seconds(acc.percentile(50)):>9}  "
                f"{_format_seconds(acc.percentile(95)):>9}"
            )
    flat = collector.metrics.as_flat_dict()
    if flat:
        lines.append("metrics:")
        metric_width = max(len(name) for name in flat)
        for name, value in flat.items():
            rendered = str(int(value)) if float(value).is_integer() else f"{value:.4f}"
            lines.append(f"  {name.ljust(metric_width)}  {rendered}")
    if not lines:
        return "(empty capture: no spans or metrics recorded)"
    return "\n".join(lines)


def incident_timeline(collector: Collector, step: Optional[int] = None) -> str:
    """Audit trail of the captured incidents (alarmed ``service.interval`` spans).

    One block per alarmed interval — or per *every* interval matching
    *step* when given — listing the interval's child stages in completion
    order with durations and salient attributes.  Returns a placeholder
    line when the capture holds no matching interval.
    """
    intervals = [
        span
        for span in collector.find_spans("service.interval")
        if (step is None and span.attributes.get("alarmed"))
        or (step is not None and span.attributes.get("step") == step)
    ]
    if not intervals:
        return "(no matching incident intervals captured)"
    lines: List[str] = []
    for interval in intervals:
        header = f"step {interval.attributes.get('step', '?')}: "
        header += "ALARMED" if interval.attributes.get("alarmed") else "quiet"
        header += f"  [{_format_seconds(interval.duration_s)} total]"
        lines.append(header)
        for child in sorted(collector.children_of(interval), key=lambda s: s.start):
            stage = child.name.rsplit(".", 1)[-1]
            detail = _stage_detail(child)
            lines.append(
                f"  {stage:<10} {_format_seconds(child.duration_s):>9}{detail}"
            )
    return "\n".join(lines)


def _stage_detail(span: Span) -> str:
    attrs = span.attributes
    parts = []
    for key in ("triggered", "anomalous_leaves", "n_patterns", "n_scopes"):
        if key in attrs:
            parts.append(f"{key}={attrs[key]}")
    return ("  " + " ".join(parts)) if parts else ""
