"""Declarative SLOs over sliding tick windows, with burn-rate gauges.

A long-running deployment (the service loop, a stream replay) judges its
own health against *objectives*: "at least 99% of ticks finish under
250 ms", "at most 0.1% of ticks end degraded or partial".  This module
turns those sentences into code:

* :class:`SLOObjective` — one declarative objective: a good-tick target
  fraction plus the predicate that classifies a tick (latency threshold,
  error flag, degradation flag — any combination).
* :class:`TickOutcome` — what one tick reports: wall seconds, error and
  degradation flags, the delta path taken (``patched``/``cold``) and the
  degradation-ladder tier.  The service pipeline and the stream replay
  driver both emit these.
* :class:`SLOTracker` — classifies every outcome against every objective
  over *multiple sliding windows* (tick counts, e.g. the last 60 and the
  last 720 ticks) and exports the ``slo_*`` gauge family into the active
  metric registry, including the **error-budget burn rate** per window.

Burn-rate semantics follow the multi-window convention: with a target
good fraction ``t`` the error budget is ``1 - t``; the burn rate of a
window is ``bad_fraction / (1 - t)`` — 1.0 means the deployment is
spending its budget exactly as fast as the objective allows, 14 means a
page-worthy fire.  Comparing a short against a long window separates a
transient blip (short high, long low) from a sustained breach (both
high).

Everything here is opt-in and free when off: no tracker exists unless
the caller constructs one, and gauge export is a no-op without an
installed collector.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from . import trace as _trace
from .metrics import MetricRegistry

__all__ = [
    "TickOutcome",
    "SLOObjective",
    "WindowState",
    "SLOTracker",
    "default_objectives",
]


@dataclass(frozen=True)
class TickOutcome:
    """One tick's observable outcome, as fed to :meth:`SLOTracker.record`."""

    #: Wall-clock seconds the tick took end to end.
    seconds: float
    #: The tick failed outright (localizer error, verify mismatch, ...).
    error: bool = False
    #: The tick was served degraded (fallback stage, partial report, ...).
    degraded: bool = False
    #: Degradation-ladder rung that served the tick (``None`` = full).
    tier: Optional[str] = None
    #: Delta-session path (``"patched"`` / ``"cold"``), when applicable.
    path: Optional[str] = None


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective: a target plus a good-tick predicate.

    Parameters
    ----------
    name:
        The ``objective`` label value on every exported ``slo_*`` series.
    target:
        Required good-tick fraction in ``(0, 1)``; the error budget is
        ``1 - target``.
    latency_threshold_s:
        When set, a tick is bad if ``seconds`` exceeds the threshold.
    count_errors:
        When true (default), a tick with ``error=True`` is bad.
    count_degraded:
        When true, a tick with ``degraded=True`` (or a non-``full``
        degradation tier) is bad — an availability-of-full-service
        objective.
    """

    name: str
    target: float = 0.99
    latency_threshold_s: Optional[float] = None
    count_errors: bool = True
    count_degraded: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.target < 1.0):
            raise ValueError("target must be a fraction in (0, 1)")
        if self.latency_threshold_s is not None and self.latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be positive")

    @property
    def error_budget(self) -> float:
        """Allowed bad-tick fraction (``1 - target``)."""
        return 1.0 - self.target

    def is_good(self, outcome: TickOutcome) -> bool:
        """Classify one tick against this objective."""
        if self.count_errors and outcome.error:
            return False
        if self.count_degraded and (
            outcome.degraded or (outcome.tier not in (None, "full"))
        ):
            return False
        if (
            self.latency_threshold_s is not None
            and outcome.seconds > self.latency_threshold_s
        ):
            return False
        return True


def default_objectives() -> Tuple[SLOObjective, ...]:
    """The stock objectives a streaming deployment starts from.

    * ``tick_latency`` — 99% of ticks under 250 ms (tune the threshold to
      your measured cold-tick latency; see ``docs/operational.md``).
    * ``tick_success`` — 99.9% of ticks neither error nor run degraded.
    """
    return (
        SLOObjective(
            "tick_latency", target=0.99, latency_threshold_s=0.25, count_errors=False
        ),
        SLOObjective("tick_success", target=0.999, count_degraded=True),
    )


class WindowState:
    """Sliding bad-tick count over the last *size* ticks (O(1) update)."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("window size must be positive")
        self.size = size
        self._flags: Deque[bool] = deque(maxlen=size)
        self._bad = 0

    def push(self, good: bool) -> None:
        if len(self._flags) == self.size and not self._flags[0]:
            self._bad -= 1
        self._flags.append(good)
        if not good:
            self._bad += 1

    @property
    def n(self) -> int:
        return len(self._flags)

    @property
    def bad(self) -> int:
        return self._bad

    @property
    def bad_fraction(self) -> float:
        """Bad fraction of the ticks held so far (0.0 on an empty window)."""
        return self._bad / len(self._flags) if self._flags else 0.0


@dataclass
class _ObjectiveState:
    objective: SLOObjective
    windows: Dict[int, WindowState] = field(default_factory=dict)
    good_total: int = 0
    bad_total: int = 0


class SLOTracker:
    """Classify tick outcomes against objectives and export ``slo_*`` gauges.

    Parameters
    ----------
    objectives:
        The objectives to track (:func:`default_objectives` otherwise).
    windows:
        Sliding-window lengths in ticks, shortest first.  At the paper's
        60 s collection interval the default ``(60, 720)`` is one hour
        and twelve hours — the classic fast/slow burn-rate pair.

    Exported series (all labelled ``objective=<name>``; windowed ones
    also ``window=<ticks>``):

    * ``slo_objective_target`` — the configured target fraction.
    * ``slo_ticks_total{outcome="good"|"bad"}`` — classification counter.
    * ``slo_good_fraction`` — good fraction of the window.
    * ``slo_burn_rate`` — ``bad_fraction / error_budget`` of the window.
    * ``slo_error_budget_remaining`` — ``1 - burn_rate`` (negative =
      the window has overspent its budget).
    """

    def __init__(
        self,
        objectives: Optional[Sequence[SLOObjective]] = None,
        windows: Sequence[int] = (60, 720),
    ):
        resolved = tuple(objectives) if objectives is not None else default_objectives()
        if not resolved:
            raise ValueError("at least one objective is required")
        names = [o.name for o in resolved]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique, got {names}")
        if not windows:
            raise ValueError("at least one window is required")
        self.windows: Tuple[int, ...] = tuple(sorted(int(w) for w in windows))
        self._states: Dict[str, _ObjectiveState] = {
            o.name: _ObjectiveState(
                o, {w: WindowState(w) for w in self.windows}
            )
            for o in resolved
        }
        self.ticks_recorded = 0

    @property
    def objectives(self) -> List[SLOObjective]:
        return [state.objective for state in self._states.values()]

    # -- feeding -----------------------------------------------------------

    def record(
        self, outcome: TickOutcome, registry: Optional[MetricRegistry] = None
    ) -> None:
        """Classify one tick and refresh the exported gauges.

        Export goes to *registry* when given, else to the installed
        collector's registry, else nowhere (the windows still update, so
        a tracker can run ahead of a capture and be scraped later).
        """
        self.ticks_recorded += 1
        for state in self._states.values():
            good = state.objective.is_good(outcome)
            if good:
                state.good_total += 1
            else:
                state.bad_total += 1
            for window in state.windows.values():
                window.push(good)
        if registry is None:
            collector = _trace.active_collector()
            registry = collector.metrics if collector is not None else None
        if registry is not None:
            self.export(registry)

    # -- queries -----------------------------------------------------------

    def _state(self, objective: str) -> _ObjectiveState:
        try:
            return self._states[objective]
        except KeyError:
            raise KeyError(
                f"unknown objective {objective!r}; "
                f"tracking {sorted(self._states)}"
            ) from None

    def good_fraction(self, objective: str, window: int) -> float:
        state = self._state(objective)
        return 1.0 - state.windows[window].bad_fraction

    def burn_rate(self, objective: str, window: int) -> float:
        """Error-budget burn rate of one window (1.0 = spending at par)."""
        state = self._state(objective)
        return state.windows[window].bad_fraction / state.objective.error_budget

    def budget_remaining(self, objective: str, window: int) -> float:
        return 1.0 - self.burn_rate(objective, window)

    # -- export ------------------------------------------------------------

    def export(self, registry: MetricRegistry) -> None:
        """Write the full ``slo_*`` family into *registry*."""
        for name, state in self._states.items():
            labels = {"objective": name}
            registry.gauge("slo_objective_target", labels).set(state.objective.target)
            for outcome_label, total in (
                ("good", state.good_total),
                ("bad", state.bad_total),
            ):
                counter = registry.counter(
                    "slo_ticks_total", {"objective": name, "outcome": outcome_label}
                )
                behind = total - counter.value
                if behind > 0:  # counters only move up; replay the difference
                    counter.inc(behind)
            for size, window in state.windows.items():
                windowed = {"objective": name, "window": str(size)}
                burn = window.bad_fraction / state.objective.error_budget
                registry.gauge("slo_good_fraction", windowed).set(
                    1.0 - window.bad_fraction
                )
                registry.gauge("slo_burn_rate", windowed).set(burn)
                registry.gauge("slo_error_budget_remaining", windowed).set(1.0 - burn)

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready view of every objective (the ``/debug`` shape)."""
        rows: List[Dict[str, object]] = []
        for name, state in self._states.items():
            rows.append(
                {
                    "objective": name,
                    "target": state.objective.target,
                    "good_total": state.good_total,
                    "bad_total": state.bad_total,
                    "windows": {
                        str(size): {
                            "ticks": window.n,
                            "bad": window.bad,
                            "good_fraction": 1.0 - window.bad_fraction,
                            "burn_rate": window.bad_fraction
                            / state.objective.error_budget,
                        }
                        for size, window in state.windows.items()
                    },
                }
            )
        return rows
