"""Structured spans and the collector they report to.

The tracing model is deliberately tiny: a :class:`Span` is a named,
attributed interval of wall-clock time with a parent pointer; a
:class:`Collector` accumulates finished spans (plus a
:class:`~repro.obs.metrics.MetricRegistry`) for one observed run.  The
*current* span is tracked through a :mod:`contextvars` context variable,
so nesting follows lexical ``with`` structure and survives async or
thread-local contexts that copy the ambient context.

Cost discipline
---------------
Instrumented hot paths must stay effectively free when nobody is looking.
Two mechanisms enforce that:

* ``ACTIVE`` — a module-level boolean mirroring "a collector is
  installed".  Hot loops guard per-event counter bumps with a single
  attribute read (``if trace.ACTIVE:``).
* :func:`span` — when no collector is installed it yields a shared
  :data:`NULL_SPAN` whose mutators are no-ops, so instrumented code needs
  no branching of its own.

Install a collector with :func:`capture` (the public context manager) or
:func:`install`/:func:`uninstall` for manual lifetimes.  Installation
nests: the previous collector is restored on exit, and each ``capture``
gets a fresh metric registry, so consecutive runs never share state.
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .metrics import MetricRegistry

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "NULL_SPAN_CONTEXT",
    "SpanRing",
    "Collector",
    "ACTIVE",
    "is_active",
    "active_collector",
    "current_span",
    "span",
    "capture",
    "install",
    "uninstall",
]

#: Fast-path flag: ``True`` iff a collector is installed.  Hot loops read
#: this instead of calling :func:`is_active` (one attribute load, no call).
ACTIVE: bool = False

_collector: Optional["Collector"] = None
_install_lock = threading.Lock()
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass
class Span:
    """One named, attributed interval; finished spans are immutable by convention."""

    name: str
    span_id: int
    parent_id: Optional[int]
    #: Wall-clock start (``time.time()``), for cross-process correlation.
    start_unix: float
    #: Monotonic start (``time.perf_counter()``), for duration only.
    start: float
    duration_s: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)

    def set(self, **attributes: object) -> "Span":
        """Attach attributes; chainable, no-op on the null span."""
        self.attributes.update(attributes)
        return self


class NullSpan:
    """Stand-in yielded by :func:`span` when tracing is off.

    Accepts the same mutations as :class:`Span` and discards them, so
    instrumentation sites never need an enabled-check of their own.
    """

    __slots__ = ()
    name = ""
    span_id = -1
    parent_id = None
    duration_s = 0.0
    attributes: Dict[str, object] = {}

    def set(self, **attributes: object) -> "NullSpan":
        return self


#: The shared null span (stateless, safe to reuse everywhere).
NULL_SPAN = NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager yielding :data:`NULL_SPAN`.

    Hot paths that pre-check ``ACTIVE`` use this singleton instead of
    calling :func:`span`, so the disabled path allocates nothing — no
    generator frame, no kwargs dict.
    """

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


#: Shared no-op context manager for ``ACTIVE``-guarded hot paths.
NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanRing:
    """Bounded ring of the most recently finished spans.

    The live-telemetry plane (``repro.obs.server``) serves ``/debug/spans``
    and ``/debug/profile`` from this buffer, so a long-running capture stays
    inspectable without the reader holding up writers or the buffer growing
    with the run: once *capacity* spans are held, every append evicts the
    oldest.  Memory is therefore O(capacity) regardless of run length.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._slots: List[Optional[Span]] = [None] * capacity
        self._next = 0
        self._total = 0
        self._lock = threading.Lock()

    def append(self, span: Span) -> None:
        with self._lock:
            self._slots[self._next] = span
            self._next = (self._next + 1) % self.capacity
            self._total += 1

    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def total_appended(self) -> int:
        """Spans ever appended (``total_appended - len`` were evicted)."""
        return self._total

    def snapshot(self, limit: Optional[int] = None) -> List[Span]:
        """Retained spans, oldest first (at most *limit* newest when given)."""
        with self._lock:
            if self._total < self.capacity:
                held = [s for s in self._slots[: self._next]]
            else:
                held = self._slots[self._next :] + self._slots[: self._next]
        spans = [s for s in held if s is not None]
        if limit is not None and limit >= 0:
            spans = spans[len(spans) - min(limit, len(spans)) :]
        return spans


class Collector:
    """Sink for one observed run: finished spans plus a metric registry."""

    def __init__(self, ring_capacity: int = 256) -> None:
        self.spans: List[Span] = []
        self.metrics = MetricRegistry()
        #: Bounded buffer of the newest finished spans, for live inspection.
        self.recent = SpanRing(ring_capacity)
        self._next_id = 1
        self._lock = threading.Lock()

    # -- span bookkeeping --------------------------------------------------

    def _new_span(self, name: str, attributes: Dict[str, object]) -> Span:
        parent = _CURRENT.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start_unix=time.time(),
            start=time.perf_counter(),
            attributes=attributes,
        )

    def _finish(self, finished: Span) -> None:
        finished.duration_s = time.perf_counter() - finished.start
        with self._lock:
            self.spans.append(finished)
        self.recent.append(finished)

    # -- queries -----------------------------------------------------------

    def snapshot_spans(self) -> List[Span]:
        """Copy of the finished-span list, safe against concurrent appends."""
        with self._lock:
            return list(self.spans)

    def find_spans(self, name: str) -> List[Span]:
        """Finished spans with the given name, in completion order."""
        return [s for s in self.spans if s.name == name]

    def span_names(self) -> List[str]:
        """Distinct finished-span names, in first-completion order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.name)
        return list(seen)

    def children_of(self, parent: Span) -> List[Span]:
        """Finished direct children of *parent*, in completion order."""
        return [s for s in self.spans if s.parent_id == parent.span_id]


def is_active() -> bool:
    """True when a collector is installed (prefer ``ACTIVE`` in hot loops)."""
    return _collector is not None


def active_collector() -> Optional[Collector]:
    """The installed collector, or ``None``."""
    return _collector


def current_span() -> Optional[Span]:
    """The innermost open span of the current context, or ``None``."""
    return _CURRENT.get()


@contextmanager
def span(name: str, **attributes: object) -> Iterator[Span]:
    """Open a child span of the current span for the ``with`` body.

    Yields the live :class:`Span` (mutate via :meth:`Span.set`) or the
    shared :data:`NULL_SPAN` when no collector is installed.  The span is
    finished — duration stamped, appended to the collector — when the
    block exits, even on exception or early ``return``.
    """
    collector = _collector
    if collector is None:
        yield NULL_SPAN  # type: ignore[misc]
        return
    opened = collector._new_span(name, dict(attributes))
    token = _CURRENT.set(opened)
    try:
        yield opened
    finally:
        _CURRENT.reset(token)
        collector._finish(opened)


def install(collector: Collector) -> Optional[Collector]:
    """Install *collector* as the active sink; returns the one it replaced."""
    global _collector, ACTIVE
    with _install_lock:
        previous = _collector
        _collector = collector
        ACTIVE = True
    return previous


def uninstall(previous: Optional[Collector] = None) -> None:
    """Restore *previous* (or nothing) as the active sink."""
    global _collector, ACTIVE
    with _install_lock:
        _collector = previous
        ACTIVE = previous is not None


@contextmanager
def capture(trace_path: Optional[str] = None) -> Iterator[Collector]:
    """Collect spans and metrics for the ``with`` body.

    Installs a fresh :class:`Collector` (restoring any previously
    installed one on exit, so captures nest) and yields it.  When
    *trace_path* is given the collected run is written there as JSONL on
    exit — including on exception, so crashed runs still leave a trail.

    Examples
    --------
    >>> from repro import obs
    >>> with obs.capture() as collector:
    ...     with obs.span("demo", answer=42):
    ...         pass
    >>> [s.name for s in collector.spans]
    ['demo']
    """
    collector = Collector()
    previous = install(collector)
    try:
        yield collector
    finally:
        uninstall(previous)
        if trace_path is not None:
            from .export import write_jsonl

            write_jsonl(collector, trace_path)
