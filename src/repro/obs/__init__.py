"""Zero-dependency observability for the mining hot path.

``repro.obs`` is the subsystem the efficiency story runs on: structured
spans (:mod:`~repro.obs.trace`), a counter/gauge/histogram registry
(:mod:`~repro.obs.metrics`), Prometheus-text and JSONL exposition
(:mod:`~repro.obs.export`) and human-readable run summaries / incident
audit trails (:mod:`~repro.obs.report`), a live HTTP telemetry plane
(:mod:`~repro.obs.server`), declarative SLO burn-rate tracking
(:mod:`~repro.obs.slo`) and a span-family self-time profiler
(:mod:`~repro.obs.profile`).  ``report``, ``server``, ``slo`` and
``profile`` are imported explicitly — they are kept off the eager
surface so the hot path never pays for ``http.server``.

The contract with instrumented code: **off means free**.  With no
collector installed, :func:`~repro.obs.trace.span` yields a shared no-op
span and hot loops skip their counter bumps behind the single
module-level flag :data:`trace.ACTIVE`, so production runs without a
capture pay only a boolean check.  Everything activates together under
:func:`capture`::

    from repro import obs

    with obs.capture(trace_path="run.jsonl") as collector:
        miner.run(labelled)
    print(obs.prometheus_text(collector.metrics))

See ``docs/observability.md`` for the span taxonomy and metric catalogue.
"""

from __future__ import annotations

from typing import Optional, Union

from . import trace
from .export import prometheus_text, read_jsonl, to_jsonl_lines, write_jsonl
from .metrics import METRIC_HELP, Counter, Gauge, Histogram, MetricRegistry
from .trace import (
    NULL_SPAN,
    Collector,
    NullSpan,
    Span,
    SpanRing,
    active_collector,
    capture,
    current_span,
    install,
    is_active,
    span,
    uninstall,
)

__all__ = [
    "trace",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "SpanRing",
    "Collector",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "METRIC_HELP",
    "capture",
    "span",
    "current_span",
    "is_active",
    "active_collector",
    "install",
    "uninstall",
    "inc",
    "observe",
    "set_gauge",
    "prometheus_text",
    "to_jsonl_lines",
    "write_jsonl",
    "read_jsonl",
]


def inc(name: str, value: Union[int, float] = 1, **labels: str) -> None:
    """Bump a counter on the active collector; no-op when tracing is off.

    Hot loops should guard with ``if obs.trace.ACTIVE:`` to skip even the
    call; cooler paths can call unconditionally.
    """
    collector = trace.active_collector()
    if collector is not None:
        collector.metrics.counter(name, labels or None).inc(value)


def set_gauge(name: str, value: Union[int, float], **labels: str) -> None:
    """Set a gauge on the active collector; no-op when tracing is off."""
    collector = trace.active_collector()
    if collector is not None:
        collector.metrics.gauge(name, labels or None).set(value)


def observe(name: str, value: Union[int, float], **labels: str) -> None:
    """Record a histogram sample on the active collector; no-op when off."""
    collector = trace.active_collector()
    if collector is not None:
        collector.metrics.histogram(name, labels or None).observe(value)
