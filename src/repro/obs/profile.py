"""Span-family profiling: self-time vs child-time per span name.

A span's duration includes everything its children did, so summing raw
durations per name double-counts nested work and hides where the
milliseconds actually went.  This module subtracts each span's direct
children to get **self time** — the classic profiler view — aggregated
per span *family* (name):

* :func:`profile_spans` — the core pass over any iterable of finished
  spans (``repro.obs.Span`` objects, or the dicts ``read_jsonl`` yields).
* :func:`profile_collector` — a live :class:`~repro.obs.trace.Collector`.
* :func:`render_profile` — the fixed-width top-N table behind the
  ``repro profile`` subcommand and the server's ``/debug/profile`` view.

Child time can legitimately exceed the parent's wall time when children
run on fan-out threads; self time is clamped at zero per span so a
threaded parent never reports negative work.

Spans tagged with a ``backend`` attribute (``miner.run``,
``miner.run_batch``, ``search.run``, ``search.stacked_layer``) profile
as distinct families — ``search.run[backend=native]`` vs
``search.run[backend=numpy]`` — so kernel time is attributed to the
backend that actually ran it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .trace import Collector, Span

__all__ = [
    "FamilyProfile",
    "profile_spans",
    "profile_collector",
    "profile_records",
    "render_profile",
]

_SpanLike = Union[Span, Dict[str, object]]


@dataclass
class FamilyProfile:
    """Aggregated timing of every span sharing one name."""

    name: str
    count: int
    total_s: float
    self_s: float
    child_s: float

    @property
    def mean_self_s(self) -> float:
        return self.self_s / self.count if self.count else 0.0

    @property
    def self_fraction(self) -> float:
        """Self share of the family's total duration (1.0 = leaf family)."""
        return self.self_s / self.total_s if self.total_s > 0.0 else 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "child_s": self.child_s,
            "mean_self_s": self.mean_self_s,
            "self_fraction": self.self_fraction,
        }


def _family_name(name: str, attributes: object) -> str:
    """The family key: the span name, qualified by its ``backend`` tag."""
    if isinstance(attributes, dict):
        backend = attributes.get("backend")
        if backend is not None:
            return f"{name}[backend={backend}]"
    return name


def _fields(span: _SpanLike) -> Tuple[str, object, object, float]:
    """``(family, span_id, parent_id, duration_s)`` from a span or a record."""
    if isinstance(span, dict):
        return (
            _family_name(str(span.get("name", "")), span.get("attributes")),
            span.get("span_id"),
            span.get("parent_id"),
            float(span.get("duration_s", 0.0) or 0.0),
        )
    return (
        _family_name(span.name, span.attributes),
        span.span_id,
        span.parent_id,
        span.duration_s,
    )


def profile_spans(spans: Iterable[_SpanLike]) -> List[FamilyProfile]:
    """Per-family self/child/total times, sorted by self time descending."""
    rows = [_fields(span) for span in spans]
    child_of: Dict[object, float] = {}
    for __, ___, parent_id, duration in rows:
        if parent_id is not None:
            child_of[parent_id] = child_of.get(parent_id, 0.0) + duration
    families: Dict[str, FamilyProfile] = {}
    for name, span_id, __, duration in rows:
        child = child_of.get(span_id, 0.0)
        profile = families.get(name)
        if profile is None:
            profile = families[name] = FamilyProfile(name, 0, 0.0, 0.0, 0.0)
        profile.count += 1
        profile.total_s += duration
        profile.child_s += child
        profile.self_s += max(duration - child, 0.0)
    return sorted(families.values(), key=lambda p: (-p.self_s, p.name))


def profile_collector(collector: Collector) -> List[FamilyProfile]:
    """Profile every finished span of a live (or completed) capture."""
    return profile_spans(collector.snapshot_spans())


def profile_records(records: Iterable[Dict[str, object]]) -> List[FamilyProfile]:
    """Profile the ``type == "span"`` lines of a parsed JSONL trace."""
    return profile_spans(r for r in records if r.get("type") == "span")


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_profile(
    profiles: List[FamilyProfile], top: Optional[int] = 15
) -> str:
    """Fixed-width top-N table of a span-family profile."""
    if not profiles:
        return "(no spans to profile)"
    shown = profiles if top is None else profiles[: max(top, 1)]
    name_width = max(len("span"), max(len(p.name) for p in shown))
    lines = [
        f"{'span'.ljust(name_width)}  {'count':>6}  {'self':>9}  "
        f"{'self%':>6}  {'child':>9}  {'total':>9}  {'mean self':>9}"
    ]
    for p in shown:
        lines.append(
            f"{p.name.ljust(name_width)}  {p.count:>6}  "
            f"{_format_seconds(p.self_s):>9}  {p.self_fraction * 100:>5.1f}%  "
            f"{_format_seconds(p.child_s):>9}  {_format_seconds(p.total_s):>9}  "
            f"{_format_seconds(p.mean_self_s):>9}"
        )
    hidden = len(profiles) - len(shown)
    if hidden > 0:
        lines.append(f"({hidden} more famil{'y' if hidden == 1 else 'ies'} below the top-{len(shown)})")
    return "\n".join(lines)
