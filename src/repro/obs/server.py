"""The live telemetry plane: a dependency-free HTTP exposition server.

A long-running deployment (``repro stream-localize --serve-metrics``, a
:class:`~repro.service.LocalizationService` loop) is a black box unless
its registry can be scraped *while it runs*.  :class:`TelemetryServer`
is the front door: a stdlib ``http.server``/``socketserver`` thread that
serves, for the lifetime of the run,

* ``GET /metrics`` — the installed collector's
  :class:`~repro.obs.metrics.MetricRegistry` rendered as Prometheus text
  exposition 0.0.4 (the registry's own locks make the scrape a
  consistent snapshot);
* ``GET /healthz`` — liveness: 200 while the server thread is up (an
  optional ``healthy`` probe can veto with 503);
* ``GET /readyz`` — readiness wired to service/breaker state via the
  ``readiness`` probe (e.g. :meth:`LocalizationService.readiness`);
* ``GET /debug/spans`` — the collector's bounded recent-span ring as
  JSON (``?limit=N`` for the newest N);
* ``GET /debug/profile`` — the span-family self-time profile
  (:mod:`repro.obs.profile`) of the capture so far (``?top=N``).

The server binds ``port=0`` to an ephemeral port (read it back from
:attr:`TelemetryServer.port`), runs daemonized so it never blocks
interpreter exit, and counts every request under
``telemetry_requests_total{route=...,status=...}``.  Nothing here runs
unless the caller starts a server — the off path costs nothing.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from . import trace as _trace
from .export import _json_safe, prometheus_text
from .profile import profile_collector
from .trace import Collector

__all__ = ["TelemetryServer", "PROMETHEUS_CONTENT_TYPE"]

#: The content type a Prometheus scraper expects from a 0.0.4 exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Probe signature: return truthy for OK; a dict is included in the body.
Probe = Callable[[], object]


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on ``self.server.telemetry``."""

    server_version = "repro-telemetry/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # the access log is the request counter, not stderr

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        telemetry: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        route = parsed.path.rstrip("/") or "/"
        try:
            status, content_type, body = telemetry._dispatch(route, query)
        except Exception as exc:  # noqa: BLE001 - a scrape must never kill the run
            status, content_type, body = (
                500,
                "application/json",
                json.dumps({"error": str(exc)}).encode(),
            )
        telemetry._count_request(route, status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class TelemetryServer:
    """Thread-based HTTP server over one capture's registry and span ring.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    collector:
        The capture to serve.  ``None`` (default) resolves the installed
        collector *at scrape time*, so a server started before
        ``obs.capture()`` serves whatever capture is active when the
        scraper arrives.
    readiness:
        ``/readyz`` probe.  Return truthy for ready; returning a mapping
        includes it in the JSON body (a ``"ready"`` key, when present,
        decides).  Default: ready iff a collector is reachable.
    healthy:
        ``/healthz`` veto probe; default always healthy while serving.
    profile_source:
        ``"spans"`` (default) profiles the full capture;``"ring"``
        profiles only the bounded recent-span ring — constant memory and
        cost, for very long runs.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        collector: Optional[Collector] = None,
        readiness: Optional[Probe] = None,
        healthy: Optional[Probe] = None,
        profile_source: str = "spans",
    ):
        if profile_source not in ("spans", "ring"):
            raise ValueError("profile_source must be 'spans' or 'ring'")
        self.host = host
        self._requested_port = port
        self._collector = collector
        self._readiness = readiness
        self._healthy = healthy
        self._profile_source = profile_source
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        # Uptime baseline for dispatch() callers that never start() a socket.
        self._created_at = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Bind and serve from a daemon thread; idempotent-safe to chain."""
        if self._httpd is not None:
            raise RuntimeError("telemetry server already started")
        self._httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._started_at = time.monotonic()
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (no-op when stopped)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral ``port=0`` request)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server, e.g. ``http://127.0.0.1:9464``."""
        return f"http://{self.host}:{self.port}"

    # -- routing -----------------------------------------------------------

    def dispatch(
        self, route: str, query: Optional[Dict[str, list]] = None
    ) -> Tuple[int, str, bytes]:
        """Serve one telemetry route without a socket.

        Embedders (e.g. :class:`repro.serving.LocalizationServer`) mount
        ``/metrics``, ``/healthz``, ``/readyz`` and the debug routes on
        their own listener by delegating here, so one process exposes a
        single port.  Returns ``(status, content_type, body)`` exactly as
        the HTTP handler would; unknown routes produce the 404 catalogue.
        """
        normalized = route.rstrip("/") or "/"
        return self._dispatch(normalized, query or {})

    def _resolve_collector(self) -> Optional[Collector]:
        return self._collector if self._collector is not None else _trace.active_collector()

    def _count_request(self, route: str, status: int) -> None:
        collector = self._resolve_collector()
        if collector is not None:
            collector.metrics.counter(
                "telemetry_requests_total",
                {"route": route, "status": str(status)},
            ).inc()

    def _dispatch(
        self, route: str, query: Dict[str, list]
    ) -> Tuple[int, str, bytes]:
        if route == "/metrics":
            return self._metrics()
        if route == "/healthz":
            return self._healthz()
        if route == "/readyz":
            return self._readyz()
        if route == "/debug/spans":
            return self._debug_spans(query)
        if route == "/debug/profile":
            return self._debug_profile(query)
        body = json.dumps(
            {
                "error": f"no route {route!r}",
                "routes": [
                    "/metrics",
                    "/healthz",
                    "/readyz",
                    "/debug/spans",
                    "/debug/profile",
                ],
            }
        ).encode()
        return 404, "application/json", body

    def _metrics(self) -> Tuple[int, str, bytes]:
        collector = self._resolve_collector()
        # An idle process is a valid (empty) exposition, not a scrape error.
        text = prometheus_text(collector.metrics) if collector is not None else ""
        return 200, PROMETHEUS_CONTENT_TYPE, text.encode()

    def _healthz(self) -> Tuple[int, str, bytes]:
        verdict = self._healthy() if self._healthy is not None else True
        ok = bool(verdict)
        baseline = self._started_at if self._started_at is not None else self._created_at
        uptime = time.monotonic() - baseline
        body = {"status": "ok" if ok else "unhealthy", "uptime_s": round(uptime, 3)}
        if isinstance(verdict, dict):
            body.update(_json_safe(verdict))
        return (200 if ok else 503), "application/json", json.dumps(body).encode()

    def _readyz(self) -> Tuple[int, str, bytes]:
        if self._readiness is not None:
            verdict = self._readiness()
            if isinstance(verdict, dict):
                ready = bool(verdict.get("ready", True))
                body = dict(_json_safe(verdict))
                body["ready"] = ready
            else:
                ready = bool(verdict)
                body = {"ready": ready}
        else:
            ready = self._resolve_collector() is not None
            body = {"ready": ready, "reason": None if ready else "no collector installed"}
        return (200 if ready else 503), "application/json", json.dumps(body).encode()

    def _debug_spans(self, query: Dict[str, list]) -> Tuple[int, str, bytes]:
        collector = self._resolve_collector()
        if collector is None:
            return 503, "application/json", b'{"error": "no collector installed"}'
        limit = _int_param(query, "limit")
        spans = collector.recent.snapshot(limit)
        body = {
            "count": len(spans),
            "total_finished": collector.recent.total_appended,
            "ring_capacity": collector.recent.capacity,
            "spans": [
                {
                    "name": s.name,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "start_unix": s.start_unix,
                    "duration_s": s.duration_s,
                    "attributes": _json_safe(s.attributes),
                }
                for s in spans
            ],
        }
        return 200, "application/json", json.dumps(body).encode()

    def _debug_profile(self, query: Dict[str, list]) -> Tuple[int, str, bytes]:
        collector = self._resolve_collector()
        if collector is None:
            return 503, "application/json", b'{"error": "no collector installed"}'
        top = _int_param(query, "top")
        if self._profile_source == "ring":
            from .profile import profile_spans

            profiles = profile_spans(collector.recent.snapshot())
        else:
            profiles = profile_collector(collector)
        if top is not None:
            profiles = profiles[: max(top, 1)]
        body = {
            "source": self._profile_source,
            "families": [p.as_dict() for p in profiles],
        }
        return 200, "application/json", json.dumps(body).encode()


def _int_param(query: Dict[str, list], key: str) -> Optional[int]:
    values = query.get(key)
    if not values:
        return None
    try:
        return int(values[-1])
    except (TypeError, ValueError):
        return None
