"""Exposition: Prometheus text format and JSONL trace files.

Two consumers, two formats:

* :func:`prometheus_text` renders a registry in the Prometheus text
  exposition format (version 0.0.4) — the ``# HELP`` / ``# TYPE`` headers,
  label rendering and escaping rules a real scraper expects, so a
  long-running deployment can serve the engine counters from any HTTP
  handler without adding a client library dependency.
* :func:`write_jsonl` / :func:`to_jsonl_lines` flatten one captured run —
  spans and metrics — into line-delimited JSON, the ``--trace PATH``
  artifact.  Every line is a self-describing object with a ``type`` field
  (``meta``, ``span``, ``counter``, ``gauge``, ``histogram``), so the file
  is greppable and streams into any log pipeline.
"""

from __future__ import annotations

import json
import math
import warnings
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from .metrics import Counter, Gauge, Histogram, MetricRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .trace import Collector

__all__ = [
    "prometheus_text",
    "to_jsonl_lines",
    "write_jsonl",
    "read_jsonl",
]

_JSONL_VERSION = 1


# -- Prometheus text format ---------------------------------------------------


def escape_help(text: str) -> str:
    r"""Escape a HELP string: ``\`` -> ``\\`` and newline -> ``\n``."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    r"""Escape a label value: ``\`` -> ``\\``, ``"`` -> ``\"``, newline -> ``\n``."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{escape_label_value(str(value))}"' for name, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _render_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: Optional[MetricRegistry] = None) -> str:
    """The registry in Prometheus text exposition format.

    Defaults to the active collector's registry; with no collector
    installed (and no registry passed) returns an empty exposition.
    Families render once (one ``# HELP`` / ``# TYPE`` pair) with their
    series listed beneath; histograms expand to cumulative ``_bucket``
    series plus ``_sum`` and ``_count``.
    """
    if registry is None:
        from .trace import active_collector

        collector = active_collector()
        if collector is None:
            return ""
        registry = collector.metrics
    lines: List[str] = []
    seen_families: Dict[str, bool] = {}
    for metric in registry.collect():
        if metric.name not in seen_families:
            seen_families[metric.name] = True
            if metric.help:
                lines.append(f"# HELP {metric.name} {escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{_render_labels(metric.labels)} {_render_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            for bound, cumulative in metric.cumulative_buckets():
                labels = _render_labels(metric.labels, {"le": _render_value(bound)})
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            inf_labels = _render_labels(metric.labels, {"le": "+Inf"})
            lines.append(f"{metric.name}_bucket{inf_labels} {metric.count}")
            lines.append(
                f"{metric.name}_sum{_render_labels(metric.labels)} {_render_value(metric.sum)}"
            )
            lines.append(f"{metric.name}_count{_render_labels(metric.labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSONL traces -------------------------------------------------------------


def _json_safe(value: object) -> object:
    """Coerce span attributes to JSON-serializable shapes (fallback: str)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return str(value)


def to_jsonl_lines(collector: "Collector") -> Iterator[str]:
    """One captured run as JSONL lines (meta, then spans, then metrics)."""
    yield json.dumps(
        {
            "type": "meta",
            "version": _JSONL_VERSION,
            "n_spans": len(collector.spans),
        }
    )
    for span in collector.spans:
        yield json.dumps(
            {
                "type": "span",
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "start_unix": span.start_unix,
                "duration_s": span.duration_s,
                "attributes": _json_safe(span.attributes),
            }
        )
    for metric in collector.metrics.collect():
        if isinstance(metric, Histogram):
            yield json.dumps(
                {
                    "type": "histogram",
                    "name": metric.name,
                    "labels": metric.labels,
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": metric.cumulative_buckets(),
                }
            )
        elif isinstance(metric, (Counter, Gauge)):
            yield json.dumps(
                {
                    "type": metric.kind,
                    "name": metric.name,
                    "labels": metric.labels,
                    "value": metric.value,
                }
            )


def write_jsonl(collector: "Collector", path: str) -> None:
    """Write the run to *path*, one JSON object per line."""
    with open(path, "w") as handle:
        for line in to_jsonl_lines(collector):
            handle.write(line + "\n")


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a trace file back into records (inverse of :func:`write_jsonl`).

    A process that crashes mid-write leaves a truncated final line; that
    is recoverable history, not corruption, so the parsed prefix is
    returned and the dropped tail is surfaced as a :class:`RuntimeWarning`
    (with the line number and how many records survived) instead of a
    :class:`json.JSONDecodeError`.  A malformed line *followed by more
    lines* is genuine corruption and still raises.
    """
    records: List[Dict[str, object]] = []
    with open(path) as handle:
        lines = handle.read().splitlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError:
            if any(rest.strip() for rest in lines[index + 1 :]):
                raise  # mid-file garbage, not a truncated tail
            warnings.warn(
                f"{path}: dropped truncated final line {index + 1} "
                f"(kept {len(records)} parsed records)",
                RuntimeWarning,
                stacklevel=2,
            )
            break
    return records
