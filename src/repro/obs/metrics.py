"""Counters, gauges and histograms in a per-run registry.

Metrics follow Prometheus conventions: ``*_total`` counters only go up,
gauges hold a last-written value, histograms record cumulative bucket
counts plus a running sum.  A metric is identified by its name *and* its
fixed label set — ``engine_aggregate_total{path="cache_hit"}`` and
``engine_aggregate_total{path="rollup"}`` are two series of one family.

Every :class:`~repro.obs.trace.Collector` owns its own
:class:`MetricRegistry`, so runs captured back to back never bleed counts
into each other.  All mutation is lock-protected: the engine's layer
fan-out bumps counters from worker threads.

``METRIC_HELP`` is the subsystem's metric catalogue — instrumentation
sites register metrics by name only and the registry fills in the help
text, keeping the catalogue reviewable in one place (and rendering it
into ``docs/observability.md``).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "METRIC_HELP",
    "DEFAULT_BUCKETS",
]

#: Catalogue of every metric the instrumentation emits (name -> help text).
METRIC_HELP: Dict[str, str] = {
    # -- aggregation engine ------------------------------------------------
    "engine_aggregate_total": "Cuboid aggregate requests by resolution path",
    "engine_bincount_passes_total": "np.bincount passes executed by the engine",
    "engine_batch_cuboids_total": "Cuboids aggregated through batched fused passes",
    "engine_prepare_total": "prepare() prefetch decisions by outcome",
    "engine_layer_chunks_total": "Batched chunks executed by layer_aggregates",
    "engine_layer_parallel_chunks_total": "Chunks dispatched to the thread pool",
    "engine_layer_scan_memo_hits_total": "layer_scan results replayed from the (layer, t_conf) memo",
    "engine_rows_cache_total": "Covered-row lookups by cache outcome",
    "engine_postings_built_total": "Attribute posting lists materialized",
    "engine_warm_clones_total": "Engines warm-cloned across intervals",
    # -- kernel backends ---------------------------------------------------
    "engine_backend_info": "Active kernel backend as a labelled constant gauge",
    "engine_backend_compile_seconds": "Wall seconds the native library took to compile (0 on cache hits)",
    "engine_backend_fallback_total": "Native-backend requests degraded to numpy by reason",
    "native_kernel_calls_total": "Native C kernel invocations by kernel symbol",
    # -- two-stage miner ---------------------------------------------------
    "cp_attributes_total": "Algorithm 1 attribute decisions (kept vs deleted)",
    "search_layers_total": "BFS layers entered by Algorithm 2",
    "search_cuboids_total": "Cuboids evaluated by Algorithm 2",
    "search_combinations_total": "Attribute combinations evaluated by Algorithm 2",
    "search_candidates_total": "RAP candidates accepted by Algorithm 2",
    "search_criteria3_pruned_total": "Combinations pruned as descendants of a candidate",
    "search_early_stops_total": "Searches ended by the coverage early stop",
    "miner_runs_total": "RAPMiner.run invocations",
    # -- case-stacked batch kernel -----------------------------------------
    "stacked_bincount_passes_total": "Fused case-stacked np.bincount passes by lane kind",
    "stacked_layers_fused_total": "BFS layers aggregated once for a whole case batch",
    "stacked_cases_active_total": "Active cases summed over fused BFS layers",
    "stacked_groups_total": "Shared-layout groups formed by run_batch",
    "stacked_batch_cases_total": "Cases localized through RAPMiner.run_batch",
    "stacked_fallback_cases_total": "Cases routed to the per-case loop (method has no run_batch)",
    # -- incremental miner -------------------------------------------------
    "incremental_runs_total": "IncrementalRAPMiner.run invocations by path",
    "incremental_prescreen_total": "Prescreen outcomes on cached patterns",
    # -- streaming delta sessions ------------------------------------------
    "delta_ticks_total": "Delta-session ticks by path (patched vs cold) and fallback reason",
    "delta_changed_rows_total": "Changed leaf rows consumed by the patch kernel",
    "delta_patched_cuboids_total": "Cached cuboid aggregates patched in place",
    "delta_patch_seconds_total": "Seconds spent diffing and patching aggregates",
    "delta_rebase_total": "Float-lane re-bases by reason (scheduled vs drift)",
    "delta_changed_fraction": "Changed-leaf fraction of the latest tick",
    "delta_crossover_threshold": "Effective patched-vs-cold crossover threshold",
    # -- localization service ----------------------------------------------
    "service_intervals_total": "Collection intervals observed by the service",
    "service_incidents_total": "Intervals that raised an incident report",
    # -- batch execution layer ---------------------------------------------
    "parallel_shards_total": "Case shards dispatched to pool workers",
    "parallel_cases_total": "Cases executed through the batch layer by transport",
    "parallel_warm_engines_total": "Worker-side engine adoptions by outcome",
    "parallel_merge_snapshots_total": "Worker metric snapshots merged into the parent",
    "parallel_merge_conflicts_total": "Snapshot entries resolved first-writer-wins on a family conflict",
    # -- SLO tracking ------------------------------------------------------
    "slo_objective_target": "Configured good-tick target fraction of the objective",
    "slo_ticks_total": "Ticks classified against an SLO objective by outcome",
    "slo_good_fraction": "Good-tick fraction of the objective's sliding window",
    "slo_burn_rate": "Error-budget burn rate of the objective's sliding window",
    "slo_error_budget_remaining": "Unspent error-budget fraction of the window (negative = overspent)",
    # -- telemetry plane ---------------------------------------------------
    "telemetry_requests_total": "Telemetry-plane HTTP requests by route and status",
    # -- resilience --------------------------------------------------------
    "resilience_deadline_exceeded_total": "Searches ended by deadline-budget expiry by path",
    "resilience_degrade_total": "Degradation-ladder decisions by tier and reason",
    "resilience_retry_total": "Retried stage calls after a transient failure",
    "resilience_stage_failures_total": "Stage calls that exhausted retries (or hit an open breaker)",
    "resilience_breaker_transitions_total": "Circuit-breaker state transitions by breaker and state",
    "resilience_breaker_state": "Circuit-breaker state as a gauge (0 closed, 1 half-open, 2 open)",
    "resilience_degradation_tier": "Latest degradation-ladder rung as a gauge (index into TIERS)",
    "resilience_fallback_total": "Pipeline stages served by their degraded fallback",
    "resilience_malformed_inputs_total": "Sanitized inputs by kind (nan lanes, wrong length, bad forecast)",
    "resilience_stop_reason_total": "Incident reports by search stop reason and degradation tier",
    "resilience_shard_requeues_total": "Pool shards requeued after a worker fault",
    "resilience_case_errors_total": "Cases degraded to error records after a shard failed twice",
    "resilience_requeue_seconds": "Fault-to-finish latency of requeued shards (histogram)",
    "parallel_shm_orphans_total": "Shared-memory blocks reaped by the orphan guard instead of destroy()",
    # -- serving fleet -----------------------------------------------------
    "fleet_cases_total": "Cases submitted to the fleet supervisor",
    "fleet_queue_depth": "Queued cases per shard (gauge, labelled by shard id)",
    "fleet_steals_total": "Steal operations performed by idle shards",
    "fleet_stolen_cases_total": "Cases moved between shard queues by stealing",
    "fleet_quota_deferrals_total": "Submissions parked in the overflow deque by the tenant quota",
    "fleet_engine_builds_total": "Shard engine builds by outcome (warm, cold, warmstart)",
    "fleet_warm_starts_total": "Tenants primed from the store after a restart",
    "fleet_crashes_total": "Shard workers killed by an escaping exception",
    "fleet_requeues_total": "Crashed-shard cases requeued onto surviving shards",
    "fleet_errors_total": "Cases degraded to error records by the fleet crash protocol",
    "fleet_store_records_total": "Records appended to the fleet segment log by kind",
    "fleet_store_bytes_total": "Bytes appended to the fleet segment log",
    "fleet_store_recovered_total": "Torn trailing records dropped when opening a segment log",
    # -- serving front door ------------------------------------------------
    "serving_requests_total": "Localization requests by protocol and outcome",
    "serving_request_seconds": "End-to-end request latency from admission to response (histogram)",
    "serving_queue_depth": "Admitted-but-unfinished requests held by the server (gauge)",
    "serving_admitted_total": "Requests admitted by service tier (full vs degraded)",
    "serving_shed_total": "Requests shed by the admission controller by reason",
    "serving_tenant_inflight": "In-flight admitted requests per tenant (gauge)",
    "serving_malformed_total": "Malformed requests rejected with a typed error by code",
    "serving_deadline_stops_total": "Requests whose search ended on the per-request deadline",
}

#: Default histogram bucket upper bounds (seconds; tuned for span durations).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

Labels = Mapping[str, str]
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(labels: Optional[Labels]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared identity: name, fixed labels, help text, and a lock."""

    kind = "untyped"

    def __init__(self, name: str, labels: Optional[Labels], help_text: str):
        self.name = name
        self.labels: Dict[str, str] = dict(_label_key(labels))
        self.help = help_text
        self._lock = threading.Lock()


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Optional[Labels], help_text: str):
        super().__init__(name, labels, help_text)
        self._value = 0.0

    def inc(self, value: Union[int, float] = 1) -> None:
        if value < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Metric):
    """Last-written value (may move in either direction)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Optional[Labels], help_text: str):
        super().__init__(name, labels, help_text)
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, value: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Metric):
    """Cumulative-bucket histogram with running count and sum."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Optional[Labels],
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels, help_text)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._bucket_counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        with self._lock:
            index = bisect.bisect_left(self.bounds, value)
            if index < len(self._bucket_counts):
                self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ascending (no +Inf row)."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, count in zip(self.bounds, self._bucket_counts):
                running += count
                pairs.append((bound, running))
        return pairs


class MetricRegistry:
    """Registration-ordered store of one run's metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a ``(name, labels)`` pair creates the series, later calls return
    it.  Re-registering a name with a different metric type raises — a
    name means one thing per run.
    """

    def __init__(self) -> None:
        self._metrics: Dict[_Key, _Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._family_help: Dict[str, str] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, factory, kind: str, name: str, labels, help_text):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                known = self._kinds.get(name)
                if known is not None and known != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a {known}, "
                        f"cannot re-register as a {kind}"
                    )
                # Help is a family property: the first registration wins, so
                # one family never renders two different # HELP lines.
                if name in self._family_help:
                    resolved_help = self._family_help[name]
                else:
                    resolved_help = (
                        help_text if help_text is not None else METRIC_HELP.get(name, "")
                    )
                    self._family_help[name] = resolved_help
                metric = factory(name, labels, resolved_help)
                self._metrics[key] = metric
                self._kinds[name] = kind
            return metric

    def counter(
        self, name: str, labels: Optional[Labels] = None, help_text: Optional[str] = None
    ) -> Counter:
        metric = self._get_or_create(Counter, "counter", name, labels, help_text)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, labels: Optional[Labels] = None, help_text: Optional[str] = None
    ) -> Gauge:
        metric = self._get_or_create(Gauge, "gauge", name, labels, help_text)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        labels: Optional[Labels] = None,
        help_text: Optional[str] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        factory = lambda n, l, h: Histogram(n, l, h, buckets)  # noqa: E731
        metric = self._get_or_create(factory, "histogram", name, labels, help_text)
        assert isinstance(metric, Histogram)
        return metric

    # -- queries -----------------------------------------------------------

    def collect(self) -> List[_Metric]:
        """All metrics in registration order (series of a family adjacent)."""
        with self._lock:
            ordered = list(self._metrics.values())
        ordered.sort(key=lambda m: m.name)
        return ordered

    def get(self, name: str, labels: Optional[Labels] = None) -> Optional[_Metric]:
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, labels: Optional[Labels] = None) -> float:
        """Value of a counter/gauge series; 0.0 when it never registered."""
        metric = self.get(name, labels)
        if metric is None:
            return 0.0
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        raise TypeError(f"metric {name!r} is a {metric.kind}, not a scalar")

    def family_total(self, name: str) -> float:
        """Sum over every label series of one counter/gauge family."""
        total = 0.0
        with self._lock:
            series = [m for (n, __), m in self._metrics.items() if n == name]
        for metric in series:
            if not isinstance(metric, (Counter, Gauge)):
                raise TypeError(f"metric {name!r} is a {metric.kind}, not a scalar")
            total += metric.value
        return total

    # -- cross-process folding ---------------------------------------------

    def snapshot(self) -> List[Dict]:
        """Picklable value dump of every series, in registration order.

        The snapshot carries plain Python types only (no locks, no metric
        objects), so a pool worker can return it through the task channel
        for the parent to fold back with :meth:`merge`.  Histograms dump
        their raw per-bucket counts (not the cumulative view) so merges
        are a plain element-wise addition.
        """
        entries: List[Dict] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            entry: Dict = {
                "kind": metric.kind,
                "name": metric.name,
                "labels": dict(metric.labels),
                "help": metric.help,
            }
            if isinstance(metric, Histogram):
                with metric._lock:
                    entry["bounds"] = list(metric.bounds)
                    entry["bucket_counts"] = list(metric._bucket_counts)
                    entry["count"] = metric._count
                    entry["sum"] = metric._sum
            else:
                entry["value"] = metric.value  # Counter or Gauge
            entries.append(entry)
        return entries

    def merge(self, snapshot: Sequence[Dict]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histograms accumulate (their series are sums of
        per-process work); gauges are last-write-wins, matching their
        single-process semantics.  Series that do not exist here yet are
        created with the snapshot's help text.  A histogram series can
        only merge into one with identical bucket bounds.

        Family conflicts resolve **first-writer-wins** and are counted
        under ``parallel_merge_conflicts_total{reason=...}`` rather than
        raised — a worker fleet with one misregistered family must not
        take down the parent's whole merge:

        * ``reason="kind"`` — the snapshot's kind differs from the family
          already registered here; the entry is dropped.
        * ``reason="help"`` — the snapshot's help text differs; the
          entry's values merge under the already-registered help.
        """
        for entry in snapshot:
            kind = entry["kind"]
            name = entry["name"]
            labels = entry.get("labels") or None
            help_text = entry.get("help")
            with self._lock:
                known_kind = self._kinds.get(name)
                known_help = self._family_help.get(name)
            if known_kind is not None and known_kind != kind:
                self.counter(
                    "parallel_merge_conflicts_total", {"reason": "kind"}
                ).inc()
                continue
            if (
                known_help is not None
                and help_text is not None
                and help_text != known_help
            ):
                self.counter(
                    "parallel_merge_conflicts_total", {"reason": "help"}
                ).inc()
                help_text = known_help
            if kind == "counter":
                self.counter(name, labels, help_text).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name, labels, help_text).set(entry["value"])
            elif kind == "histogram":
                bounds = tuple(float(b) for b in entry["bounds"])
                histogram = self.histogram(name, labels, help_text, buckets=bounds)
                if histogram.bounds != bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds {histogram.bounds} "
                        f"do not match the snapshot's {bounds}"
                    )
                with histogram._lock:
                    for index, count in enumerate(entry["bucket_counts"]):
                        histogram._bucket_counts[index] += count
                    histogram._count += entry["count"]
                    histogram._sum += entry["sum"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} in snapshot")

    def as_flat_dict(self) -> Dict[str, float]:
        """Scalar series flattened to ``name{k="v",...} -> value``."""
        flat: Dict[str, float] = {}
        for metric in self.collect():
            if not isinstance(metric, (Counter, Gauge)):
                continue
            if metric.labels:
                rendered = ",".join(f'{k}="{v}"' for k, v in sorted(metric.labels.items()))
                flat[f"{metric.name}{{{rendered}}}"] = metric.value
            else:
                flat[metric.name] = metric.value
        return flat
