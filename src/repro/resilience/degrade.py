"""Graceful-degradation ladder for the search kernels.

When a deadline budget is near exhaustion, or a case is simply too big
to finish at full depth inside the interval, the right move is not to
fail — it is to spend what is left on the *coarsest* layers, where RAPs
live by definition (the paper's Definition 1 prefers ancestors).  The
ladder steps down along

    ``delta -> full -> vectorized -> serial -> layer_capped``

* **delta** — the streaming patch path
  (:class:`repro.core.delta.DeltaSession`): cross-tick aggregate
  patching, the cheapest rung but one that accumulates per-stream state;
  a draining budget steps it down to a cold-full tick so expiry never
  lands on patch bookkeeping;
* **full** — one stateless serial search, cold aggregation;
* **vectorized** — the case-stacked batch kernel
  (:meth:`repro.core.miner.RAPMiner.run_batch`), cheapest per case but
  front-loads a whole layout group's aggregation;
* **serial** — the classic per-case loop, which lets a draining budget
  stop between cases instead of mid-group;
* **layer_capped** — the per-case loop with a hard BFS depth cap, the
  last resort that bounds a single search's work outright.

Every decision is recorded on ``SearchStats.degradation_tier`` (and the
``resilience_degrade_total{tier=...}`` counter), so a report always says
which rung produced it.  A ``None`` policy means no ladder: behavior and
results are exactly the pre-resilience code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .budget import Budget

__all__ = ["DegradationDecision", "DegradationPolicy", "TIERS"]

#: The ladder, fastest-degrading last.
TIERS = ("delta", "full", "vectorized", "serial", "layer_capped")


@dataclass(frozen=True)
class DegradationDecision:
    """One resolved rung of the ladder.

    ``tier`` is the rung chosen (one of :data:`TIERS`); ``max_layer`` is
    the BFS depth cap to apply (``None`` = uncapped); ``reason`` says
    what forced the step down (``"budget"`` or ``"leaf_count"``,
    ``None`` when nothing did).
    """

    tier: str
    max_layer: Optional[int] = None
    reason: Optional[str] = None

    @property
    def degraded(self) -> bool:
        return self.reason is not None


@dataclass
class DegradationPolicy:
    """Thresholds steering the ladder.

    Parameters
    ----------
    budget_fraction:
        Step one rung down (vectorized -> serial) once the budget's
        remaining fraction falls below this.
    critical_fraction:
        Step to ``layer_capped`` once the remaining fraction falls below
        this (must not exceed *budget_fraction*).
    leaf_limit:
        A single case with more leaves than this is layer-capped
        outright — at that scale deep layers cannot finish inside an
        interval regardless of budget.
    stacked_element_limit:
        Cap on ``n_cases * n_leaves`` for the vectorized kernel; batches
        above it fall back to the serial loop so one giant layout group
        cannot blow the interval on a single fused pass.
    capped_layer:
        The BFS depth the ``layer_capped`` rung enforces.
    """

    budget_fraction: float = 0.5
    critical_fraction: float = 0.2
    leaf_limit: int = 1_000_000
    stacked_element_limit: int = 50_000_000
    capped_layer: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.critical_fraction <= self.budget_fraction <= 1.0:
            raise ValueError(
                "need 0 <= critical_fraction <= budget_fraction <= 1, got "
                f"critical_fraction={self.critical_fraction}, "
                f"budget_fraction={self.budget_fraction}"
            )
        if self.leaf_limit < 1:
            raise ValueError("leaf_limit must be positive")
        if self.stacked_element_limit < 1:
            raise ValueError("stacked_element_limit must be positive")
        if self.capped_layer < 1:
            raise ValueError("capped_layer must be at least 1")

    # -- decisions ---------------------------------------------------------

    def decide_serial(
        self, n_leaves: int, budget: Optional["Budget"], base_tier: str = "full"
    ) -> DegradationDecision:
        """Rung for one serial search: *base_tier* or ``layer_capped``.

        ``base_tier`` is what the caller was going to run anyway
        (``"full"`` from :meth:`RAPMiner.run`, ``"serial"`` from a batch
        that already stepped off the vectorized rung).
        """
        if n_leaves > self.leaf_limit:
            return DegradationDecision(
                "layer_capped", max_layer=self.capped_layer, reason="leaf_count"
            )
        if budget is not None and budget.fraction_remaining() < self.critical_fraction:
            return DegradationDecision(
                "layer_capped", max_layer=self.capped_layer, reason="budget"
            )
        return DegradationDecision(base_tier)

    def decide_delta(
        self, n_leaves: int, budget: Optional["Budget"]
    ) -> DegradationDecision:
        """Rung for one streaming tick: ``delta``, cold-``full`` or capped.

        The delta patch path is the top rung — it is the cheapest way to
        serve a tick, but it also *invests* time in patch bookkeeping
        that only pays off over later ticks.  Under a draining budget
        that investment is wrong, so the ladder steps to a cold ``full``
        tick (spend everything on this search) and, critically low, to
        ``layer_capped`` exactly like the serial path.
        """
        if n_leaves > self.leaf_limit:
            return DegradationDecision(
                "layer_capped", max_layer=self.capped_layer, reason="leaf_count"
            )
        if budget is not None:
            fraction = budget.fraction_remaining()
            if fraction < self.critical_fraction:
                return DegradationDecision(
                    "layer_capped", max_layer=self.capped_layer, reason="budget"
                )
            if fraction < self.budget_fraction:
                return DegradationDecision("full", reason="budget")
        return DegradationDecision("delta")

    def decide_batch(
        self, n_cases: int, n_leaves: int, budget: Optional["Budget"]
    ) -> DegradationDecision:
        """Rung for a case batch: ``vectorized``, ``serial`` or capped.

        The serial and capped rungs only choose the *execution shape*;
        per-case depth caps are re-decided by :meth:`decide_serial` as
        the batch drains the budget, so early cases of a degraded batch
        may still search full depth while late ones get capped.
        """
        if n_leaves > self.leaf_limit:
            return DegradationDecision(
                "layer_capped", max_layer=self.capped_layer, reason="leaf_count"
            )
        if budget is not None:
            fraction = budget.fraction_remaining()
            if fraction < self.critical_fraction:
                return DegradationDecision(
                    "layer_capped", max_layer=self.capped_layer, reason="budget"
                )
            if fraction < self.budget_fraction:
                return DegradationDecision("serial", reason="budget")
        if n_cases * n_leaves > self.stacked_element_limit:
            return DegradationDecision("serial", reason="leaf_count")
        return DegradationDecision("vectorized")
