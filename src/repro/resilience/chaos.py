"""Deterministic fault injection for the resilience test suite.

Everything here injects one of the failure modes the serving path must
survive, reproducibly under a seed:

* **NaN lanes / truncated leaf tables** — :func:`corrupt_values` damages
  an interval's value vector the way a collection gap does (missing
  lanes, short reads).
* **Flaky stages** — :class:`FlakyForecaster` / :class:`FlakyDetector`
  wrap a real implementation and raise for the first *fail_times* calls
  (then recover), exercising retry, breaker, and fallback paths without
  randomness.
* **Slow stages** — :class:`SlowDetector` burns an injectable clock so
  deadline budgets drain mid-interval.
* **Worker crashes** — :class:`CrashOnceLocalizer` raises on its first
  invocation *per marker file*; the marker lives on disk, so the latch
  works across process-pool workers: the first shard attempt crashes,
  the requeued attempt succeeds.  :class:`AlwaysCrashLocalizer` never
  recovers, driving the per-case error-record path.

This module is imported explicitly (``from repro.resilience import
chaos``); it is kept off the package's eager surface because it pulls in
the detection stack.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core.attribute import AttributeCombination
from ..data.dataset import FineGrainedDataset
from ..detection.detectors import Detector
from ..detection.forecasting import Forecaster

__all__ = [
    "ChaosConfig",
    "corrupt_values",
    "FlakyForecaster",
    "FlakyDetector",
    "SlowDetector",
    "CrashOnceLocalizer",
    "AlwaysCrashLocalizer",
    "WorkerCrash",
]


@dataclass
class ChaosConfig:
    """Knobs of one deterministic corruption pass.

    ``nan_fraction`` of the lanes are overwritten with NaN;
    ``truncate_fraction`` of the tail is dropped (a short read).  Which
    lanes go NaN is drawn from the seeded generator, so a given
    ``(seed, step)`` always damages the same lanes.
    """

    seed: int = 0
    nan_fraction: float = 0.0
    truncate_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.nan_fraction <= 1.0:
            raise ValueError("nan_fraction must lie in [0, 1]")
        if not 0.0 <= self.truncate_fraction < 1.0:
            raise ValueError("truncate_fraction must lie in [0, 1)")


def corrupt_values(
    values: np.ndarray, config: ChaosConfig, step: int = 0
) -> np.ndarray:
    """A damaged copy of *values*: NaN lanes, then tail truncation.

    The generator is re-seeded from ``(config.seed, step)`` so replaying
    a trace injects identical damage regardless of call order.
    """
    values = np.asarray(values, dtype=float).copy()
    rng = np.random.default_rng((config.seed, step))
    n = values.shape[0]
    if config.nan_fraction > 0.0 and n:
        n_nan = int(round(config.nan_fraction * n))
        if n_nan:
            lanes = rng.choice(n, size=min(n_nan, n), replace=False)
            values[lanes] = np.nan
    if config.truncate_fraction > 0.0 and n:
        keep = n - int(round(config.truncate_fraction * n))
        values = values[: max(keep, 1)]
    return values


class FlakyForecaster(Forecaster):
    """Raises for the first *fail_times* forecasts, then delegates."""

    def __init__(self, inner: Forecaster, fail_times: int = 1):
        self.inner = inner
        self.fail_times = fail_times
        self.calls = 0

    def forecast(self, history: np.ndarray) -> np.ndarray:
        self.calls += 1
        if self.calls <= self.fail_times:
            raise RuntimeError(
                f"injected forecaster fault (call {self.calls}/{self.fail_times})"
            )
        return self.inner.forecast(history)


class FlakyDetector(Detector):
    """Raises for the first *fail_times* detections, then delegates."""

    def __init__(self, inner: Detector, fail_times: int = 1):
        self.inner = inner
        self.fail_times = fail_times
        self.calls = 0

    def detect(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        self.calls += 1
        if self.calls <= self.fail_times:
            raise RuntimeError(
                f"injected detector fault (call {self.calls}/{self.fail_times})"
            )
        return self.inner.detect(v, f)


class SlowDetector(Detector):
    """Delegates after burning *delay_s* on the injectable *sleep*.

    Pair with a :class:`~repro.resilience.budget.StepClock`-backed budget
    (or a shared fake clock) to drain a deadline deterministically
    without real waiting.
    """

    def __init__(
        self,
        inner: Detector,
        delay_s: float,
        sleep: Callable[[float], None] = None,
    ):
        import time

        self.inner = inner
        self.delay_s = delay_s
        self.sleep = sleep if sleep is not None else time.sleep

    def detect(self, v: np.ndarray, f: np.ndarray) -> np.ndarray:
        self.sleep(self.delay_s)
        return self.inner.detect(v, f)


class WorkerCrash(RuntimeError):
    """The injected crash raised inside a pool worker."""


class CrashOnceLocalizer:
    """Crashes the first shard that runs it, succeeds on the requeue.

    The latch is a marker file, so the "already crashed" state survives
    the process boundary: attempt one (worker A) creates the marker and
    raises :class:`WorkerCrash`; the requeued attempt (worker B) sees
    the marker and delegates to the inner localizer.
    """

    name = "CrashOnce"

    def __init__(self, inner, marker_path: str):
        self.inner = inner
        self.marker_path = marker_path

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        if not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as handle:
                handle.write("crashed\n")
            raise WorkerCrash("injected one-shot worker crash")
        return self.inner.localize(dataset, k)


class AlwaysCrashLocalizer:
    """Never succeeds — drives the per-case error-record path."""

    name = "AlwaysCrash"

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        raise WorkerCrash("injected persistent worker crash")
