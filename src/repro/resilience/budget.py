"""Cooperative deadline budgets for the serving path.

A :class:`Budget` is the contract between the operational loop and the
search kernels: the caller decides how many wall-clock milliseconds one
localization may spend, and every long-running stage *cooperatively*
checks the budget at natural safe points (BFS layer boundaries) instead
of being interrupted.  An over-budget search therefore never hangs the
Fig. 1 loop and never returns a torn result — it finishes the layer it
is in and returns the candidates found so far with
``SearchStats.stop_reason == "deadline"``, which is exactly the result
an explicit ``max_layer`` cap at the same depth would have produced
(asserted by ``tests/resilience/test_budget.py``).

The clock is injectable so tests (and the chaos harness) can drive
expiry deterministically: :class:`StepClock` advances a fixed amount per
reading and is picklable, so it survives the process-pool transport of
:mod:`repro.parallel.batch`.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Budget", "StepClock"]


class StepClock:
    """Deterministic clock: starts at 0.0, advances *step* per reading.

    Picklable (plain attributes, no closures), so a budget built on a
    step clock can cross a process boundary and replay identically in a
    pool worker.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0):
        if step < 0.0:
            raise ValueError("step must be non-negative")
        self.step = float(step)
        self.now = float(start)

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current


class Budget:
    """A wall-clock allowance checked cooperatively at stage boundaries.

    Parameters
    ----------
    seconds:
        Total allowance.  ``None`` means unlimited: :meth:`expired` is
        always ``False`` and :meth:`fraction_remaining` is always 1.0,
        so an absent budget costs one ``is None`` check on the hot path.
    clock:
        Monotonic time source (``time.monotonic`` by default).  The
        budget starts counting at construction time.
    """

    __slots__ = ("total", "_clock", "_start")

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        if seconds is not None and seconds <= 0.0:
            raise ValueError("budget seconds must be positive (or None for unlimited)")
        self.total = None if seconds is None else float(seconds)
        self._clock = clock
        self._start = clock()

    @classmethod
    def from_ms(
        cls,
        deadline_ms: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> Optional["Budget"]:
        """A budget of *deadline_ms* milliseconds; ``None`` passes through.

        The ``None -> None`` mapping lets config plumbing write
        ``Budget.from_ms(cfg.deadline_ms)`` unconditionally.
        """
        if deadline_ms is None:
            return None
        return cls(deadline_ms / 1000.0, clock=clock)

    def elapsed(self) -> float:
        """Seconds consumed since construction."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited, floored at 0.0)."""
        if self.total is None:
            return float("inf")
        return max(0.0, self.total - self.elapsed())

    def fraction_remaining(self) -> float:
        """Remaining share of the allowance in [0, 1] (1.0 when unlimited).

        This is what :class:`~repro.resilience.degrade.DegradationPolicy`
        compares against its thresholds — relative, so one policy works
        for a 50 ms interactive budget and a 5 s batch budget alike.
        """
        if self.total is None:
            return 1.0
        return max(0.0, 1.0 - self.elapsed() / self.total)

    def expired(self) -> bool:
        """True once the allowance is used up.

        Each call reads the clock exactly once, so deterministic clocks
        (:class:`StepClock`) make expiry reproducible check-for-check.
        """
        if self.total is None:
            return False
        return self.elapsed() >= self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.total is None:
            return "Budget(unlimited)"
        return f"Budget(total={self.total:.6f}s, remaining={self.remaining():.6f}s)"
