"""Retry-with-backoff and circuit breakers for pluggable stages.

The service pipeline calls user-supplied forecasters and detectors every
interval; the batch layer dispatches shards to pool workers.  Both are
exactly the call sites where a transient failure should be retried, a
persistent failure should stop being retried (so a broken detector does
not add its timeout to every interval), and the caller should fall back
to a degraded-but-deterministic implementation instead of dropping the
interval.

:class:`CircuitBreaker` implements the standard three-state machine:

* ``closed`` — calls flow through; consecutive failures are counted.
* ``open`` — after *failure_threshold* consecutive failures, calls are
  rejected immediately with :class:`CircuitOpenError` (no retry storms,
  no per-interval timeout tax) until *recovery_time* has passed.
* ``half_open`` — the first call after the cool-down is a probe: success
  closes the breaker, failure re-opens it.

Sleeping and time are injectable so the chaos suite drives every
transition deterministically, and state changes are counted under the
``resilience_breaker_transitions_total{state=...}`` family.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from .. import obs

__all__ = [
    "CircuitOpenError",
    "RetryPolicy",
    "CircuitBreaker",
    "guarded_call",
    "BREAKER_STATE_VALUES",
]

#: Numeric encoding of breaker states for the ``resilience_breaker_state``
#: gauge (scrapeable ordering: higher = less available).
BREAKER_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitOpenError(RuntimeError):
    """Raised instead of calling through while a breaker is open."""


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``max_attempts`` counts the first try: the default of 2 means one
    retry.  Backoff sleeps ``backoff_base * backoff_factor**n`` between
    attempts through the injectable *sleep* (pass a no-op in tests).
    """

    max_attempts: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0.0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (attempt 1 = first retry)."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker with a cool-down probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    recovery_time:
        Seconds the breaker stays open before allowing a half-open probe.
    name:
        ``breaker`` label on the ``resilience_breaker_transitions_total``
        counter so one registry can watch several breakers.
    clock:
        Injectable monotonic time source.
    """

    failure_threshold: int = 3
    recovery_time: float = 30.0
    name: str = "breaker"
    clock: Callable[[], float] = time.monotonic
    state: str = field(default="closed", init=False)
    consecutive_failures: int = field(default=0, init=False)
    _opened_at: Optional[float] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.recovery_time < 0.0:
            raise ValueError("recovery_time must be non-negative")

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            obs.inc(
                "resilience_breaker_transitions_total", breaker=self.name, state=state
            )
            self.export_state_gauge()

    def export_state_gauge(self) -> None:
        """Publish the current state as ``resilience_breaker_state``.

        Called on every transition, and by serving loops once per tick so
        a scrape started mid-run still sees every breaker (a gauge only
        written on transitions would be invisible until the first trip).
        """
        obs.set_gauge(
            "resilience_breaker_state",
            BREAKER_STATE_VALUES.get(self.state, -1),
            breaker=self.name,
        )

    def allow(self) -> bool:
        """Whether a call may proceed right now (may half-open the breaker)."""
        if self.state == "open":
            if (
                self._opened_at is not None
                and self.clock() - self._opened_at >= self.recovery_time
            ):
                self._transition("half_open")
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._opened_at = None
        self._transition("closed")

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == "half_open" or self.consecutive_failures >= self.failure_threshold:
            self._opened_at = self.clock()
            self._transition("open")

    def call(self, func: Callable, *args, **kwargs):
        """Run *func* through the breaker (no retries; see :func:`guarded_call`)."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is open "
                f"({self.consecutive_failures} consecutive failures)"
            )
        try:
            result = func(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


def guarded_call(
    func: Callable,
    *args,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    stage: str = "stage",
    **kwargs,
) -> Tuple[object, Optional[Exception]]:
    """Run *func* with retries behind an optional breaker; never raises.

    Returns ``(result, None)`` on success or ``(None, last_error)`` when
    every attempt failed or the breaker rejected the call — the caller
    decides the fallback.  Failed attempts bump
    ``resilience_retry_total{stage=...}``; exhausted calls bump
    ``resilience_stage_failures_total{stage=...}``.
    """
    retry = retry if retry is not None else RetryPolicy()
    last_error: Optional[Exception] = None
    for attempt in range(1, retry.max_attempts + 1):
        if breaker is not None and not breaker.allow():
            last_error = CircuitOpenError(
                f"circuit {breaker.name!r} is open "
                f"({breaker.consecutive_failures} consecutive failures)"
            )
            break
        try:
            result = func(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - resilience boundary
            last_error = exc
            if breaker is not None:
                breaker.record_failure()
            if attempt < retry.max_attempts:
                obs.inc("resilience_retry_total", stage=stage)
                retry.sleep(retry.delay(attempt))
            continue
        if breaker is not None:
            breaker.record_success()
        return result, None
    obs.inc("resilience_stage_failures_total", stage=stage)
    return None, last_error
