"""Resilience machinery for the serving path.

Four pieces keep the Fig. 1 loop answering when inputs are malformed,
detectors misbehave, or a case blows its latency budget:

* :mod:`~repro.resilience.budget` — cooperative deadline budgets checked
  at BFS layer boundaries, so an over-budget search returns a
  partial-but-valid result (``stop_reason="deadline"``) instead of
  hanging the loop;
* :mod:`~repro.resilience.degrade` — the graceful-degradation ladder
  (delta -> full -> vectorized -> serial -> layer_capped) with the
  chosen tier recorded on every result;
* :mod:`~repro.resilience.breaker` — retry/backoff and three-state
  circuit breakers around pluggable pipeline stages and pool workers;
* :mod:`~repro.resilience.chaos` — the deterministic fault-injection
  harness behind ``tests/resilience/`` and ``make chaos`` (import it
  explicitly; it pulls in the detection stack).

See ``docs/resilience.md`` for semantics and tuning guidance.
"""

from .breaker import CircuitBreaker, CircuitOpenError, RetryPolicy, guarded_call
from .budget import Budget, StepClock
from .degrade import TIERS, DegradationDecision, DegradationPolicy

__all__ = [
    "Budget",
    "StepClock",
    "DegradationDecision",
    "DegradationPolicy",
    "TIERS",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryPolicy",
    "guarded_call",
]
