"""Serving front door: sustained request throughput over a live wire.

Measures what a deployment sees: concurrent HTTP clients firing per-tick
localization requests at a running :class:`LocalizationServer`, warm
shards underneath, admission sized so nothing sheds.  The artifact
(``BENCH_serve.json``) records sustained requests/sec for one and many
client threads plus the overload behaviour (how many of a deliberately
over-cap burst shed, and how fast a shed answer returns).

There is **no speedup gate**: serving throughput on a shared CI host is
a capacity observation, not an invariant — ``cpu_count`` rides in the
artifact so numbers are read in context.  What *is* asserted, always:

* every accepted response is bit-identical to the serial reference,
* an over-cap burst sheds with typed codes and sub-request latency,
* nothing errors and no admission slot leaks.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core.miner import RAPMiner
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.fleet import FleetConfig, FleetSupervisor
from repro.serving import (
    AdmissionConfig,
    LocalizationServer,
    ServingClient,
    ServingConfig,
)

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"
#: Requests per measured configuration (case list cycled).
REQUESTS = 48
#: Client thread counts measured.
CLIENT_COUNTS = (1, 4)
#: Burst size of the overload measurement (admission capped below it).
BURST = 12
#: Hard cap during the overload measurement.
BURST_CAP = 3


def _shoot(client, cases, serial, index):
    case = cases[index % len(cases)]
    body = client.localize(case, k=len(case.true_raps))
    assert body["status"] == "ok", body
    assert body["root_causes"] == serial[case.case_id], case.case_id
    return body["seconds"]


def test_serve_throughput_report():
    cases = generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=6, n_days=2, seed=9)
    )
    miner = RAPMiner()
    serial = {
        case.case_id: [
            str(p) for p in miner.localize(case.dataset, len(case.true_raps))
        ]
        for case in cases
    }

    report = {
        "requests_per_run": REQUESTS,
        "cpu_count": os.cpu_count(),
        "runs": [],
    }

    supervisor = FleetSupervisor(RAPMiner(), config=FleetConfig(shards_per_layout=2))
    config = ServingConfig(
        admission=AdmissionConfig(
            max_queue_depth=256, soft_queue_depth=None, tenant_inflight_limit=256
        )
    )
    with LocalizationServer(supervisor, config) as server:
        client = ServingClient("127.0.0.1", server.http_port)
        # Warm the shards so the measured window reflects steady state.
        for case in cases:
            _shoot(client, cases, serial, cases.index(case))
        for n_clients in CLIENT_COUNTS:
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                in_fleet = sum(
                    pool.map(
                        lambda i: _shoot(client, cases, serial, i), range(REQUESTS)
                    )
                )
            wall = time.perf_counter() - start
            report["runs"].append(
                {
                    "clients": n_clients,
                    "wall_s": round(wall, 4),
                    "rps": round(REQUESTS / wall, 2),
                    "in_fleet_s": round(in_fleet, 4),
                    "bit_identical": True,  # asserted per request above
                }
            )
        assert server.admission.depth == 0

    # Overload: a burst far over a tiny cap must shed typed and fast.
    slow_supervisor = FleetSupervisor(RAPMiner(), config=FleetConfig())
    slow_config = ServingConfig(
        admission=AdmissionConfig(
            max_queue_depth=BURST_CAP,
            soft_queue_depth=None,
            tenant_inflight_limit=BURST_CAP,
        )
    )
    with LocalizationServer(slow_supervisor, slow_config) as server:
        client = ServingClient("127.0.0.1", server.http_port)

        def burst_one(i):
            started = time.perf_counter()
            body = client.localize(cases[i % len(cases)], k=1)
            return body, time.perf_counter() - started

        with ThreadPoolExecutor(max_workers=BURST) as pool:
            outcomes = list(pool.map(burst_one, range(BURST)))
        ok = [(b, s) for b, s in outcomes if b["status"] == "ok"]
        shed = [(b, s) for b, s in outcomes if b["status"] == "shed"]
        assert len(ok) + len(shed) == BURST
        for body, __ in shed:
            assert body["code"] in ("queue_full", "tenant_quota")
        report["overload"] = {
            "burst": BURST,
            "max_queue_depth": BURST_CAP,
            "served": len(ok),
            "shed": len(shed),
            "shed_latency_s": round(max((s for __, s in shed), default=0.0), 4),
        }
        assert server.admission.depth == 0

    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
