"""Fig. 10: RAPMiner's sensitivity to t_CP and t_conf on RAPMD.

Regenerates both sensitivity curves (RC@3 over the paper's threshold
grids) and asserts the stability claims: the curves stay within a narrow
band, t_CP does not improve with larger values, and t_conf does not
degrade with larger values.
"""

import pytest

from repro.experiments.figures import (
    DEFAULT_TCONF_GRID,
    DEFAULT_TCP_GRID,
    figure10a,
    figure10b,
)
from repro.experiments.reporting import render_table


@pytest.fixture(scope="module")
def tcp_curve(rapmd_cases):
    return figure10a(rapmd_cases)


@pytest.fixture(scope="module")
def tconf_curve(rapmd_cases):
    return figure10b(rapmd_cases)


def test_regenerates_fig10a(tcp_curve, capsys):
    with capsys.disabled():
        print("\n[Fig. 10(a)] RC@3 vs t_CP on RAPMD")
        print(
            render_table(
                ["t_CP"] + [f"{t:g}" for t in tcp_curve],
                [["RC@3"] + [f"{v:.3f}" for v in tcp_curve.values()]],
            )
        )
    values = [tcp_curve[t] for t in sorted(tcp_curve)]
    assert max(values) - min(values) < 0.35  # stable plateau
    assert values[-1] <= values[0] + 0.05  # larger t_CP never helps


def test_regenerates_fig10b(tconf_curve, capsys):
    with capsys.disabled():
        print("\n[Fig. 10(b)] RC@3 vs t_conf on RAPMD")
        print(
            render_table(
                ["t_conf"] + [f"{t:g}" for t in tconf_curve],
                [["RC@3"] + [f"{v:.3f}" for v in tconf_curve.values()]],
            )
        )
    values = [tconf_curve[t] for t in sorted(tconf_curve)]
    assert max(values) - min(values) < 0.35
    assert values[-1] >= values[0] - 0.05  # larger t_conf never hurts much


def test_benchmark_sensitivity_point(benchmark, rapmd_cases):
    """Times one grid point of the sensitivity sweep."""
    benchmark(figure10a, rapmd_cases, (0.02,))
