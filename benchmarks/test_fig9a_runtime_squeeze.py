"""Fig. 9(a): mean running time per (n_dim, n_raps) group on Squeeze-B0.

Regenerates the method-by-group running-time matrix from the same
executions as Fig. 8(a), and asserts the relative claims: Adtributor the
fastest on 1-D groups and every RAPMiner localization sub-second at this
scale.
"""

import pytest

from repro.experiments.figures import figure9a, run_squeeze_comparison
from repro.experiments.reporting import render_series_table

GROUP_ORDER = [(d, r) for d in (1, 2, 3) for r in (1, 2, 3)]


@pytest.fixture(scope="module")
def evaluations(squeeze_cases):
    return run_squeeze_comparison(squeeze_cases)


def test_regenerates_fig9a(evaluations, capsys):
    data = figure9a(evaluations)
    with capsys.disabled():
        print("\n[Fig. 9(a)] Mean running time (s) on Squeeze-B0 by group")
        print(render_series_table(data, value_format="{:.4f}", column_order=GROUP_ORDER))
    one_dim_groups = [(1, r) for r in (1, 2, 3)]
    for group in one_dim_groups:
        fastest = min(data, key=lambda name: data[name][group])
        assert fastest in ("Adtributor", "RAPMiner"), (group, {n: data[n][group] for n in data})
    assert all(value < 1.0 for value in data["RAPMiner"].values())


def test_benchmark_full_group_run(benchmark, squeeze_cases):
    """Times a whole-group RAPMiner sweep (the unit Fig. 9(a) averages)."""
    from repro.core.miner import RAPMiner
    from repro.experiments.runner import run_cases

    group_cases = [c for c in squeeze_cases if c.metadata["group"] == (2, 2)]
    benchmark(run_cases, RAPMiner(), group_cases, None, True)
