"""Fig. 8(a): F1 per (n_dim, n_raps) group on the Squeeze-B0 dataset.

Regenerates the method-by-group F1 matrix and asserts the paper's
qualitative claims: RAPMiner/Squeeze/FP-growth comparable and strong,
Adtributor good only on 1-D groups, iDice never the overall best.
The per-method benchmark times one representative localization.
"""

import pytest

from repro.experiments.figures import figure8a, run_squeeze_comparison
from repro.experiments.presets import paper_methods
from repro.experiments.reporting import render_series_table

GROUP_ORDER = [(d, r) for d in (1, 2, 3) for r in (1, 2, 3)]


@pytest.fixture(scope="module")
def evaluations(squeeze_cases):
    return run_squeeze_comparison(squeeze_cases)


def test_regenerates_fig8a(evaluations, capsys):
    data = figure8a(evaluations)
    with capsys.disabled():
        print("\n[Fig. 8(a)] F1-score on Squeeze-B0 by (n_dim, n_raps) group")
        print(render_series_table(data, column_order=GROUP_ORDER))
    rapminer = data["RAPMiner"]
    assert all(v >= 0.8 for v in rapminer.values())
    adtributor = data["Adtributor"]
    assert min(adtributor[(1, r)] for r in (1, 2, 3)) > max(
        adtributor[(d, r)] for d in (2, 3) for r in (1, 2, 3)
    )


@pytest.mark.parametrize("method", paper_methods(), ids=lambda m: m.name)
def test_benchmark_localization(benchmark, method, squeeze_cases):
    """Per-method timing on one representative (2,2) case."""
    case = next(c for c in squeeze_cases if c.metadata["group"] == (2, 2))
    benchmark(method.localize, case.dataset, len(case.true_raps))
