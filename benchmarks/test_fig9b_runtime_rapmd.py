"""Fig. 9(b): mean running time on RAPMD.

Regenerates the per-method mean running time from the Fig. 8(b) executions
and asserts the paper's ordering claims: iDice the slowest of the cohort,
RAPMiner within an acceptable (sub-second at this scale) range.
"""

import pytest

from repro.experiments.figures import figure9b, run_rapmd_comparison
from repro.experiments.reporting import format_seconds, render_table


@pytest.fixture(scope="module")
def evaluations(rapmd_cases):
    return run_rapmd_comparison(rapmd_cases)


def test_regenerates_fig9b(evaluations, capsys):
    data = figure9b(evaluations)
    with capsys.disabled():
        print("\n[Fig. 9(b)] Mean running time on RAPMD")
        print(
            render_table(
                ["method", "mean time"],
                [[name, format_seconds(seconds)] for name, seconds in data.items()],
            )
        )
    assert data["RAPMiner"] < 1.0
    assert data["Adtributor"] < data["RAPMiner"] * 10  # both in the fast tier


def test_benchmark_rapminer_case(benchmark, rapmd_cases):
    from repro.core.miner import RAPMiner

    miner = RAPMiner()
    dataset = rapmd_cases[0].dataset
    benchmark(miner.localize, dataset, 5)
