"""The "off = free" guard for the observability subsystem.

The contract (``docs/observability.md``): with no collector installed,
instrumented hot paths pay a single boolean check — spans, counters, SLO
tracking and the telemetry server must all cost nothing when nobody is
looking.  This report enforces that from two directions:

* **Micro** — per-operation ceilings on the disabled primitives: a
  disabled ``obs.span(...)`` call, the pre-checked
  ``trace.NULL_SPAN_CONTEXT`` fast path, the guarded counter pattern
  (``if trace.ACTIVE: obs.inc(...)``).  Ceilings are set an order of
  magnitude above the measured cost on an idle box, so they catch a
  regression to lock-taking or allocation, not scheduler jitter.
* **Macro** — a full localization workload run twice with obs disabled
  (two independent batches): the min-of-batch times must agree within a
  noise band, demonstrating the disabled path is a stable floor, and the
  same workload under an active capture is reported (not gated — capture
  cost is a documented diagnosis price, compared loosely here so a 10x
  instrumentation blow-up still fails).

Writes ``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.injection import sample_raps
from repro.data.schema import cdn_schema
from repro.obs import trace

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

#: Micro-op ceilings (seconds/op) — ~10x the measured cost on this box.
DISABLED_SPAN_CEILING = 20e-6
NULL_CONTEXT_CEILING = 5e-6
GUARDED_INC_CEILING = 2e-6
#: Macro: the two disabled batches must agree within this fraction.
OFF_NOISE_BAND = 0.35
#: Capture-on must stay within this factor of off (loose: catches blow-ups).
CAPTURE_FACTOR_CEILING = 5.0

MICRO_OPS = 20_000
MACRO_RUNS = 12
CONFIG = RAPMinerConfig(enable_attribute_deletion=False)


def _build_workload():
    """One labelled 2-RAP incident snapshot at the small CDN shape."""
    schema = cdn_schema(8, 4, 4, 6)
    sim = CDNSimulator(schema, CDNSimulatorConfig(seed=17))
    background = sim.snapshot(300).to_dataset()
    rng = np.random.default_rng(17)
    raps = sample_raps(background, 2, rng, dimensions=[2], min_support=8)
    mask = np.zeros(background.n_rows, dtype=bool)
    for rap in raps:
        mask |= background.mask_of(rap)
    f = background.v.copy()
    f[mask] = background.v[mask] / 0.55
    from repro.data.dataset import FineGrainedDataset

    return FineGrainedDataset(
        background.schema, background.codes, background.v, f, mask
    )


def _time_ops(op, n: int) -> float:
    start = time.perf_counter()
    for __ in range(n):
        op()
    return (time.perf_counter() - start) / n


def _time_macro(dataset) -> float:
    """Min-of-runs wall time for one stateless localization."""
    best = float("inf")
    for __ in range(MACRO_RUNS):
        gc.collect()
        miner = RAPMiner(CONFIG)
        start = time.perf_counter()
        miner.run(dataset)
        best = min(best, time.perf_counter() - start)
    return best


def _disabled_span():
    with obs.span("bench.noop"):
        pass


def _null_context():
    with trace.NULL_SPAN_CONTEXT:
        pass


def _guarded_inc():
    if trace.ACTIVE:
        obs.inc("bench_noop_total")


def test_obs_overhead_report(capsys):
    assert not obs.is_active(), "a collector leaked in from another test"

    span_cost = _time_ops(_disabled_span, MICRO_OPS)
    null_cost = _time_ops(_null_context, MICRO_OPS)
    inc_cost = _time_ops(_guarded_inc, MICRO_OPS)

    dataset = _build_workload()
    RAPMiner(CONFIG).run(dataset)  # warm numpy / import costs off the clock
    off_a = _time_macro(dataset)
    off_b = _time_macro(dataset)
    off = min(off_a, off_b)
    off_noise = abs(off_a - off_b) / off

    with obs.capture():
        on = _time_macro(dataset)
    capture_factor = on / off

    report = {
        "benchmark": "observability off-is-free guard",
        "micro_ops": MICRO_OPS,
        "disabled_span_s_per_op": span_cost,
        "null_context_s_per_op": null_cost,
        "guarded_inc_s_per_op": inc_cost,
        "macro_runs": MACRO_RUNS,
        "off_batch_a_s": off_a,
        "off_batch_b_s": off_b,
        "off_noise_fraction": off_noise,
        "capture_on_s": on,
        "capture_factor": capture_factor,
        "ceilings": {
            "disabled_span_s_per_op": DISABLED_SPAN_CEILING,
            "null_context_s_per_op": NULL_CONTEXT_CEILING,
            "guarded_inc_s_per_op": GUARDED_INC_CEILING,
            "off_noise_band": OFF_NOISE_BAND,
            "capture_factor": CAPTURE_FACTOR_CEILING,
        },
        "meets_target": bool(
            span_cost < DISABLED_SPAN_CEILING
            and null_cost < NULL_CONTEXT_CEILING
            and inc_cost < GUARDED_INC_CEILING
            and off_noise <= OFF_NOISE_BAND
            and capture_factor <= CAPTURE_FACTOR_CEILING
        ),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print("\n[obs overhead] disabled primitives (per op):")
        print(
            f"  span {span_cost * 1e6:6.2f} us   null-context {null_cost * 1e6:6.2f} us"
            f"   guarded inc {inc_cost * 1e9:6.1f} ns"
        )
        print(
            f"  macro off: {off_a * 1e3:.2f} / {off_b * 1e3:.2f} ms "
            f"(noise {off_noise:.1%}), capture on: {on * 1e3:.2f} ms "
            f"({capture_factor:.2f}x)  report: {REPORT_PATH.name}"
        )

    assert span_cost < DISABLED_SPAN_CEILING, (
        f"disabled span() costs {span_cost * 1e6:.2f} us/op "
        f"(ceiling {DISABLED_SPAN_CEILING * 1e6:.0f} us) — the off path regressed"
    )
    assert null_cost < NULL_CONTEXT_CEILING, (
        f"NULL_SPAN_CONTEXT costs {null_cost * 1e6:.2f} us/op "
        f"(ceiling {NULL_CONTEXT_CEILING * 1e6:.0f} us)"
    )
    assert inc_cost < GUARDED_INC_CEILING, (
        f"guarded counter bump costs {inc_cost * 1e9:.0f} ns/op "
        f"(ceiling {GUARDED_INC_CEILING * 1e9:.0f} ns)"
    )
    assert off_noise <= OFF_NOISE_BAND, (
        f"obs-disabled batches disagree by {off_noise:.1%} "
        f"(band {OFF_NOISE_BAND:.0%}) — host too noisy to certify the floor"
    )
    assert capture_factor <= CAPTURE_FACTOR_CEILING, (
        f"capture-on runs {capture_factor:.1f}x the disabled path "
        f"(ceiling {CAPTURE_FACTOR_CEILING:.0f}x) — instrumentation blow-up"
    )
