"""Native compiled kernel backend: serial vs vectorized-numpy vs native.

Two measurements, one artifact (``BENCH_native.json``):

* **End-to-end walls** — the fast preset's RAPMD cases replayed
  ``REPLAY`` times (the same stream-of-snapshots model as
  ``test_stacked_throughput.py``) through three configurations: serial
  ``run_cases`` on the numpy backend, the in-process vectorized kernel
  (``mode="vectorized"``) on the numpy backend, and the same vectorized
  kernel on the native C backend.  Every configuration's ranked output
  is asserted bit-identical to serial.
* **Kernel-trio micro-timings** — the three hot kernels the native
  backend exists for (fused full-lattice aggregation, case-stacked
  anomalous counts, case-stacked weighted lanes), timed on *realistic*
  inputs taken from the preset itself: the actual leaf table (row
  count, attribute cardinalities, label density) and the full replayed
  case count.  The ``TARGET_SPEEDUP`` floor is enforced here, where
  the comparison isolates the kernels the backend replaces; the
  end-to-end walls additionally carry Python search control flow that
  no kernel backend can remove, so they are reported, not gated.

The native library's identity (compiler, version, cache path) is
recorded in the artifact via :func:`repro.native.backend_info`.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import RAPMiner
from repro.core.config import RAPMinerConfig
from repro.experiments.runner import run_cases
from repro.native import NumpyBackend, backend_info, resolve_backend
from repro.parallel import BatchConfig, batch_localize

from test_batch_throughput import _assert_identical, _replayed_stream

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_native.json"
#: Stream length: fast-preset case list replayed this many times.
REPLAY = 32
#: Timed repetitions per end-to-end configuration; minimum wall reported.
REPEATS = 3
#: Timed repetitions per micro-timed kernel call; minimum wall reported.
MICRO_REPEATS = 20
#: Top-k of the RAPMD protocol.
K = 5
#: Acceptance floor: native kernel trio vs the vectorized numpy kernels.
TARGET_SPEEDUP = 2.0


def _timed(run, cases, repeats=REPEATS):
    best = float("inf")
    evaluation = None
    for _ in range(repeats):
        stream = _replayed_stream(cases, REPLAY)
        start = time.perf_counter()
        evaluation = run(stream)
        best = min(best, time.perf_counter() - start)
    return best, evaluation


def _micro(call, repeats=MICRO_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def _full_lattice_plans(sizes):
    """Stride matrix + offsets covering every cuboid of the lattice.

    The same compressed plan shape the engine builds per BFS layer
    (``(n_attrs, n_blocks)`` strides, cumulative block offsets), here
    spanning all layers at once so one ``fused_batch`` call measures a
    whole-lattice aggregation of the preset's leaf table.
    """
    n_attrs = len(sizes)
    stride_rows = []
    offsets = [0]
    for layer in range(1, n_attrs + 1):
        for subset in itertools.combinations(range(n_attrs), layer):
            strides = [0] * n_attrs
            stride = 1
            for attr in reversed(subset):
                strides[attr] = stride
                stride *= sizes[attr]
            stride_rows.append(strides)
            offsets.append(offsets[-1] + stride)
    stride_matrix = np.ascontiguousarray(
        np.array(stride_rows, dtype=np.int64).T
    )
    return stride_matrix, np.array(offsets[:-1], dtype=np.int64), offsets[-1]


def _trio_workload(datasets):
    """Realistic inputs for the three hot kernels, from the preset itself."""
    first = datasets[0]
    sizes = list(first.schema.sizes)
    codes = np.ascontiguousarray(first.codes)
    stride_matrix, offsets, total = _full_lattice_plans(sizes)
    label_rows_per_case = [np.flatnonzero(d.labels) for d in datasets]
    key_columns = [np.ascontiguousarray(codes[:, a]) for a in range(len(sizes))]
    layer1_offsets = np.cumsum([0] + sizes[:-1]).tolist()
    full_strides = stride_matrix[:, -1]  # the all-attributes cuboid
    full_keys = np.ascontiguousarray(codes @ full_strides)
    return {
        "fused_batch": (
            codes,
            stride_matrix,
            offsets,
            total,
            label_rows_per_case[0],
            first.v,
            first.f,
        ),
        "stacked_anomalous": (
            key_columns,
            layer1_offsets,
            int(sum(sizes)),
            np.concatenate(label_rows_per_case),
            [rows.size for rows in label_rows_per_case],
        ),
        "stacked_weighted": (
            full_keys,
            int(np.prod(sizes)),
            [[d.v for d in datasets], [d.f for d in datasets]],
        ),
    }


def test_native_kernels_report(rapmd_cases, capsys):
    try:
        native = resolve_backend("native", strict=True)
    except Exception as exc:
        pytest.skip(f"native backend unavailable on this host: {exc}")
    reference = NumpyBackend()
    n_cases = len(rapmd_cases) * REPLAY
    cpu_count = os.cpu_count() or 1

    # -- end-to-end walls, bit-identical candidates asserted ---------------
    serial_s, serial_eval = _timed(
        lambda stream: run_cases(RAPMiner(RAPMinerConfig(backend="numpy")), stream, k=K),
        rapmd_cases,
    )
    vectorized_s, vectorized_eval = _timed(
        lambda stream: batch_localize(
            RAPMiner(RAPMinerConfig(backend="numpy")),
            stream,
            k=K,
            config=BatchConfig(mode="vectorized"),
        ),
        rapmd_cases,
    )
    native_s, native_eval = _timed(
        lambda stream: batch_localize(
            RAPMiner(RAPMinerConfig(backend="native")),
            stream,
            k=K,
            config=BatchConfig(mode="vectorized"),
        ),
        rapmd_cases,
    )
    _assert_identical(vectorized_eval, serial_eval, "vectorized-numpy")
    _assert_identical(native_eval, serial_eval, "native")

    # -- kernel-trio micro-timings at preset scale -------------------------
    datasets = [case.dataset for case in _replayed_stream(rapmd_cases, REPLAY)]
    workload = _trio_workload(datasets)
    kernel_rows = []
    trio_numpy = trio_native = 0.0
    for kernel, args in workload.items():
        numpy_out = getattr(reference, kernel)(*args)
        native_out = getattr(native, kernel)(*args)
        for lane, (a, b) in enumerate(zip(numpy_out, native_out)):
            assert np.array_equal(np.asarray(a), np.asarray(b)), (
                f"{kernel} lane {lane} diverged bitwise across backends"
            )
        numpy_s = _micro(lambda: getattr(reference, kernel)(*args))
        native_kernel_s = _micro(lambda: getattr(native, kernel)(*args))
        trio_numpy += numpy_s
        trio_native += native_kernel_s
        kernel_rows.append(
            {
                "kernel": kernel,
                "numpy_s": numpy_s,
                "native_s": native_kernel_s,
                "speedup": numpy_s / native_kernel_s,
            }
        )
    trio_speedup = trio_numpy / trio_native

    report = {
        "benchmark": "native kernel backend (RAPMD protocol, k=5)",
        "dataset": "rapmd-fast-preset",
        "replay_factor": REPLAY,
        "n_cases": n_cases,
        "repeats": REPEATS,
        "micro_repeats": MICRO_REPEATS,
        "cpu_count": cpu_count,
        "backend": backend_info(native),
        "end_to_end": {
            "serial_numpy_s": serial_s,
            "vectorized_numpy_s": vectorized_s,
            "vectorized_native_s": native_s,
            "native_vs_serial": serial_s / native_s,
            "native_vs_vectorized_numpy": vectorized_s / native_s,
            "bit_identical_to_serial": True,
        },
        "kernels": kernel_rows,
        "trio": {
            "numpy_s": trio_numpy,
            "native_s": trio_native,
            "speedup": trio_speedup,
            "target_speedup": TARGET_SPEEDUP,
            "meets_target": trio_speedup >= TARGET_SPEEDUP,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        info = report["backend"]
        print(
            f"\n[native kernels] {n_cases} cases (replay x{REPLAY}), "
            f"{cpu_count} CPU(s), {info.get('compiler')} "
            f"({info.get('compiler_version')}):"
        )
        print(
            f"  end-to-end: serial {serial_s * 1e3:.1f} ms, "
            f"vectorized-numpy {vectorized_s * 1e3:.1f} ms, "
            f"native {native_s * 1e3:.1f} ms "
            f"({vectorized_s / native_s:.2f}x vs vectorized)"
        )
        for row in kernel_rows:
            print(
                f"  {row['kernel']:>18}: numpy {row['numpy_s'] * 1e6:8.1f} us  "
                f"native {row['native_s'] * 1e6:8.1f} us  {row['speedup']:.2f}x"
            )
        print(
            f"  trio: {trio_speedup:.2f}x "
            f"(target {TARGET_SPEEDUP}x, meets_target={report['trio']['meets_target']}); "
            f"report: {REPORT_PATH.name}"
        )

    assert trio_speedup >= TARGET_SPEEDUP, (
        f"native kernel trio {trio_speedup:.2f}x below the {TARGET_SPEEDUP}x "
        f"floor vs the vectorized numpy kernels at fast-preset scale"
    )
