"""Extension bench: the vertical-assumption crossover (Squeeze vs RAPMiner).

Regenerates the magnitude-spread sweep that interpolates between the
paper's two datasets: spread 0 is the Squeeze dataset's world (identical
per-leaf deviations), large spread is RAPMD's world (independent draws).
The printed curve makes the Fig. 8(a)-vs-Fig. 8(b) contrast continuous
and pins where the crossover falls.
"""

import pytest

from repro.baselines import Squeeze
from repro.core.miner import RAPMiner
from repro.experiments.crossover import SpreadStudyConfig, magnitude_spread_study
from repro.experiments.reporting import render_series_table

SPREADS = (0.0, 0.1, 0.2, 0.4)


@pytest.fixture(scope="module")
def study():
    return magnitude_spread_study(
        spreads=SPREADS,
        methods=[RAPMiner(), Squeeze()],
        config=SpreadStudyConfig(attribute_sizes=(6, 5, 4, 4), n_cases=8, seed=13),
    )


def test_regenerates_crossover(study, capsys):
    with capsys.disabled():
        print("\n[Extension] RC@3 vs per-leaf deviation spread (vertical-assumption erosion)")
        print(render_series_table(study, column_order=list(SPREADS), first_header="method \\ spread"))
    rapminer = study["RAPMiner"]
    squeeze = study["Squeeze"]
    # RAPMiner flat; Squeeze competitive at 0, collapsing by 0.4.
    assert max(rapminer.values()) - min(rapminer.values()) < 0.15
    assert squeeze[0.0] > 0.8
    assert squeeze[max(SPREADS)] < squeeze[0.0] - 0.3


def test_benchmark_one_spread_point(benchmark):
    config = SpreadStudyConfig(attribute_sizes=(5, 4, 4), n_cases=3, seed=3)
    benchmark(
        magnitude_spread_study, (0.2,), [RAPMiner()], 3, config
    )
