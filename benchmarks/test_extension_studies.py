"""Extension benches: noise-level robustness and the §V-F efficiency claim.

Regenerates the two prose-claim studies (no figure in the paper) with
printed tables; see ``repro.experiments.extensions`` for what each
measures.
"""

import pytest

from repro.experiments.extensions import attribute_scaling_study, noise_level_study
from repro.experiments.reporting import render_table


@pytest.fixture(scope="module")
def noise_curve():
    return noise_level_study(cases_per_group=4, seed=2)


@pytest.fixture(scope="module")
def scaling():
    return attribute_scaling_study(n_cases=6, seed=2)


def test_regenerates_noise_study(noise_curve, capsys):
    with capsys.disabled():
        print("\n[Extension] RAPMiner mean F1 vs label-noise level")
        print(
            render_table(
                ["level"] + list(noise_curve),
                [["mean F1"] + [f"{v:.3f}" for v in noise_curve.values()]],
            )
        )
    assert noise_curve["B0"] >= noise_curve["B3"]
    assert noise_curve["B0"] > 0.9


def test_regenerates_attribute_scaling(scaling, capsys):
    by_attributes, by_dimension = scaling
    with capsys.disabled():
        print("\n[Extension] running time vs total attributes (RAP dim fixed at 1)")
        print(
            render_table(
                ["n_attributes", "mean time (ms)", "kept attrs", "RC@1"],
                [
                    [
                        str(r.n_attributes),
                        f"{r.mean_seconds * 1000:.2f}",
                        f"{r.mean_kept_attributes:.1f}",
                        f"{r.recall_at_1:.2f}",
                    ]
                    for r in by_attributes
                ],
            )
        )
        print("\n[Extension] running time vs RAP dimension (6 attributes fixed)")
        print(
            render_table(
                ["rap_dim", "mean time (ms)", "kept attrs", "RC@1"],
                [
                    [
                        str(r.rap_dimension),
                        f"{r.mean_seconds * 1000:.2f}",
                        f"{r.mean_kept_attributes:.1f}",
                        f"{r.recall_at_1:.2f}",
                    ]
                    for r in by_dimension
                ],
            )
        )
    # The paper's claim: time tracks the RAP dimension, not the schema width.
    assert by_dimension[-1].mean_seconds > by_dimension[0].mean_seconds
    widest = by_attributes[-1].mean_seconds
    narrowest = by_attributes[0].mean_seconds
    deepest = by_dimension[-1].mean_seconds
    assert widest < deepest * 5  # width effect far below depth effect


def test_benchmark_noise_point(benchmark):
    benchmark(
        noise_level_study,
        ("B0",),
        3,
        ((1, 1),),
        (5, 4, 3, 3),
        7,
    )
