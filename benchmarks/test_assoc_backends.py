"""Extension bench: Apriori vs FP-growth rule-mining backends.

The paper remarks (§VI) that association-rule localization can be
implemented with Apriori or FP-growth and that "the efficiency of
different implementation methods varies greatly".  This bench measures
both backends on the same RAPMD case and asserts they produce identical
localizations.
"""

import pytest

from repro.baselines.assoc_rules import AssociationRuleConfig, AssociationRuleLocalizer


@pytest.fixture(scope="module")
def case(rapmd_cases):
    return max(rapmd_cases, key=lambda c: c.dataset.n_anomalous)


def test_backends_agree(case):
    fp = AssociationRuleLocalizer(AssociationRuleConfig(backend="fpgrowth"))
    ap = AssociationRuleLocalizer(AssociationRuleConfig(backend="apriori"))
    assert fp.localize(case.dataset, k=5) == ap.localize(case.dataset, k=5)


def test_benchmark_fpgrowth_backend(benchmark, case):
    localizer = AssociationRuleLocalizer(AssociationRuleConfig(backend="fpgrowth"))
    benchmark(localizer.localize, case.dataset, 5)


def test_benchmark_apriori_backend(benchmark, case):
    localizer = AssociationRuleLocalizer(AssociationRuleConfig(backend="apriori"))
    benchmark(localizer.localize, case.dataset, 5)
