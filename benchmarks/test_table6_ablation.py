"""Table VI: RAPMiner with vs without redundant-attribute deletion on RAPMD.

Paper: deletion improves mean running time by 42.07% while decreasing RC@3
by 4.87%.  The benchmark times the two configurations; the shape check
asserts deletion is faster and costs at most a modest amount of recall.
"""

import pytest

from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.experiments.reporting import format_percent, format_seconds, render_table
from repro.experiments.tables import table6


@pytest.fixture(scope="module")
def ablation(rapmd_cases):
    return table6(rapmd_cases)


def test_regenerates_table6(ablation, capsys):
    with capsys.disabled():
        print("\n[Table VI] Redundant-attribute-deletion ablation (RAPMD)")
        print(
            render_table(
                ["Method", "RC@3", "Time", "Efficiency improvement", "Effectiveness decreased"],
                [
                    [
                        "RAPMiner with Redundant Attribute Deletion",
                        f"{ablation.rc3_with_deletion * 100:.1f}%",
                        format_seconds(ablation.seconds_with_deletion),
                        format_percent(ablation.efficiency_improvement),
                        format_percent(ablation.effectiveness_decrease),
                    ],
                    [
                        "RAPMiner without Redundant Attribute Deletion",
                        f"{ablation.rc3_without_deletion * 100:.1f}%",
                        format_seconds(ablation.seconds_without_deletion),
                        "-",
                        "-",
                    ],
                ],
            )
        )
    # Allow a noise margin on the wall-clock comparison at this tiny scale;
    # the paper-scale run (EXPERIMENTS.md) shows the full 37.7% speedup.
    assert ablation.seconds_with_deletion < ablation.seconds_without_deletion * 1.2
    assert ablation.rc3_with_deletion <= ablation.rc3_without_deletion


def test_benchmark_with_deletion(benchmark, rapmd_cases):
    miner = RAPMiner(RAPMinerConfig(enable_attribute_deletion=True))
    dataset = rapmd_cases[0].dataset
    benchmark(miner.localize, dataset, 3)


def test_benchmark_without_deletion(benchmark, rapmd_cases):
    miner = RAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
    dataset = rapmd_cases[0].dataset
    benchmark(miner.localize, dataset, 3)
