"""Streaming delta localization: patched ticks vs cold re-aggregation.

The workload is a replayed multi-tick trace of one monitored leaf
population: a fixed CDN background snapshot whose forecast lane is
redrawn every tick on the rows under two injected RAPs (an incident that
persists while its per-leaf deviations fluctuate), everything else
untouched.  That is the stream shape the delta path (``core/delta.py``)
is built for — a low changed-leaf fraction against a stable layout — and
the shape the production service sees *per incident* once the forecaster
locks on.

Measured configurations:

* **cold** — a stateless :class:`RAPMiner` per tick on a fresh dataset
  object (fresh engine, full re-aggregation): the pre-delta cost model;
* **delta** — one :class:`StreamingRAPMiner` over the whole trace: tick 1
  aggregates cold, every later tick patches the cached cuboid aggregates
  from the changed rows alone.

The report gates on the ISSUE acceptance criteria: amortized per-tick
delta latency (cold first tick included) at least ``TARGET_SPEEDUP``x
below the cold per-tick latency at a changed-leaf fraction of at most
``MAX_CHANGED_FRACTION``, with candidates asserted bit-identical to the
stateless runs on every tick.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.core.config import RAPMinerConfig
from repro.core.incremental import StreamingRAPMiner
from repro.core.miner import RAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import sample_raps
from repro.data.schema import cdn_schema
from repro.native import backend_info, coerce_backend

from test_incremental_warmstart import assert_bit_identical

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_stream.json"
#: Ticks per trace (first one aggregates cold and is charged to delta).
N_TICKS = 48
#: Timed repetitions per configuration; the minimum wall time is reported.
REPEATS = 3
#: Acceptance floor: amortized delta per-tick vs cold per-tick.
TARGET_SPEEDUP = 3.0
#: Acceptance ceiling on the trace's changed-leaf fraction.
MAX_CHANGED_FRACTION = 0.10

# The gate isolates the delta *mechanism* (patched ticks vs cold
# re-aggregation), so both paths are pinned to the numpy reference
# backend: the native C backend accelerates the cold baseline more than
# the tiny per-tick patches and would compress the ratio without the
# mechanism changing.  The artifact records the host's default backend
# (and compiler) separately under ``host_default_backend``.
CONFIG = RAPMinerConfig(enable_attribute_deletion=False, backend="numpy")


def build_trace():
    """A persisted 2-RAP incident: per-tick forecast redraw on RAP rows only.

    Returns the shared arrays (codes, v, per-tick f, per-tick labels) so
    every timed repetition can rebuild *fresh dataset objects* — no
    engine-registry reuse between repetitions — without regenerating data.
    """
    schema = cdn_schema()  # the paper's CDN shape: 33 x 4 x 4 x 20
    sim = CDNSimulator(schema, CDNSimulatorConfig(seed=29))
    background = sim.snapshot(900).to_dataset()
    rng = np.random.default_rng(29)
    raps = sample_raps(
        background, 2, rng, dimensions=[2, 3], min_support=6, max_coverage=0.05
    )
    rap_mask = np.zeros(background.n_rows, dtype=bool)
    for rap in raps:
        rap_mask |= background.mask_of(rap)
    rap_rows = np.flatnonzero(rap_mask)
    v = background.v
    ticks = []
    for _ in range(N_TICKS):
        dev = rng.uniform(0.5, 0.9, rap_rows.size)
        f = v.copy()
        f[rap_rows] = (v[rap_rows] + 1e-6) / (1.0 - dev)
        labels = np.zeros(background.n_rows, dtype=bool)
        labels[rap_rows] = True
        ticks.append((f, labels))
    return background.schema, background.codes, v, ticks, rap_rows.size


def make_datasets(schema, codes, v, ticks):
    """Fresh dataset objects over the shared trace arrays."""
    return [FineGrainedDataset(schema, codes, v, f, labels) for f, labels in ticks]


def test_stream_delta_report(capsys):
    schema, codes, v, ticks, n_changed = build_trace()
    n_leaves = codes.shape[0]
    changed_fraction = n_changed / n_leaves

    # Reference + per-tick equivalence gate (untimed): stateless candidates
    # on rebuilt datasets, codes copied so no cache can leak between runs.
    reference = []
    for dataset in make_datasets(schema, codes, v, ticks):
        rebuilt = FineGrainedDataset(
            schema, dataset.codes.copy(), dataset.v, dataset.f, dataset.labels
        )
        reference.append(RAPMiner(CONFIG).run(rebuilt).candidates)

    cold_s = float("inf")
    for _ in range(REPEATS):
        datasets = make_datasets(schema, codes, v, ticks)
        miner = RAPMiner(CONFIG)
        gc.collect()  # dead engines from the previous repetition, off the clock
        start = time.perf_counter()
        produced = [miner.run(dataset).candidates for dataset in datasets]
        cold_s = min(cold_s, time.perf_counter() - start)
    for got, want in zip(produced, reference):
        assert_bit_identical(got, want)

    delta_s = float("inf")
    streaming = None
    for _ in range(REPEATS):
        datasets = make_datasets(schema, codes, v, ticks)
        streaming = StreamingRAPMiner(CONFIG)
        gc.collect()
        start = time.perf_counter()
        produced = [streaming.run(dataset).candidates for dataset in datasets]
        delta_s = min(delta_s, time.perf_counter() - start)
    for got, want in zip(produced, reference):
        assert_bit_identical(got, want)

    stats = streaming.stats
    speedup = cold_s / delta_s
    report = {
        "benchmark": "streaming delta localization (persisted 2-RAP incident)",
        "backend": backend_info(coerce_backend(CONFIG.backend)),
        "host_default_backend": backend_info(),
        "n_ticks": N_TICKS,
        "n_leaves": int(n_leaves),
        "changed_rows_per_tick": int(n_changed),
        "changed_fraction": changed_fraction,
        "repeats": REPEATS,
        "cold_per_tick_s": cold_s / N_TICKS,
        "delta_amortized_per_tick_s": delta_s / N_TICKS,
        "patched_ticks": stats.patched_ticks,
        "cold_ticks": stats.cold_ticks,
        "rebases": stats.rebases,
        "patch_seconds_total": stats.patch_seconds,
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "max_changed_fraction": MAX_CHANGED_FRACTION,
        "bit_identical_to_stateless": True,
        "meets_target": bool(
            speedup >= TARGET_SPEEDUP and changed_fraction <= MAX_CHANGED_FRACTION
        ),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(
            f"\n[stream delta] {N_TICKS} ticks x {n_leaves} leaves, "
            f"{n_changed} changed rows/tick ({changed_fraction:.1%}):"
        )
        print(f"  cold : {cold_s / N_TICKS * 1e3:8.2f} ms/tick")
        print(
            f"  delta: {delta_s / N_TICKS * 1e3:8.2f} ms/tick amortized "
            f"({stats.patched_ticks} patched, {stats.cold_ticks} cold, "
            f"{stats.rebases} re-bases)"
        )
        print(
            f"  speedup {speedup:.2f}x  report: {REPORT_PATH.name} "
            f"(meets_target={report['meets_target']})"
        )

    assert changed_fraction <= MAX_CHANGED_FRACTION, (
        f"trace churn {changed_fraction:.1%} above the "
        f"{MAX_CHANGED_FRACTION:.0%} acceptance ceiling"
    )
    assert stats.patched_ticks == N_TICKS - 1, (
        f"expected every tick after the first to patch, got "
        f"{stats.patched_ticks} patched / {stats.cold_ticks} cold"
    )
    assert speedup >= TARGET_SPEEDUP, (
        f"amortized delta path {speedup:.2f}x below the {TARGET_SPEEDUP}x floor"
    )


def test_benchmark_delta_stream(benchmark):
    """pytest-benchmark timing of the delta path over one trace replay."""
    schema, codes, v, ticks, __ = build_trace()

    def run():
        miner = StreamingRAPMiner(CONFIG)
        return [
            miner.run(dataset).candidates
            for dataset in make_datasets(schema, codes, v, ticks)
        ]

    benchmark.pedantic(run, rounds=3, iterations=1)
