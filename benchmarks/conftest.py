"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper at the
``fast`` preset scale (the relationships, not the absolute numbers, are the
reproduction target — see EXPERIMENTS.md for a paper-scale run).  Dataset
generation is session-scoped so pytest-benchmark timings measure the
localizers, not the generators.
"""

from __future__ import annotations

import pytest

from repro.experiments.presets import fast_preset


@pytest.fixture(scope="session")
def preset():
    return fast_preset(seed=1)


@pytest.fixture(scope="session")
def squeeze_cases(preset):
    return preset.squeeze_cases()


@pytest.fixture(scope="session")
def rapmd_cases(preset):
    return preset.rapmd_cases()
