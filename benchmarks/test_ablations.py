"""Ablation benches for RAPMiner design choices beyond Table VI.

DESIGN.md §7 calls out three further design decisions; each gets a
measured comparison here:

* **Early stop** — runtime saved vs candidates lost when the search stops
  at full anomaly coverage.
* **Layer-normalized ranking** (Eq. 3's 1/sqrt(layer)) vs raw confidence —
  RC@3 impact on RAPMD.
* **Vectorized cuboid aggregation** vs a naive per-combination scan —
  the implementation choice that makes Algorithm 2 fast.
"""

import numpy as np
import pytest

from repro.core.config import RAPMinerConfig
from repro.core.cuboid import Cuboid
from repro.core.miner import RAPMiner
from repro.experiments.reporting import render_table
from repro.experiments.runner import run_cases


class TestEarlyStopAblation:
    def test_early_stop_never_loses_recall_at_small_k(self, rapmd_cases, capsys):
        with_stop = run_cases(RAPMiner(RAPMinerConfig(early_stop=True)), rapmd_cases, k=3)
        without_stop = run_cases(RAPMiner(RAPMinerConfig(early_stop=False)), rapmd_cases, k=3)
        with capsys.disabled():
            print("\n[Ablation] Early stop on RAPMD")
            print(
                render_table(
                    ["variant", "RC@3", "mean time (s)"],
                    [
                        ["early stop", f"{with_stop.recall_at(3):.3f}", f"{with_stop.mean_seconds:.4f}"],
                        ["full search", f"{without_stop.recall_at(3):.3f}", f"{without_stop.mean_seconds:.4f}"],
                    ],
                )
            )
        # Early stop may only drop candidates that rank below the ones
        # already found; at k=3 the recall difference stays small.
        assert with_stop.recall_at(3) >= without_stop.recall_at(3) - 0.15

    def test_benchmark_early_stop(self, benchmark, rapmd_cases):
        miner = RAPMiner(RAPMinerConfig(early_stop=True))
        benchmark(miner.localize, rapmd_cases[0].dataset, 3)

    def test_benchmark_full_search(self, benchmark, rapmd_cases):
        miner = RAPMiner(RAPMinerConfig(early_stop=False))
        benchmark(miner.localize, rapmd_cases[0].dataset, 3)


class TestRankingAblation:
    def test_layer_normalization_not_worse(self, rapmd_cases, capsys):
        normalized = run_cases(
            RAPMiner(RAPMinerConfig(layer_normalized_ranking=True)), rapmd_cases, k=3
        )
        raw = run_cases(
            RAPMiner(RAPMinerConfig(layer_normalized_ranking=False)), rapmd_cases, k=3
        )
        with capsys.disabled():
            print("\n[Ablation] RAPScore layer normalization on RAPMD")
            print(
                render_table(
                    ["ranking", "RC@3"],
                    [
                        ["confidence / sqrt(layer)  (Eq. 3)", f"{normalized.recall_at(3):.3f}"],
                        ["raw confidence", f"{raw.recall_at(3):.3f}"],
                    ],
                )
            )
        assert normalized.recall_at(3) >= raw.recall_at(3) - 0.1


class TestAggregationImplementation:
    @staticmethod
    def naive_aggregate(dataset, cuboid):
        """Per-combination Python scan (the implementation we avoided)."""
        out = {}
        for combination in cuboid.combinations(dataset.schema):
            mask = dataset.mask_of(combination)
            support = int(mask.sum())
            if support:
                out[combination] = (support, int(dataset.labels[mask].sum()))
        return out

    def test_vectorized_matches_naive(self, rapmd_cases):
        dataset = rapmd_cases[0].dataset
        for indices in ([0], [1, 3], [0, 2, 3]):
            cuboid = Cuboid(indices)
            agg = dataset.aggregate(cuboid)
            naive = self.naive_aggregate(dataset, cuboid)
            assert len(agg) == len(naive)
            for i in range(len(agg)):
                support, anomalous = naive[agg.combination(i)]
                assert agg.support[i] == support
                assert agg.anomalous_support[i] == anomalous

    def test_benchmark_vectorized(self, benchmark, rapmd_cases):
        dataset = rapmd_cases[0].dataset
        benchmark(dataset.aggregate, Cuboid([0, 1, 3]))

    def test_benchmark_naive(self, benchmark, rapmd_cases):
        dataset = rapmd_cases[0].dataset
        benchmark(self.naive_aggregate, dataset, Cuboid([0, 1, 3]))
