"""Engine vs. naive-path speedup of Algorithm 2 on the fast-preset RAPMD cases.

The measured workload is the repository's full sensitivity-sweep protocol
(Fig. 10): per case, :func:`layerwise_topdown_search` runs once per
``t_cp`` grid point (over that threshold's surviving attributes, at the
default ``t_conf``) and once per ``t_conf`` grid point (over the default
threshold's attributes) — eleven searches over one collection interval.
This is the production shape of repeated search and exactly what the
shared :class:`AggregationEngine` accelerates:

* the **naive path** drives the shared search code through
  :class:`NaiveAggregationEngine`, reproducing the pre-engine cost profile
  (per-cuboid leaf-table aggregation with four separate bincounts and a
  full-table mask per candidate, re-derived from scratch at every grid
  point);
* the **engine path** uses one :class:`AggregationEngine` per case,
  created *inside* the timed region (no warm-start credit for the cold
  first search) and shared across the grid, the way :func:`engine_for`
  shares it in production — aggregates are threshold-independent, so
  later grid points hit the cache.

Attribute deletion (Algorithm 1) is precomputed outside the timed region:
its cost is identical on both paths and the report isolates the search.
Candidates must be bit-identical per (case, grid point); the wall-clock
report is written to ``BENCH_search.json`` at the repository root (see
``make bench-search``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.classification_power import delete_redundant_attributes
from repro.core.config import RAPMinerConfig
from repro.core.engine import AggregationEngine, NaiveAggregationEngine
from repro.core.search import layerwise_topdown_search
from repro.experiments.figures import DEFAULT_TCONF_GRID, DEFAULT_TCP_GRID

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_search.json"
#: Timed repetitions per case and path; the minimum is reported.
REPEATS = 9
#: Acceptance floor from the issue: total naive time / total engine time.
TARGET_SPEEDUP = 3.0


def _grid_points(config):
    """The Fig. 10 grid as (label, kept-set key, t_conf) triples."""
    points = [(f"t_cp={t_cp}", t_cp, config.t_conf) for t_cp in DEFAULT_TCP_GRID]
    points += [
        (f"t_conf={t_conf}", config.t_cp, t_conf) for t_conf in DEFAULT_TCONF_GRID
    ]
    return points


def _kept_indices(case, config):
    """Algorithm 1 survivors per ``t_cp`` grid value (computed untimed)."""
    thresholds = set(DEFAULT_TCP_GRID) | {config.t_cp}
    return {
        t_cp: delete_redundant_attributes(case.dataset, t_cp).kept_indices
        for t_cp in thresholds
    }


def _run_sweep(case, kept, grid, engine_factory, shared_engine):
    """One full grid sweep; returns outcomes keyed by grid-point label."""
    engine = engine_factory(case.dataset) if shared_engine else None
    outcomes = {}
    for label, t_cp, t_conf in grid:
        outcomes[label] = layerwise_topdown_search(
            case.dataset,
            kept[t_cp],
            t_conf=t_conf,
            engine=engine if shared_engine else engine_factory(case.dataset),
        )
    return outcomes


def _time_sweep(case, kept, grid, engine_factory, shared_engine):
    best = float("inf")
    outcomes = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        outcomes = _run_sweep(case, kept, grid, engine_factory, shared_engine)
        best = min(best, time.perf_counter() - start)
    return best, outcomes


def test_engine_speedup_report(rapmd_cases, capsys):
    config = RAPMinerConfig()
    grid = _grid_points(config)
    rows = []
    for case in rapmd_cases:
        kept = _kept_indices(case, config)
        naive_s, naive_outcomes = _time_sweep(
            case, kept, grid, NaiveAggregationEngine, shared_engine=False
        )
        engine_s, engine_outcomes = _time_sweep(
            case, kept, grid, AggregationEngine, shared_engine=True
        )
        # Bit-identical candidate sets at every grid point: same
        # combinations, confidences, supports, in the same BFS order.
        for label, __, __ in grid:
            assert (
                engine_outcomes[label].candidates == naive_outcomes[label].candidates
            ), f"{case.case_id} diverged at {label}"
            assert engine_outcomes[label].stats == naive_outcomes[label].stats
        rows.append(
            {
                "case": case.case_id,
                "naive_s": naive_s,
                "engine_s": engine_s,
                "speedup": naive_s / engine_s if engine_s > 0 else float("inf"),
            }
        )

    naive_total = sum(r["naive_s"] for r in rows)
    engine_total = sum(r["engine_s"] for r in rows)
    overall = naive_total / engine_total if engine_total > 0 else float("inf")
    report = {
        "benchmark": "layerwise_topdown_search sensitivity-grid sweep",
        "dataset": "rapmd-fast-preset",
        "t_cp_grid": list(DEFAULT_TCP_GRID),
        "t_conf_grid": list(DEFAULT_TCONF_GRID),
        "searches_per_case": len(grid),
        "repeats": REPEATS,
        "cases": rows,
        "naive_total_s": naive_total,
        "engine_total_s": engine_total,
        "speedup": overall,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n[engine speedup] {len(rows)} cases x {len(grid)} grid points:")
        print(f"  naive  total: {naive_total * 1e3:8.2f} ms")
        print(f"  engine total: {engine_total * 1e3:8.2f} ms")
        print(f"  speedup: {overall:.2f}x  (report: {REPORT_PATH.name})")

    assert overall >= TARGET_SPEEDUP, (
        f"engine speedup {overall:.2f}x below the {TARGET_SPEEDUP}x target"
    )


@pytest.mark.parametrize("path", ["naive", "engine"])
def test_benchmark_search_path(benchmark, rapmd_cases, path):
    """pytest-benchmark timings of one representative case's sweep per path."""
    config = RAPMinerConfig()
    grid = _grid_points(config)
    case = rapmd_cases[0]
    kept = _kept_indices(case, config)
    factory = NaiveAggregationEngine if path == "naive" else AggregationEngine

    def run():
        return _run_sweep(case, kept, grid, factory, shared_engine=path == "engine")

    benchmark(run)
