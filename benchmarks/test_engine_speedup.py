"""Engine vs. naive-path speedup of Algorithm 2 on the fast-preset RAPMD cases.

The measured workload is the repository's full sensitivity-sweep protocol
(Fig. 10): per case, :func:`layerwise_topdown_search` runs once per
``t_cp`` grid point (over that threshold's surviving attributes, at the
default ``t_conf``) and once per ``t_conf`` grid point (over the default
threshold's attributes) — eleven searches over one collection interval.
This is the production shape of repeated search and exactly what the
shared :class:`AggregationEngine` accelerates:

* the **naive path** drives the shared search code through
  :class:`NaiveAggregationEngine`, reproducing the pre-engine cost profile
  (per-cuboid leaf-table aggregation with four separate bincounts and a
  full-table mask per candidate, re-derived from scratch at every grid
  point);
* the **engine path** uses one :class:`AggregationEngine` per case,
  created *inside* the timed region (no warm-start credit for the cold
  first search) and shared across the grid, the way :func:`engine_for`
  shares it in production — aggregates are threshold-independent, so
  later grid points hit the cache.

Attribute deletion (Algorithm 1) is precomputed outside the timed region:
its cost is identical on both paths and the report isolates the search.
Candidates must be bit-identical per (case, grid point); the wall-clock
report is written to ``BENCH_search.json`` at the repository root (see
``make bench-search``).  Each case also carries the engine counter totals
of one instrumented (untimed) sweep — cache hit rate, bincount passes,
layer-scan memo hits — so a speedup regression in the artifact can be
attributed to a specific cache without re-running anything.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.classification_power import delete_redundant_attributes
from repro.core.config import RAPMinerConfig
from repro.core.engine import AggregationEngine, NaiveAggregationEngine
from repro.core.search import layerwise_topdown_search
from repro.experiments.figures import DEFAULT_TCONF_GRID, DEFAULT_TCP_GRID

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_search.json"
#: Timed repetitions per case and path; the minimum is reported.
REPEATS = 9
#: Acceptance floor from the issue: total naive time / total engine time.
TARGET_SPEEDUP = 3.0


def _grid_points(config):
    """The Fig. 10 grid as (label, kept-set key, t_conf) triples."""
    points = [(f"t_cp={t_cp}", t_cp, config.t_conf) for t_cp in DEFAULT_TCP_GRID]
    points += [
        (f"t_conf={t_conf}", config.t_cp, t_conf) for t_conf in DEFAULT_TCONF_GRID
    ]
    return points


def _kept_indices(case, config):
    """Algorithm 1 survivors per ``t_cp`` grid value (computed untimed)."""
    thresholds = set(DEFAULT_TCP_GRID) | {config.t_cp}
    return {
        t_cp: delete_redundant_attributes(case.dataset, t_cp).kept_indices
        for t_cp in thresholds
    }


def _run_sweep(case, kept, grid, engine_factory, shared_engine):
    """One full grid sweep; returns outcomes keyed by grid-point label."""
    engine = engine_factory(case.dataset) if shared_engine else None
    outcomes = {}
    for label, t_cp, t_conf in grid:
        outcomes[label] = layerwise_topdown_search(
            case.dataset,
            kept[t_cp],
            t_conf=t_conf,
            engine=engine if shared_engine else engine_factory(case.dataset),
        )
    return outcomes


def _time_sweeps(case, kept, grid):
    """Min-of-REPEATS timings of both paths, repeats interleaved.

    Alternating naive/engine repetitions inside one loop means a slow
    stretch of the machine (frequency scaling, a neighbouring process)
    penalizes both paths alike instead of skewing whichever path happened
    to run during it — the reported ratio measures the code, not the
    scheduler.
    """
    paths = (
        ("naive", NaiveAggregationEngine, False),
        ("engine", AggregationEngine, True),
    )
    best = {name: float("inf") for name, __, __ in paths}
    outcomes = {}
    for _ in range(REPEATS):
        for name, factory, shared in paths:
            start = time.perf_counter()
            outcomes[name] = _run_sweep(case, kept, grid, factory, shared)
            best[name] = min(best[name], time.perf_counter() - start)
    return best, outcomes


def _engine_counters(case, kept, grid):
    """Engine counter totals of one instrumented (untimed) shared-engine sweep.

    Captured outside the timed region so the telemetry itself never skews
    the wall-clock numbers; the counters make a perf regression diagnosable
    from the artifact alone (did the cache hit rate collapse, or did the
    bincount pass count explode?).
    """
    with obs.capture() as collector:
        _run_sweep(case, kept, grid, AggregationEngine, shared_engine=True)
    metrics = collector.metrics
    requests = metrics.family_total("engine_aggregate_total")
    cache_hits = metrics.value("engine_aggregate_total", {"path": "cache_hit"})
    return {
        "aggregate_requests": int(requests),
        "aggregate_by_path": {
            path: int(metrics.value("engine_aggregate_total", {"path": path}))
            for path in ("cache_hit", "rollup", "warm_refresh", "cold")
        },
        "cache_hit_rate": cache_hits / requests if requests else 0.0,
        "bincount_passes": int(metrics.family_total("engine_bincount_passes_total")),
        "batched_cuboids": int(metrics.value("engine_batch_cuboids_total")),
        "layer_scan_memo_hits": int(
            metrics.value("engine_layer_scan_memo_hits_total")
        ),
    }


def test_engine_speedup_report(rapmd_cases, capsys):
    config = RAPMinerConfig()
    grid = _grid_points(config)
    rows = []
    for case in rapmd_cases:
        kept = _kept_indices(case, config)
        best, outcomes = _time_sweeps(case, kept, grid)
        naive_s, engine_s = best["naive"], best["engine"]
        naive_outcomes, engine_outcomes = outcomes["naive"], outcomes["engine"]
        # Bit-identical candidate sets at every grid point: same
        # combinations, confidences, supports, in the same BFS order.
        for label, __, __ in grid:
            assert (
                engine_outcomes[label].candidates == naive_outcomes[label].candidates
            ), f"{case.case_id} diverged at {label}"
            assert engine_outcomes[label].stats == naive_outcomes[label].stats
        rows.append(
            {
                "case": case.case_id,
                "naive_s": naive_s,
                "engine_s": engine_s,
                "speedup": naive_s / engine_s if engine_s > 0 else float("inf"),
            }
        )

    # Counter collection happens after ALL timing: the instrumented sweeps
    # allocate spans and metric objects, and interleaving that with the
    # timed regions would perturb later cases (GC pressure, cache state).
    for row, case in zip(rows, rapmd_cases):
        row["engine_counters"] = _engine_counters(case, _kept_indices(case, config), grid)

    naive_total = sum(r["naive_s"] for r in rows)
    engine_total = sum(r["engine_s"] for r in rows)
    overall = naive_total / engine_total if engine_total > 0 else float("inf")
    total_requests = sum(
        r["engine_counters"]["aggregate_requests"] for r in rows
    )
    total_cache_hits = sum(
        r["engine_counters"]["aggregate_by_path"]["cache_hit"] for r in rows
    )
    engine_counter_totals = {
        "aggregate_requests": total_requests,
        "cache_hit_rate": total_cache_hits / total_requests if total_requests else 0.0,
        "bincount_passes": sum(
            r["engine_counters"]["bincount_passes"] for r in rows
        ),
        "layer_scan_memo_hits": sum(
            r["engine_counters"]["layer_scan_memo_hits"] for r in rows
        ),
    }
    report = {
        "benchmark": "layerwise_topdown_search sensitivity-grid sweep",
        "dataset": "rapmd-fast-preset",
        "t_cp_grid": list(DEFAULT_TCP_GRID),
        "t_conf_grid": list(DEFAULT_TCONF_GRID),
        "searches_per_case": len(grid),
        "repeats": REPEATS,
        "cases": rows,
        "naive_total_s": naive_total,
        "engine_total_s": engine_total,
        "speedup": overall,
        "engine_counter_totals": engine_counter_totals,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n[engine speedup] {len(rows)} cases x {len(grid)} grid points:")
        print(f"  naive  total: {naive_total * 1e3:8.2f} ms")
        print(f"  engine total: {engine_total * 1e3:8.2f} ms")
        print(
            f"  cache hit rate: {engine_counter_totals['cache_hit_rate']:.1%}  "
            f"bincount passes: {engine_counter_totals['bincount_passes']}"
        )
        print(f"  speedup: {overall:.2f}x  (report: {REPORT_PATH.name})")

    assert overall >= TARGET_SPEEDUP, (
        f"engine speedup {overall:.2f}x below the {TARGET_SPEEDUP}x target"
    )


@pytest.mark.parametrize("path", ["naive", "engine"])
def test_benchmark_search_path(benchmark, rapmd_cases, path):
    """pytest-benchmark timings of one representative case's sweep per path."""
    config = RAPMinerConfig()
    grid = _grid_points(config)
    case = rapmd_cases[0]
    kept = _kept_indices(case, config)
    factory = NaiveAggregationEngine if path == "naive" else AggregationEngine

    def run():
        return _run_sweep(case, kept, grid, factory, shared_engine=path == "engine")

    benchmark(run)
