"""Fig. 8(b): RC@3 / RC@4 / RC@5 on RAPMD.

Regenerates the method-by-k recall matrix and asserts the paper's headline
claim: RAPMiner achieves the best RC@k, with the FP-growth association
rules the runner-up and Squeeze degraded by RAPMD's randomness.
"""

import pytest

from repro.experiments.figures import figure8b, run_rapmd_comparison
from repro.experiments.presets import paper_methods
from repro.experiments.reporting import render_series_table


@pytest.fixture(scope="module")
def evaluations(rapmd_cases):
    return run_rapmd_comparison(rapmd_cases)


def test_regenerates_fig8b(evaluations, capsys):
    data = figure8b(evaluations)
    with capsys.disabled():
        print("\n[Fig. 8(b)] RC@k on RAPMD")
        print(render_series_table(data, column_order=[3, 4, 5], first_header="method \\ k"))
    for k in (3, 4, 5):
        best = max(data, key=lambda name: data[name][k])
        assert best == "RAPMiner", (k, {n: data[n][k] for n in data})
    assert data["Squeeze"][3] < data["FP-growth"][3]


@pytest.mark.parametrize("method", paper_methods(), ids=lambda m: m.name)
def test_benchmark_localization(benchmark, method, rapmd_cases):
    """Per-method timing on one representative RAPMD case."""
    case = rapmd_cases[len(rapmd_cases) // 2]
    benchmark(method.localize, case.dataset, 5)
