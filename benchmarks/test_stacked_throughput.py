"""Case-stacked batch kernel throughput: serial vs vectorized vs auto.

The workload is the same replayed-stream model as
``test_batch_throughput.py`` — the fast preset's RAPMD cases repeated
``REPLAY`` times as fresh snapshot objects over shared array buffers,
i.e. a stream of snapshots of one KPI population.  That is exactly the
shape the case-stacked kernel (``core/stacked.py``) is built for: every
replayed snapshot shares the leaf layout, so ``RAPMiner.run_batch``
stacks the whole stream into one layout group and aggregates each BFS
layer for all cases in one fused bincount pass.

Measured configurations:

* **serial** — :func:`run_cases`, one cold engine per snapshot (the
  figure drivers' behaviour);
* **vectorized** — :func:`batch_localize` with ``mode="vectorized"``:
  the in-process stacked kernel, no pool, no transport;
* **auto** — ``mode="auto"`` at 2 workers, recording what the host
  heuristic resolved to (in-process vectorized on few-CPU machines, a
  pool of vectorized workers otherwise).

Every configuration's ranked output is asserted bit-identical to
serial, and — unlike the process-pool benchmark, which only wins with
spare physical cores — the vectorized kernel is pure array-level
batching, so its ``TARGET_SPEEDUP`` floor is enforced on *every*
machine, single-CPU containers included.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import RAPMiner
from repro.experiments.runner import run_cases
from repro.native import backend_info
from repro.parallel import BatchConfig, batch_localize

from test_batch_throughput import _assert_identical, _replayed_stream

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_stacked.json"
#: Stream length: fast-preset case list replayed this many times.
REPLAY = 32
#: Timed repetitions per configuration; the minimum wall time is reported.
REPEATS = 3
#: Acceptance floor of the vectorized kernel vs serial, any machine.
TARGET_SPEEDUP = 2.0
#: Top-k of the RAPMD protocol.
K = 5


def _timed(run, cases, repeats=REPEATS):
    best = float("inf")
    evaluation = None
    for _ in range(repeats):
        stream = _replayed_stream(cases, REPLAY)
        start = time.perf_counter()
        evaluation = run(stream)
        best = min(best, time.perf_counter() - start)
    return best, evaluation


def test_stacked_throughput_report(rapmd_cases, capsys):
    method = RAPMiner()
    n_cases = len(rapmd_cases) * REPLAY
    cpu_count = os.cpu_count() or 1

    serial_s, serial_eval = _timed(
        lambda stream: run_cases(method, stream, k=K), rapmd_cases
    )

    auto_config = BatchConfig(mode="auto", n_workers=min(2, cpu_count))
    execution, worker_vectorized = auto_config.resolve_mode()
    auto_resolved = "sharded+vectorized" if worker_vectorized else execution

    configs = [
        ("vectorized", BatchConfig(mode="vectorized")),
        (f"auto ({auto_resolved})", auto_config),
    ]
    rows = [
        {
            "mode": "serial",
            "wall_s": serial_s,
            "cases_per_s": n_cases / serial_s,
            "speedup_vs_serial": 1.0,
        }
    ]
    vectorized_speedup = None
    for label, config in configs:
        wall, evaluation = _timed(
            lambda stream: batch_localize(method, stream, k=K, config=config),
            rapmd_cases,
        )
        _assert_identical(evaluation, serial_eval, label)
        speedup = serial_s / wall
        rows.append(
            {
                "mode": label,
                "wall_s": wall,
                "cases_per_s": n_cases / wall,
                "speedup_vs_serial": speedup,
            }
        )
        if label == "vectorized":
            vectorized_speedup = speedup

    report = {
        "benchmark": "case-stacked batch kernel throughput (RAPMD protocol, k=5)",
        "dataset": "rapmd-fast-preset",
        "backend": backend_info(),
        "replay_factor": REPLAY,
        "n_cases": n_cases,
        "repeats": REPEATS,
        "cpu_count": cpu_count,
        "auto_resolved_mode": auto_resolved,
        "configurations": rows,
        "bit_identical_to_serial": True,
        "target_speedup_vectorized": TARGET_SPEEDUP,
        "speedup_vectorized": vectorized_speedup,
        "meets_target": vectorized_speedup >= TARGET_SPEEDUP,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(
            f"\n[stacked throughput] {n_cases} cases (replay x{REPLAY}), "
            f"{cpu_count} CPU(s):"
        )
        for row in rows:
            print(
                f"  {row['mode']:>22}: {row['wall_s'] * 1e3:8.1f} ms  "
                f"{row['cases_per_s']:8.1f} cases/s  "
                f"{row['speedup_vs_serial']:.2f}x"
            )
        print(
            f"  report: {REPORT_PATH.name} "
            f"(meets_target={report['meets_target']})"
        )

    assert vectorized_speedup >= TARGET_SPEEDUP, (
        f"vectorized kernel {vectorized_speedup:.2f}x below the "
        f"{TARGET_SPEEDUP}x floor (array-level batching needs no spare cores)"
    )


def test_benchmark_vectorized_path(benchmark, rapmd_cases):
    """pytest-benchmark timing of the in-process vectorized kernel (short stream)."""
    method = RAPMiner()
    config = BatchConfig(mode="vectorized")

    def run():
        stream = _replayed_stream(rapmd_cases, 2)
        return batch_localize(method, stream, k=K, config=config)

    benchmark.pedantic(run, rounds=3, iterations=1)
