"""Batch-localization throughput: serial vs. the process-pool batch layer.

The measured workload models the paper's operating regime (§V): a stream
of snapshots of the same KPI population arriving over time.  The fast
preset's RAPMD cases are replayed ``REPLAY`` times with *fresh*
:class:`FineGrainedDataset` objects sharing the underlying arrays — fresh
objects so the weak-keyed :func:`engine_for` registry gives the serial
baseline its production behaviour (one cold engine per interval), while
the batch layer's per-worker warm engines get exactly the reuse
opportunity a real stream offers (consecutive snapshots share a leaf
population).

Measured configurations:

* **serial** — :func:`run_cases` as the figure drivers call it;
* **sharded** — :func:`batch_localize` at 1/2/4 workers (1 worker is the
  serial fallback by contract, reported to make that visible) over both
  transports (``shm`` zero-copy leaf tables vs. ``pickle`` per-task
  serialization);
* **counter merge** — the 2-worker shm run repeated under
  :func:`obs.capture`, reporting what worker snapshot collection and the
  parent-side merge add to the wall clock.

Every configuration's ranked output is asserted bit-identical to the
serial run's, always.  The wall-clock *speedup* assertion is gated on the
machine: a process pool cannot beat serial wall-clock on a single-CPU
box, where batch throughput is bounded by serial throughput plus pool
overhead — multi-worker configurations are therefore *skipped* there
(recorded as ``skipped`` rows, with ``meets_target: null``) rather than
timed as pure fork latency.  The report records ``cpu_count`` so the
artifact is interpretable wherever it was produced; on >= 4 CPUs the
``TARGET_SPEEDUP`` floor is enforced.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import RAPMiner, obs
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import LocalizationCase
from repro.experiments.runner import run_cases
from repro.parallel import BatchConfig, batch_localize

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
#: Stream length: fast-preset case list replayed this many times.
REPLAY = 32
#: Timed repetitions per configuration; the minimum wall time is reported.
REPEATS = 3
#: Acceptance floor at 4 workers — enforced only on machines with >= 4 CPUs.
TARGET_SPEEDUP = 2.5
#: Top-k of the RAPMD protocol.
K = 5


def _replayed_stream(cases, replay):
    """The case list repeated *replay* times as fresh snapshot objects.

    Array buffers are shared (zero extra memory); dataset and case
    objects are fresh, so no engine cache survives from a previous timed
    run — each configuration starts from the same cold state.
    """
    stream = []
    for round_index in range(replay):
        for case in cases:
            dataset = case.dataset
            stream.append(
                LocalizationCase(
                    case_id=f"{case.case_id}#r{round_index}",
                    dataset=FineGrainedDataset(
                        dataset.schema,
                        dataset.codes,
                        dataset.v,
                        dataset.f,
                        dataset.labels,
                    ),
                    true_raps=case.true_raps,
                    metadata=dict(case.metadata),
                )
            )
    return stream


def _timed(run, cases, repeats=REPEATS):
    """Min-of-*repeats* wall time of ``run(fresh_stream)`` plus its result."""
    best = float("inf")
    evaluation = None
    for _ in range(repeats):
        stream = _replayed_stream(cases, REPLAY)
        start = time.perf_counter()
        evaluation = run(stream)
        best = min(best, time.perf_counter() - start)
    return best, evaluation


def _assert_identical(evaluation, serial_evaluation, label):
    assert [r.case_id for r in evaluation.results] == [
        r.case_id for r in serial_evaluation.results
    ], f"{label}: case order diverged"
    for got, want in zip(evaluation.results, serial_evaluation.results):
        assert got.predicted == want.predicted, f"{label}: {got.case_id} diverged"


def test_batch_throughput_report(rapmd_cases, capsys):
    method = RAPMiner()
    n_cases = len(rapmd_cases) * REPLAY
    cpu_count = os.cpu_count() or 1
    # A process pool on a single-CPU box measures only pool overhead, at
    # ~10x the wall cost of everything else in this file: skip those
    # configurations and say so in the artifact instead of publishing a
    # number that only characterizes fork latency.
    skip_pool = cpu_count == 1

    serial_s, serial_eval = _timed(
        lambda stream: run_cases(method, stream, k=K), rapmd_cases
    )
    serial_rate = n_cases / serial_s

    rows = [
        {
            "mode": "serial",
            "workers": 1,
            "transport": None,
            "wall_s": serial_s,
            "cases_per_s": serial_rate,
            "speedup_vs_serial": 1.0,
        }
    ]
    speedup_at_4 = None
    for transport in ("shm", "pickle"):
        for workers in (1, 2, 4):
            mode = "sharded" if workers > 1 else "serial-fallback"
            if workers > 1 and skip_pool:
                rows.append(
                    {
                        "mode": mode,
                        "workers": workers,
                        "transport": transport,
                        "skipped": "cpu_count == 1: pool cannot beat serial",
                    }
                )
                continue
            config = BatchConfig(n_workers=workers, transport=transport)
            wall, evaluation = _timed(
                lambda stream: batch_localize(method, stream, k=K, config=config),
                rapmd_cases,
            )
            _assert_identical(
                evaluation, serial_eval, f"{transport}@{workers}"
            )
            speedup = serial_s / wall
            rows.append(
                {
                    "mode": mode,
                    "workers": workers,
                    "transport": transport,
                    "wall_s": wall,
                    "cases_per_s": n_cases / wall,
                    "speedup_vs_serial": speedup,
                }
            )
            if transport == "shm" and workers == 4:
                speedup_at_4 = speedup

    # Counter-merge overhead: the same 2-worker shm run, captured.  The
    # delta covers worker-side metric bumps, snapshot pickling, and the
    # parent-side registry merge.
    if skip_pool:
        counter_merge = {
            "workers": 2,
            "transport": "shm",
            "skipped": "cpu_count == 1: pool cannot beat serial",
        }
    else:
        merge_config = BatchConfig(n_workers=2, transport="shm")
        plain_s, __ = _timed(
            lambda stream: batch_localize(method, stream, k=K, config=merge_config),
            rapmd_cases,
        )

        def _captured(stream):
            with obs.capture() as collector:
                evaluation = batch_localize(method, stream, k=K, config=merge_config)
            _captured.collector = collector
            return evaluation

        captured_s, captured_eval = _timed(_captured, rapmd_cases)
        _assert_identical(captured_eval, serial_eval, "captured shm@2")
        merged = _captured.collector.metrics.value("parallel_merge_snapshots_total")
        counter_merge = {
            "workers": 2,
            "transport": "shm",
            "plain_wall_s": plain_s,
            "captured_wall_s": captured_s,
            "overhead_s": captured_s - plain_s,
            "merged_snapshots": merged,
        }

    # meets_target is measured-or-nothing: None when the 4-worker shm
    # configuration was skipped, never a False inferred from a
    # configuration that did not run.
    meets_target = (
        None if speedup_at_4 is None else speedup_at_4 >= TARGET_SPEEDUP
    )
    report = {
        "benchmark": "batch localization throughput (RAPMD protocol, k=5)",
        "dataset": "rapmd-fast-preset",
        "replay_factor": REPLAY,
        "n_cases": n_cases,
        "repeats": REPEATS,
        "cpu_count": cpu_count,
        "configurations": rows,
        "counter_merge": counter_merge,
        "bit_identical_to_serial": True,
        "target_speedup_at_4_workers": TARGET_SPEEDUP,
        "speedup_at_4_workers": speedup_at_4,
        "meets_target": meets_target,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n[batch throughput] {n_cases} cases (replay x{REPLAY}), {cpu_count} CPU(s):")
        for row in rows:
            transport = row["transport"] or "-"
            if "skipped" in row:
                print(
                    f"  {row['mode']:>15} workers={row['workers']} {transport:>6}: "
                    f"skipped ({row['skipped']})"
                )
                continue
            print(
                f"  {row['mode']:>15} workers={row['workers']} {transport:>6}: "
                f"{row['wall_s'] * 1e3:8.1f} ms  {row['cases_per_s']:8.1f} cases/s  "
                f"{row['speedup_vs_serial']:.2f}x"
            )
        if "skipped" in counter_merge:
            print(f"  counter merge: skipped ({counter_merge['skipped']})")
        else:
            print(
                f"  counter merge overhead @2 workers: "
                f"{(captured_s - plain_s) * 1e3:+.1f} ms ({merged:.0f} snapshots)"
            )
        print(f"  report: {REPORT_PATH.name} (meets_target={meets_target})")

    if cpu_count >= 4:
        assert speedup_at_4 >= TARGET_SPEEDUP, (
            f"4-worker speedup {speedup_at_4:.2f}x below the "
            f"{TARGET_SPEEDUP}x floor on a {cpu_count}-CPU machine"
        )


@pytest.mark.skipif(
    (os.cpu_count() or 1) == 1,
    reason="a 2-worker pool on one CPU times fork overhead, not the batch path",
)
def test_benchmark_batch_path(benchmark, rapmd_cases):
    """pytest-benchmark timing of the 2-worker shm batch path (short stream)."""
    method = RAPMiner()
    config = BatchConfig(n_workers=2, transport="shm")

    def run():
        stream = _replayed_stream(rapmd_cases, 2)
        return batch_localize(method, stream, k=K, config=config)

    benchmark.pedantic(run, rounds=3, iterations=1)
