"""Table IV: DecreaseRatio@k of redundant-attribute deletion (Eq. 2).

Regenerates the paper's row (0.5, 0.75, 0.875, 0.9375, 0.96875) and
benchmarks the closed-form computation.
"""

import pytest

from repro.experiments.reporting import render_table
from repro.experiments.tables import table4

PAPER_TABLE4 = {1: 0.5, 2: 0.75, 3: 0.875, 4: 0.9375, 5: 0.96875}


def test_regenerates_paper_row(capsys):
    ratios = table4()
    assert ratios == PAPER_TABLE4
    with capsys.disabled():
        print("\n[Table IV] DecreaseRatio@k")
        print(
            render_table(
                ["k"] + [str(k) for k in ratios],
                [["DecreaseRatio@k"] + [f"{v:.5f}" for v in ratios.values()]],
            )
        )


def test_benchmark_closed_form(benchmark):
    result = benchmark(table4, ks=tuple(range(1, 6)))
    assert result == PAPER_TABLE4
