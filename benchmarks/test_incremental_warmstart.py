"""Extension bench: warm-start localization across incident intervals.

Measures the fast-path speedup of :class:`IncrementalRAPMiner` over the
stateless miner on a simulated multi-interval incident, and asserts the
two produce identical pattern sets throughout.
"""

import numpy as np
import pytest

from repro.core.config import RAPMinerConfig
from repro.core.incremental import IncrementalRAPMiner
from repro.core.miner import RAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import cdn_schema


@pytest.fixture(scope="module")
def incident_intervals():
    """Ten consecutive intervals of one persisted 2-RAP incident."""
    sim = CDNSimulator(cdn_schema(12, 3, 3, 8), CDNSimulatorConfig(seed=47))
    rng = np.random.default_rng(47)
    background = sim.snapshot(500).to_dataset()
    raps = sample_raps(background, 2, rng, min_support=8)
    intervals = []
    for step in range(10):
        snapshot = sim.snapshot(500 + step).to_dataset()
        labelled, __ = inject_failures(snapshot, raps, rng)
        intervals.append(labelled)
    return raps, intervals


CONFIG = RAPMinerConfig(enable_attribute_deletion=False)


def test_warm_start_matches_stateless(incident_intervals):
    raps, intervals = incident_intervals
    incremental = IncrementalRAPMiner(CONFIG)
    stateless = RAPMiner(CONFIG)
    for interval in intervals:
        assert set(incremental.localize(interval)) == set(stateless.localize(interval))
    assert incremental.stats.fast_path_hits == len(intervals) - 1


def test_benchmark_stateless_incident(benchmark, incident_intervals):
    __, intervals = incident_intervals
    miner = RAPMiner(CONFIG)

    def run_all():
        for interval in intervals:
            miner.localize(interval)

    benchmark(run_all)


def test_benchmark_warm_start_incident(benchmark, incident_intervals):
    __, intervals = incident_intervals

    def run_all():
        miner = IncrementalRAPMiner(CONFIG)
        for interval in intervals:
            miner.localize(interval)

    benchmark(run_all)
