"""Extension bench: warm-start localization across incident intervals.

Measures the fast-path speedup of :class:`IncrementalRAPMiner` over the
stateless miner on a simulated multi-interval incident, and asserts the
two produce **bit-identical candidates** on every interval — full
:class:`~repro.core.scoring.RAPCandidate` equality (combination, float
confidence, layer, support, anomalous support), not just the same
pattern set.  This is the equivalence gate the streaming delta path
(`core/delta.py`) inherits: any warm path that drifts from the stateless
ranking by even one ulp of confidence fails here first.
"""

import numpy as np
import pytest

from repro.core.config import RAPMinerConfig
from repro.core.incremental import IncrementalRAPMiner, StreamingRAPMiner
from repro.core.miner import RAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import cdn_schema


@pytest.fixture(scope="module")
def incident_intervals():
    """Ten consecutive intervals of one persisted 2-RAP incident."""
    sim = CDNSimulator(cdn_schema(12, 3, 3, 8), CDNSimulatorConfig(seed=47))
    rng = np.random.default_rng(47)
    background = sim.snapshot(500).to_dataset()
    raps = sample_raps(background, 2, rng, min_support=8)
    intervals = []
    for step in range(10):
        snapshot = sim.snapshot(500 + step).to_dataset()
        labelled, __ = inject_failures(snapshot, raps, rng)
        intervals.append(labelled)
    return raps, intervals


CONFIG = RAPMinerConfig(enable_attribute_deletion=False)


def stateless_candidates(interval):
    """Reference ranking from a fresh miner on a fresh engine.

    The dataset is rebuilt so the stateless run cannot silently reuse an
    engine the warm miner installed via the per-dataset registry.
    """
    rebuilt = type(interval)(
        interval.schema,
        interval.codes.copy(),
        interval.v,
        interval.f,
        interval.labels,
    )
    return RAPMiner(CONFIG).run(rebuilt).candidates


def assert_bit_identical(candidates, reference):
    """Full-field candidate equality, confidence floats included."""
    assert len(candidates) == len(reference)
    for got, want in zip(candidates, reference):
        assert got.combination == want.combination
        assert got.confidence == want.confidence  # bitwise: same float
        assert got.layer == want.layer
        assert got.support == want.support
        assert got.anomalous_support == want.anomalous_support


def test_warm_start_matches_stateless(incident_intervals):
    __, intervals = incident_intervals
    incremental = IncrementalRAPMiner(CONFIG)
    for interval in intervals:
        assert_bit_identical(
            incremental.run(interval).candidates, stateless_candidates(interval)
        )
    assert incremental.stats.fast_path_hits == len(intervals) - 1


def test_streaming_matches_stateless(incident_intervals):
    __, intervals = incident_intervals
    streaming = StreamingRAPMiner(CONFIG)
    for interval in intervals:
        assert_bit_identical(
            streaming.run(interval).candidates, stateless_candidates(interval)
        )
    assert streaming.stats.ticks == len(intervals)


def test_benchmark_stateless_incident(benchmark, incident_intervals):
    __, intervals = incident_intervals
    miner = RAPMiner(CONFIG)
    reference = [stateless_candidates(interval) for interval in intervals]

    def run_all():
        return [miner.run(interval).candidates for interval in intervals]

    produced = benchmark(run_all)
    for got, want in zip(produced, reference):
        assert_bit_identical(got, want)


def test_benchmark_warm_start_incident(benchmark, incident_intervals):
    __, intervals = incident_intervals
    reference = [stateless_candidates(interval) for interval in intervals]

    def run_all():
        miner = IncrementalRAPMiner(CONFIG)
        return [miner.run(interval).candidates for interval in intervals]

    produced = benchmark(run_all)
    for got, want in zip(produced, reference):
        assert_bit_identical(got, want)
