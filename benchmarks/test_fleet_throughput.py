"""Fleet scheduling: static home-shard routing vs work stealing on skew.

The measured workload models the fleet's reason to exist: many tenants
sharing one serving substrate, with Zipf-skewed volume — one heavy
tenant submits more than every light tenant combined, so static
home-shard routing piles its cases onto one queue while the other shards
idle.  The fast preset's RAPMD cases are replayed ``REPLAY`` times as
fresh snapshot objects (same regime as ``BENCH_throughput``), each
assigned a tenant drawn from a seeded Zipf-like distribution.

Two measurements, because wall clock alone cannot answer the mechanism
question on every host:

* **Wall clock** — the thread-mode fleet, static vs stealing.  Honest
  gating: on a single-CPU host threads cannot run concurrently, so the
  wall numbers are recorded (``cpu_count`` rides in the artifact) but
  the ``TARGET_RATIO`` floor is only *enforced* on >= 4-CPU machines.
* **Virtual clock** — :func:`repro.fleet.simulated_makespan` replays the
  exact scheduler (routing, steal rule, tie-breaks) with each case
  costed by its measured serial seconds.  The static/steal makespan
  ratio measures pure queue balance, independent of CPU count and the
  GIL, so the >= ``TARGET_RATIO`` floor is asserted *everywhere*, along
  with steal-count > 0.

Every fleet configuration's ranked output is asserted bit-identical to
the serial reference, always — skew, stealing and shard count may move
work around, never change it.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro import RAPMiner
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import LocalizationCase
from repro.experiments.runner import run_cases
from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    layout_key,
    simulated_makespan,
)

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"
#: Stream length: fast-preset case list replayed this many times.
REPLAY = 16
#: Timed repetitions per configuration; the minimum wall time is reported.
REPEATS = 3
#: Shards per layout in every fleet configuration.
SHARDS = 4
#: Acceptance floor on the static/steal makespan ratio.
TARGET_RATIO = 1.3
#: Top-k of the RAPMD protocol.
K = 5
#: Zipf-like tenant universe: weight 1/rank, so tenant-1 dominates.
TENANT_RANKS = 8


def _replayed_stream(cases, replay):
    """Fresh snapshot objects over shared buffers (cold engine state)."""
    stream = []
    for round_index in range(replay):
        for case in cases:
            dataset = case.dataset
            stream.append(
                LocalizationCase(
                    case_id=f"{case.case_id}#r{round_index}",
                    dataset=FineGrainedDataset(
                        dataset.schema,
                        dataset.codes,
                        dataset.v,
                        dataset.f,
                        dataset.labels,
                    ),
                    true_raps=case.true_raps,
                    metadata=dict(case.metadata),
                )
            )
    return stream


def _zipf_tenants(n, seed=11):
    """A Zipf-skewed tenant per case: P(rank r) proportional to 1/r."""
    rng = random.Random(seed)
    names = [f"tenant-{rank}" for rank in range(1, TENANT_RANKS + 1)]
    weights = [1.0 / rank for rank in range(1, TENANT_RANKS + 1)]
    return [rng.choices(names, weights=weights)[0] for _ in range(n)]


def _timed(run, cases, repeats=REPEATS):
    best = float("inf")
    evaluation = None
    for _ in range(repeats):
        stream = _replayed_stream(cases, REPLAY)
        start = time.perf_counter()
        evaluation = run(stream)
        best = min(best, time.perf_counter() - start)
    return best, evaluation


def _assert_identical(evaluation, serial_evaluation, label):
    assert [r.case_id for r in evaluation.results] == [
        r.case_id for r in serial_evaluation.results
    ], f"{label}: case order diverged"
    for got, want in zip(evaluation.results, serial_evaluation.results):
        assert got.error is None, f"{label}: {got.case_id} errored: {got.error}"
        assert got.predicted == want.predicted, f"{label}: {got.case_id} diverged"


def test_fleet_throughput_report(rapmd_cases, capsys):
    method = RAPMiner()
    n_cases = len(rapmd_cases) * REPLAY
    cpu_count = os.cpu_count() or 1
    tenants = _zipf_tenants(n_cases)
    heavy_share = tenants.count("tenant-1") / n_cases

    serial_s, serial_eval = _timed(
        lambda stream: run_cases(method, stream, k=K), rapmd_cases
    )

    rows = [
        {
            "mode": "serial",
            "steal": None,
            "wall_s": serial_s,
            "cases_per_s": n_cases / serial_s,
        }
    ]
    walls = {}
    steal_counts = {}
    for steal in (False, True):
        label = "steal" if steal else "static"
        config = FleetConfig(
            mode="thread", steal=steal, shards_per_layout=SHARDS, k=K
        )
        captured = {}

        def run(stream, config=config, captured=captured):
            supervisor = FleetSupervisor(method, config=config)
            for case, tenant in zip(stream, tenants):
                supervisor.submit(case, tenant=tenant)
            evaluation = supervisor.drain()
            captured["steals"] = supervisor.scheduler.total_steals
            captured["stolen"] = supervisor.scheduler.total_stolen
            return evaluation

        wall, evaluation = _timed(run, rapmd_cases)
        _assert_identical(evaluation, serial_eval, label)
        walls[label] = wall
        steal_counts[label] = captured
        rows.append(
            {
                "mode": f"fleet-{label}",
                "steal": steal,
                "shards_per_layout": SHARDS,
                "wall_s": wall,
                "cases_per_s": n_cases / wall,
                "steals": captured["steals"],
                "stolen_cases": captured["stolen"],
            }
        )

    # Stealing must actually fire under this skew — a zero steal count
    # would mean the benchmark measured nothing.
    assert steal_counts["steal"]["steals"] > 0
    assert steal_counts["static"]["steals"] == 0

    # Virtual-clock mechanism measurement: same scheduler, same routing,
    # each case costed at its measured serial seconds.
    jobs = []
    stream = _replayed_stream(rapmd_cases, REPLAY)
    costs = {r.case_id: max(r.seconds, 1e-6) for r in serial_eval.results}
    for case, tenant in zip(stream, tenants):
        jobs.append((tenant, layout_key(case.dataset), costs[case.case_id]))
    sim_static, __ = simulated_makespan(jobs, shards_per_layout=SHARDS, steal=False)
    sim_steal, sim_steals = simulated_makespan(
        jobs, shards_per_layout=SHARDS, steal=True
    )
    sim_ratio = sim_static / sim_steal
    assert sim_steals > 0

    wall_ratio = walls["static"] / walls["steal"]
    # meets_target is measured-or-nothing: on hosts where threads cannot
    # run concurrently the wall ratio is recorded but not gated.
    gate_wall = cpu_count >= 4
    meets_target = wall_ratio >= TARGET_RATIO if gate_wall else None

    report = {
        "benchmark": "fleet scheduling: static sharding vs work stealing (RAPMD, k=5)",
        "dataset": "rapmd-fast-preset",
        "replay_factor": REPLAY,
        "n_cases": n_cases,
        "repeats": REPEATS,
        "cpu_count": cpu_count,
        "shards_per_layout": SHARDS,
        "tenant_ranks": TENANT_RANKS,
        "heavy_tenant_share": heavy_share,
        "configurations": rows,
        "bit_identical_to_serial": True,
        "target_ratio": TARGET_RATIO,
        "wall_ratio_static_over_steal": wall_ratio,
        "wall_gate_enforced": gate_wall,
        "simulated_makespan_static_s": sim_static,
        "simulated_makespan_steal_s": sim_steal,
        "simulated_ratio_static_over_steal": sim_ratio,
        "simulated_steals": sim_steals,
        "meets_target": meets_target,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(
            f"\n[fleet] {n_cases} cases (replay x{REPLAY}), {cpu_count} CPU(s), "
            f"{SHARDS} shards/layout, heavy tenant {heavy_share:.0%}:"
        )
        for row in rows:
            steals = (
                f"  {row['steals']} steal(s)/{row['stolen_cases']} case(s)"
                if row.get("steals") is not None
                else ""
            )
            print(
                f"  {row['mode']:>13}: {row['wall_s'] * 1e3:8.1f} ms  "
                f"{row['cases_per_s']:8.1f} cases/s{steals}"
            )
        print(
            f"  wall  static/steal: {wall_ratio:.2f}x "
            f"({'gated' if gate_wall else 'recorded only: < 4 CPUs'})"
        )
        print(
            f"  vclock static/steal: {sim_ratio:.2f}x "
            f"({sim_steals} simulated steal(s); floor {TARGET_RATIO}x, always gated)"
        )
        print(f"  report: {REPORT_PATH.name} (meets_target={meets_target})")

    # The mechanism floor holds everywhere; the wall floor only where the
    # host can express it.
    assert sim_ratio >= TARGET_RATIO, (
        f"virtual-clock steal ratio {sim_ratio:.2f}x below the "
        f"{TARGET_RATIO}x floor: stealing is not balancing this skew"
    )
    if gate_wall:
        assert wall_ratio >= TARGET_RATIO, (
            f"wall steal ratio {wall_ratio:.2f}x below the {TARGET_RATIO}x "
            f"floor on a {cpu_count}-CPU machine"
        )
