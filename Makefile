.PHONY: install test test-backends chaos docs-check kernels-check fleet-check serve-smoke bench bench-search bench-throughput bench-stacked bench-stream bench-native bench-fleet bench-serve obs-overhead telemetry-smoke trace-demo report examples paper clean

install:
	pip install -e .[dev]

test:
	pytest tests/

# Tier-1 under both kernel backends: the numpy reference, then the
# native C library (which degrades to numpy with a warning when the
# host has no compiler — the suite must pass either way).
test-backends:
	RAPMINER_BACKEND=numpy pytest tests/
	RAPMINER_BACKEND=native pytest tests/

# Fault-injection suite (docs/resilience.md): fixed seeds + StepClocks,
# fully deterministic — no timing flakes.
chaos:
	pytest tests/resilience/ -p no:cacheprovider

# Docs integrity gate: intra-doc links resolve, doc code-block imports
# still exist, every docs/*.md is listed in docs/index.md.
docs-check:
	pytest tests/test_docs.py -p no:cacheprovider

# Native kernel gate: backend registry + bitwise-equivalence tests, then
# a strict compile + randomized spot checks with per-kernel micro-timings
# (python -m repro.native.selfcheck; exit 2 = cannot build, 1 = mismatch).
kernels-check:
	pytest tests/native/ -p no:cacheprovider
	python -m repro.native.selfcheck

# Fleet gate (tier-1): scheduler/supervisor/store suites, the bitwise
# fleet-vs-serial property test, and a 2-worker fast-preset smoke.
fleet-check:
	pytest tests/fleet/ tests/property/test_fleet_properties.py -p no:cacheprovider

# Serving gate (tier-1): protocol/admission/server suites plus the
# end-to-end smoke — boot `repro serve` in a child process, submit cases
# over HTTP and binary frames, assert bit-identical answers vs an
# in-process run, scrape /metrics off the same port, SIGINT-drain clean.
serve-smoke:
	pytest tests/serving/ tests/property/test_serving_properties.py -p no:cacheprovider

bench:
	pytest benchmarks/ --benchmark-only

# Engine vs. naive search speedup; writes BENCH_search.json at the repo root.
bench-search:
	pytest benchmarks/test_engine_speedup.py::test_engine_speedup_report -p no:cacheprovider

# Serial vs. sharded batch localization throughput (1/2/4 workers,
# shm vs pickle transport); writes BENCH_throughput.json at the repo root.
bench-throughput:
	pytest benchmarks/test_batch_throughput.py::test_batch_throughput_report -p no:cacheprovider

# Serial vs. case-stacked vectorized batch kernel (mode=vectorized/auto);
# writes BENCH_stacked.json at the repo root and enforces the >=2x floor.
bench-stacked:
	pytest benchmarks/test_stacked_throughput.py::test_stacked_throughput_report -p no:cacheprovider

# Streaming delta vs cold re-aggregation on a replayed multi-tick trace;
# writes BENCH_stream.json at the repo root and enforces the >=3x floor
# with bit-identical candidates asserted on every tick.
bench-stream:
	pytest benchmarks/test_stream_delta.py::test_stream_delta_report -p no:cacheprovider

# Serial vs vectorized-numpy vs native C backend; writes BENCH_native.json
# at the repo root and enforces the >=2x floor on the kernel trio with
# bit-identical candidates asserted end to end.
bench-native:
	pytest benchmarks/test_native_kernels.py::test_native_kernels_report -p no:cacheprovider

# Static sharding vs work stealing on a Zipf-skewed tenant mix; writes
# BENCH_fleet.json at the repo root.  The >=1.3x steal gate is enforced
# through the virtual-clock makespan everywhere and through wall clock
# only on >=4-CPU hosts (cpu_count is recorded; 1-CPU hosts report the
# wall numbers honestly without gating on them), with steal-count > 0
# and bit-identical candidates asserted in every configuration.
bench-fleet:
	pytest benchmarks/test_fleet_throughput.py::test_fleet_throughput_report -p no:cacheprovider

# Sustained serving throughput over a live wire (1 and 4 client threads)
# plus the overload shed profile; writes BENCH_serve.json at the repo
# root with cpu_count recorded.  Bit-identity of every accepted response
# and typed, leak-free shedding are asserted; throughput is recorded,
# not gated (a shared host's capacity is an observation, not an invariant).
bench-serve:
	pytest benchmarks/test_serve_throughput.py::test_serve_throughput_report -p no:cacheprovider

# "Off = free" guard: per-op ceilings on the disabled obs primitives plus
# a macro stability check of the obs-disabled hot path; writes
# BENCH_obs.json at the repo root.
obs-overhead:
	pytest benchmarks/test_obs_overhead.py::test_obs_overhead_report -p no:cacheprovider

# Live telemetry smoke (tier-1): starts the exposition server on an
# ephemeral port, scrapes /metrics + /healthz + /debug/* during a short
# replay, and validates the Prometheus text parses.
telemetry-smoke:
	pytest tests/obs/test_server.py -p no:cacheprovider

# Small localization under --trace: asserts the JSONL trace parses and
# carries the expected span names / engine counters (tier-1 test).
trace-demo:
	pytest tests/test_cli.py -k trace -p no:cacheprovider

# Regenerate every table/figure with printed output (fast preset).
regen:
	pytest benchmarks/

report:
	python -m repro.experiments.report_builder --scale fast --out report.md

report-paper:
	python -m repro.experiments.report_builder --scale paper --extensions --out report.md

examples:
	python examples/quickstart.py
	python examples/cdn_incident_localization.py
	python examples/online_monitoring.py
	python examples/custom_dataset.py
	python examples/threshold_diagnostics.py
	python examples/method_comparison.py
	python examples/parameter_tuning.py

paper:
	python examples/method_comparison.py --paper-scale
	python examples/parameter_tuning.py --paper-scale

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
