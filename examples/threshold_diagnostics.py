"""Diagnostics: why a threshold works, and how each method fails.

Combines the analysis toolbox on a RAPMD-style dataset:

1. profile the Classification Power of attributes inside vs outside the
   ground-truth RAPs, get a data-driven ``t_CP`` recommendation, and show
   the deletion error rates it implies (the mechanism behind Fig. 10(a));
2. run RAPMiner and Squeeze, then break their misses down by failure mode
   (exact / over-coarse / over-fine / overlapping / missed) — the paper's
   RC@k gap between them, explained;
3. confirm the headline comparison is statistically solid with a paired
   bootstrap over per-case F1.

Run:  python examples/threshold_diagnostics.py
"""

from repro.analysis import analyze_failures, profile_classification_power
from repro.baselines import Squeeze
from repro.core.miner import RAPMiner
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.experiments.runner import run_cases
from repro.metrics.significance import paired_bootstrap, per_case_scores


def main() -> None:
    print("generating a RAPMD-style dataset (40 cases)...")
    cases = generate_rapmd(
        cdn_schema(10, 3, 3, 8), RAPMDConfig(n_cases=40, n_days=7, seed=5)
    )

    # 1. Classification-Power profile.
    profile = profile_classification_power(cases)
    recommended = profile.recommended_t_cp(keep_fraction=0.95)
    print(
        f"\nCP profile: {len(profile.in_rap)} in-RAP observations, "
        f"{len(profile.out_of_rap)} out-of-RAP"
    )
    print(f"  separation AUC:      {profile.auc():.3f}")
    print(f"  recommended t_CP:    {recommended:.4f}  (keep >= 95% of RAP attributes)")
    for t_cp in (recommended, 0.02, 0.1):
        in_deleted, out_deleted = profile.deletion_rates(t_cp)
        print(
            f"  at t_CP={t_cp:.4f}: deletes {in_deleted * 100:4.1f}% of RAP attributes, "
            f"{out_deleted * 100:4.1f}% of redundant ones"
        )

    # 2. Failure taxonomy.
    print("\nrunning RAPMiner and Squeeze (k=3)...")
    evaluations = {
        "RAPMiner": run_cases(RAPMiner(), cases, k=3),
        "Squeeze": run_cases(Squeeze(), cases, k=3),
    }
    for name, evaluation in evaluations.items():
        print(f"\n{analyze_failures(evaluation).render()}")

    # 3. Significance of the gap.
    scores_a, scores_b = per_case_scores(
        evaluations["RAPMiner"], evaluations["Squeeze"]
    )
    result = paired_bootstrap(scores_a, scores_b, seed=5)
    verdict = "significant" if result.significant else "not significant"
    print(
        f"\npaired bootstrap (RAPMiner - Squeeze per-case F1): "
        f"{result.mean_difference:+.3f} "
        f"[{result.ci_low:+.3f}, {result.ci_high:+.3f}] -> {verdict}"
    )


if __name__ == "__main__":
    main()
