"""Threshold tuning: a miniature of the paper's Fig. 10 and Tables IV/VI.

Sweeps RAPMiner's two thresholds on a RAPMD-style dataset, prints the
sensitivity curves, the redundant-attribute-deletion ablation (Table VI),
and the closed-form Table IV — everything an operator needs to pick
``t_CP`` and ``t_conf`` for their own deployment.

Run:  python examples/parameter_tuning.py
"""

import argparse

from repro.experiments import (
    fast_preset,
    figure10a,
    figure10b,
    format_percent,
    format_seconds,
    paper_preset,
    render_table,
    table4,
    table6,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    preset = paper_preset(args.seed) if args.paper_scale else fast_preset(args.seed)

    print("[Table IV] search-space reduction from deleting k redundant attributes")
    ratios = table4()
    print(
        render_table(
            ["k"] + [str(k) for k in ratios],
            [["DecreaseRatio@k"] + [f"{v:.5f}" for v in ratios.values()]],
        )
    )

    print("\ngenerating RAPMD-style cases...")
    cases = preset.rapmd_cases()
    print(f"  {len(cases)} cases")

    print("\n[Fig. 10(a)] RC@3 vs t_CP (keep it below 0.1)")
    curve_a = figure10a(cases)
    print(
        render_table(
            ["t_CP"] + [f"{t:g}" for t in curve_a],
            [["RC@3"] + [f"{v:.3f}" for v in curve_a.values()]],
        )
    )

    print("\n[Fig. 10(b)] RC@3 vs t_conf (keep it above 0.5)")
    curve_b = figure10b(cases)
    print(
        render_table(
            ["t_conf"] + [f"{t:g}" for t in curve_b],
            [["RC@3"] + [f"{v:.3f}" for v in curve_b.values()]],
        )
    )

    print("\n[Table VI] redundant-attribute-deletion ablation")
    ablation = table6(cases)
    print(
        render_table(
            ["variant", "RC@3", "mean time"],
            [
                [
                    "with deletion",
                    f"{ablation.rc3_with_deletion * 100:.1f}%",
                    format_seconds(ablation.seconds_with_deletion),
                ],
                [
                    "without deletion",
                    f"{ablation.rc3_without_deletion * 100:.1f}%",
                    format_seconds(ablation.seconds_without_deletion),
                ],
            ],
        )
    )
    print(
        f"efficiency improvement: {format_percent(ablation.efficiency_improvement)}   "
        f"effectiveness decreased: {format_percent(ablation.effectiveness_decrease)}"
    )


if __name__ == "__main__":
    main()
