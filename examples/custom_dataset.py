"""Bring your own data: localize anomalies in an external CSV leaf table.

Shows the integration path a downstream user takes with their own
monitoring export instead of the built-in generators:

1. define the schema of your system's attributes;
2. load a CSV in the Table III layout (attribute columns + ``v,f,label``,
   written here for the demo by `dataset_to_csv`);
3. (optionally) validate the data, run any localizer, and audit the result
   with `explain` before acting on it.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import RAPMiner
from repro.core.attribute import AttributeSchema
from repro.core.explain import explain
from repro.data import FineGrainedDataset, dataset_from_csv, dataset_to_csv
from repro.detection import DeviationThresholdDetector, label_dataset


def fabricate_export(schema: AttributeSchema, path: Path) -> None:
    """Stand-in for a real monitoring export: a checkout-errors incident
    affecting the EU region of the 'payments' service."""
    from repro.core.attribute import AttributeCombination

    rng = np.random.default_rng(99)
    n = schema.n_leaves
    v = rng.uniform(200.0, 800.0, n)
    table = FineGrainedDataset.full(schema, v, v.copy())
    f = table.v.copy()
    incident = table.mask_of(AttributeCombination.parse("(eu, *, payments)"))
    f[incident] = table.v[incident] / 0.45  # actuals dropped 55% below forecast
    labelled = label_dataset(
        FineGrainedDataset(schema, table.codes, table.v, f),
        DeviationThresholdDetector(threshold=0.3),
    )
    dataset_to_csv(labelled, path)


def main() -> None:
    schema = AttributeSchema(
        {
            "region": ["us", "eu", "apac"],
            "client": ["web", "ios", "android"],
            "service": ["payments", "search", "catalog", "accounts"],
        }
    )

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "kpi_export.csv"
        fabricate_export(schema, csv_path)
        print(f"loading {csv_path.name} ({csv_path.stat().st_size} bytes)...")

        dataset = dataset_from_csv(csv_path, schema)
        print(f"{dataset.n_rows} leaf KPIs, {dataset.n_anomalous} flagged anomalous")

        result = RAPMiner().run(dataset, k=3)
        print("\nlocalized scopes:")
        for candidate in result.candidates:
            print(
                f"  {candidate.combination}  confidence={candidate.confidence:.2f} "
                f"score={candidate.score:.2f}"
            )

        print("\nresult audit:")
        print(explain(dataset, result.patterns).render())


if __name__ == "__main__":
    main()
