"""Quickstart: localize an injected CDN failure with RAPMiner.

Walks the public API end to end:

1. build the paper's CDN schema (Table I, scaled down for speed);
2. simulate background traffic and take one snapshot;
3. inject two root anomaly patterns (the paper's §V-A procedure);
4. run RAPMiner and inspect the ranked result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RAPMiner, RAPMinerConfig, cdn_schema
from repro.data import CDNSimulator, CDNSimulatorConfig, inject_failures, sample_raps


def main() -> None:
    # 1. Schema: locations x access types x OSes x websites.
    schema = cdn_schema(n_locations=12, n_access_types=3, n_os=3, n_websites=10)
    print(f"schema: {schema!r}  ({schema.n_leaves} leaf combinations)")

    # 2. Background traffic at 20:00 on day 3.
    simulator = CDNSimulator(schema, CDNSimulatorConfig(seed=7))
    background = simulator.snapshot(step=3 * 1440 + 20 * 60).to_dataset()
    print(f"snapshot: {background.n_rows} active leaves")

    # 3. Inject two failures: any dimension, per-leaf random magnitudes.
    rng = np.random.default_rng(7)
    true_raps = sample_raps(background, n_raps=2, rng=rng, min_support=8)
    labelled, __ = inject_failures(background, true_raps, rng)
    print("injected RAPs:  ", ", ".join(str(r) for r in true_raps))
    print(f"anomalous leaves: {labelled.n_anomalous}/{labelled.n_rows}")

    # 4. Localize.
    miner = RAPMiner(RAPMinerConfig(t_cp=0.005, t_conf=0.8))
    result = miner.run(labelled, k=3)

    print("\ndeleted attributes:", result.deletion.deleted_names(labelled) or "(none)")
    print("classification power:")
    for name, cp in sorted(result.deletion.cp_values.items(), key=lambda kv: -kv[1]):
        print(f"  {name:12s} {cp:.3f}")
    print(
        f"search: {result.stats.n_cuboids_visited} cuboids, "
        f"{result.stats.n_combinations_evaluated} combinations, "
        f"early stop = {result.stats.early_stopped}"
    )

    print("\nranked root anomaly patterns:")
    for rank, candidate in enumerate(result.candidates, start=1):
        hit = "HIT " if candidate.combination in true_raps else "miss"
        print(
            f"  #{rank} [{hit}] {candidate.combination}  "
            f"confidence={candidate.confidence:.3f} layer={candidate.layer} "
            f"score={candidate.score:.3f}"
        )

    recovered = sum(1 for c in result.candidates if c.combination in true_raps)
    print(f"\nrecovered {recovered}/{len(true_raps)} injected RAPs")


if __name__ == "__main__":
    main()
