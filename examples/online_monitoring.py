"""Continuous monitoring: the paper's Fig. 1 operations loop, end to end.

Runs the :class:`~repro.service.LocalizationService` over three simulated
days of CDN traffic sampled every 30 minutes.  Two incidents are staged —
a regional outage on day 2 and a per-site cache failure (visible only in
the *derived* hit-ratio KPI) on day 3 — and the service must stay quiet in
between, raise both alarms, and localize both scopes.

Run:  python examples/online_monitoring.py
"""

import numpy as np

from repro import cdn_schema
from repro.core.attribute import AttributeCombination
from repro.data import CDNSimulator, CDNSimulatorConfig
from repro.data.derived import RATIO, DerivedKPI, MultiKPIDataset
from repro.detection import DeviationThresholdDetector, SeasonalNaiveForecaster
from repro.service import DeviationAlarm, LocalizationService

SAMPLE_EVERY = 30  # minutes
PERIOD = 1440 // SAMPLE_EVERY


def main() -> None:
    schema = cdn_schema(8, 3, 3, 6)
    simulator = CDNSimulator(schema, CDNSimulatorConfig(seed=21, noise_sigma=0.02))
    codes = simulator.snapshot(0).codes

    service = LocalizationService(
        schema=schema,
        codes=codes,
        forecaster=SeasonalNaiveForecaster(period=PERIOD),
        detector=DeviationThresholdDetector(threshold=0.3),
        alarm=DeviationAlarm(threshold=0.04),
        history_capacity=PERIOD,
        min_history=PERIOD,
    )

    # Day 1: warm-up (no judgments until one full season is buffered).
    print("day 1: warming up the seasonal baseline...")
    warmup = np.stack(
        [simulator.snapshot(step).v for step in range(0, 1440, SAMPLE_EVERY)]
    )
    service.warm_up(warmup)

    # Staged incidents.  The cache failure hits the busiest website so the
    # aggregate alarm can see it (a tail site would need a per-scope alarm).
    outage_step = 1440 + 14 * 60          # day 2, 14:00: region L5 dark
    cache_step = 2 * 1440 + 10 * 60       # day 3, 10:00: busiest site's caches fail
    baseline = simulator.snapshot(0).v
    site_volume = [
        baseline[codes[:, 3] == code].sum() for code in range(len(schema.elements(3)))
    ]
    busy_site = schema.decode("website", int(np.argmax(site_volume)))
    outage_pattern = AttributeCombination.parse("(L5, *, *, *)")
    cache_pattern = AttributeCombination.parse(f"(*, *, *, {busy_site})")

    reports = []
    for step in range(1440, 3 * 1440, SAMPLE_EVERY):
        values = simulator.snapshot(step).v
        if step == outage_step:
            mask = codes[:, 0] == schema.encode("location", "L5")
            values = values.copy()
            values[mask] *= 0.05
        if step == cache_step:
            mask = codes[:, 3] == schema.encode("website", busy_site)
            values = values.copy()
            values[mask] *= 0.45  # cache misses push traffic to back-haul
        report = service.observe(values)
        if report is not None:
            hours = (step % 1440) // 60
            print(f"\n--- alarm on day {step // 1440 + 1} at {hours:02d}:00 ---")
            print(report.render())
            reports.append(report)

    print(f"\nsummary: {service.incidents_raised} incidents over 2 monitored days")
    localized = {scope.pattern for report in reports for scope in report.scopes}
    for expected, label in ((outage_pattern, "regional outage"),
                            (cache_pattern, "site cache failure")):
        status = "localized" if expected in localized else "MISSED"
        print(f"  {label}: {expected} -> {status}")

    # Bonus: the cache incident seen through the derived hit-ratio KPI.
    print("\nderived-KPI view of the cache incident (hit ratio):")
    snapshot = simulator.snapshot(cache_step)
    requests = snapshot.v
    hit_rate = np.full(requests.size, 0.95)
    degraded = hit_rate.copy()
    degraded[codes[:, 3] == schema.encode("website", busy_site)] = 0.40
    multi = MultiKPIDataset(
        schema,
        codes,
        {
            "hits": (requests * degraded, requests * hit_rate),
            "requests": (requests, requests.copy()),
        },
    )
    kpi = DerivedKPI("hit_ratio", ("hits", "requests"), RATIO)
    labelled = multi.label_by_derived(kpi, DeviationThresholdDetector(threshold=0.3))
    from repro import RAPMiner

    patterns = RAPMiner().localize(labelled, k=1)
    print(f"  RAPMiner on hit-ratio labels -> {patterns[0]}")
    v, f = multi.derived_values(kpi, patterns[0])
    print(f"  scope hit ratio: {v:.2f} actual vs {f:.2f} expected")


if __name__ == "__main__":
    main()
