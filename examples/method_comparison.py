"""Method comparison: a miniature of the paper's Fig. 8 / Fig. 9.

Runs RAPMiner and the five baselines (including the HotSpot extension) on
both datasets at a small scale and prints the effectiveness and efficiency
matrices the paper plots.  Use ``--paper-scale`` to run the full-size
experiment instead (several minutes; this is what EXPERIMENTS.md records).

Run:  python examples/method_comparison.py [--paper-scale]
"""

import argparse

from repro.experiments import (
    all_methods,
    fast_preset,
    figure8a,
    figure8b,
    figure9a,
    figure9b,
    format_seconds,
    paper_preset,
    render_series_table,
    render_table,
    run_rapmd_comparison,
    run_squeeze_comparison,
)

GROUP_ORDER = [(d, r) for d in (1, 2, 3) for r in (1, 2, 3)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run at the paper's scale (full CDN schema, 105 RAPMD cases)",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    preset = paper_preset(args.seed) if args.paper_scale else fast_preset(args.seed)
    methods = all_methods()

    print(f"preset: {preset.name}")
    print("\ngenerating Squeeze-B0 dataset...")
    squeeze_cases = preset.squeeze_cases()
    print(f"  {len(squeeze_cases)} cases; running {len(methods)} methods...")
    squeeze_evals = run_squeeze_comparison(squeeze_cases, methods)

    print("\n[Fig. 8(a)] F1-score on Squeeze-B0 by (n_dim, n_raps) group")
    print(render_series_table(figure8a(squeeze_evals), column_order=GROUP_ORDER))

    print("\n[Fig. 9(a)] mean running time (s) on Squeeze-B0 by group")
    print(
        render_series_table(
            figure9a(squeeze_evals), value_format="{:.4f}", column_order=GROUP_ORDER
        )
    )

    print("\ngenerating RAPMD...")
    rapmd_cases = preset.rapmd_cases()
    print(f"  {len(rapmd_cases)} cases; running {len(methods)} methods...")
    rapmd_evals = run_rapmd_comparison(rapmd_cases, methods)

    print("\n[Fig. 8(b)] RC@k on RAPMD")
    print(
        render_series_table(
            figure8b(rapmd_evals), column_order=[3, 4, 5], first_header="method \\ k"
        )
    )

    print("\n[Fig. 9(b)] mean running time on RAPMD")
    print(
        render_table(
            ["method", "mean time"],
            [
                [name, format_seconds(seconds)]
                for name, seconds in figure9b(rapmd_evals).items()
            ],
        )
    )


if __name__ == "__main__":
    main()
