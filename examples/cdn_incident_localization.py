"""Operational scenario: localize a real traffic drop from forecasts.

Unlike the quickstart (which injects forecasts the way the paper builds its
datasets), this example runs the *operational* pipeline the paper's Fig. 1
describes:

1. two days of per-leaf CDN traffic history are simulated;
2. a seasonal-naive forecaster predicts the next collection interval;
3. an incident hits: every Android user of two sites served via wireless
   loses most of their throughput (a realistic multi-dimensional scope);
4. a deviation-threshold detector labels the leaf KPIs;
5. RAPMiner mines the root anomaly patterns and prints an incident report
   a human operator could act on (switch the impacted users, Fig. 1).

Run:  python examples/cdn_incident_localization.py
"""

import numpy as np

from repro import RAPMiner, RAPMinerConfig, cdn_schema
from repro.core.attribute import AttributeCombination
from repro.data import CDNSimulator, CDNSimulatorConfig, FineGrainedDataset
from repro.detection import DeviationThresholdDetector, SeasonalNaiveForecaster, label_dataset

SAMPLE_EVERY = 20  # simulated minutes between collections
HISTORY_DAYS = 2


def build_history(simulator: CDNSimulator) -> np.ndarray:
    steps = range(0, HISTORY_DAYS * 1440, SAMPLE_EVERY)
    return np.stack([simulator.snapshot(step).v for step in steps])


def main() -> None:
    schema = cdn_schema(10, 3, 3, 8)
    simulator = CDNSimulator(schema, CDNSimulatorConfig(seed=42, noise_sigma=0.03))

    print("collecting history...")
    history = build_history(simulator)
    period = 1440 // SAMPLE_EVERY  # one day of samples
    forecaster = SeasonalNaiveForecaster(period=period)
    forecast = forecaster.forecast(history)

    # The incident: wireless Android users of Site2 and Site5 drop 70%.
    target_step = HISTORY_DAYS * 1440
    snapshot = simulator.snapshot(target_step)
    actual = snapshot.v.copy()
    impacted_patterns = [
        AttributeCombination.parse("(*, Wireless, Android, Site2)"),
        AttributeCombination.parse("(*, Wireless, Android, Site5)"),
    ]
    plain = FineGrainedDataset(schema, snapshot.codes, actual, forecast)
    impacted = np.zeros(plain.n_rows, dtype=bool)
    for pattern in impacted_patterns:
        impacted |= plain.mask_of(pattern)
    actual[impacted] *= 0.3
    observed = FineGrainedDataset(schema, snapshot.codes, actual, forecast)

    print(f"incident injected on {impacted.sum()} leaves; detecting...")
    labelled = label_dataset(observed, DeviationThresholdDetector(threshold=0.4))
    print(f"detector flagged {labelled.n_anomalous} anomalous leaf KPIs")

    miner = RAPMiner(RAPMinerConfig(t_conf=0.75))
    result = miner.run(labelled, k=5)

    print("\n=== INCIDENT REPORT ===")
    print(f"overall traffic: {observed.v.sum():,.0f} actual vs {observed.f.sum():,.0f} expected")
    print("affected scopes (coarsest first):")
    for rank, candidate in enumerate(result.candidates, start=1):
        v, f = labelled.values_of(candidate.combination)
        print(
            f"  {rank}. {candidate.combination}  "
            f"traffic {v:,.0f}/{f:,.0f} ({100.0 * (1 - v / f):.0f}% down), "
            f"{candidate.anomalous_support}/{candidate.support} leaf KPIs anomalous"
        )
    print(
        "suggested action: switch the impacted users above to backup edge "
        "sites (cf. Fig. 1 of the paper)"
    )

    found = {c.combination for c in result.candidates}
    expected = set(impacted_patterns)
    print(
        f"\nground truth check: {len(found & expected)}/{len(expected)} "
        "impacted scopes localized exactly"
    )


if __name__ == "__main__":
    main()
