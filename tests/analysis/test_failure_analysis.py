"""Tests for the failure taxonomy."""

import pytest

from repro.analysis.failure_analysis import (
    CATEGORIES,
    FailureBreakdown,
    analyze_failures,
    classify_truth,
    patterns_intersect,
)
from repro.core.attribute import AttributeCombination
from repro.experiments.runner import CaseResult, MethodEvaluation


def ac(text):
    return AttributeCombination.parse(text)


class TestPatternsIntersect:
    def test_identical(self):
        assert patterns_intersect(ac("(a1, *)"), ac("(a1, *)"))

    def test_disjoint_on_shared_attribute(self):
        assert not patterns_intersect(ac("(a1, *)"), ac("(a2, *)"))

    def test_orthogonal_attributes_intersect(self):
        assert patterns_intersect(ac("(a1, *)"), ac("(*, b1)"))

    def test_ancestor_intersects_descendant(self):
        assert patterns_intersect(ac("(a1, *)"), ac("(a1, b1)"))

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            patterns_intersect(ac("(a1, *)"), ac("(a1, *, *)"))


class TestClassifyTruth:
    TRUTH = ac("(a1, b1, *)")

    def test_exact(self):
        assert classify_truth(self.TRUTH, [ac("(a1, b1, *)")]) == "exact"

    def test_over_coarse(self):
        assert classify_truth(self.TRUTH, [ac("(a1, *, *)")]) == "over_coarse"

    def test_over_fine(self):
        assert classify_truth(self.TRUTH, [ac("(a1, b1, c1)")]) == "over_fine"

    def test_overlapping(self):
        assert classify_truth(self.TRUTH, [ac("(a1, *, c1)")]) == "overlapping"

    def test_missed(self):
        assert classify_truth(self.TRUTH, [ac("(a2, *, *)")]) == "missed"
        assert classify_truth(self.TRUTH, []) == "missed"

    def test_best_category_wins(self):
        """Exact beats over_coarse beats overlapping."""
        predicted = [ac("(a1, *, c1)"), ac("(a1, *, *)"), ac("(a1, b1, *)")]
        assert classify_truth(self.TRUTH, predicted) == "exact"
        predicted = [ac("(a1, *, c1)"), ac("(a1, *, *)")]
        assert classify_truth(self.TRUTH, predicted) == "over_coarse"


def make_evaluation(entries):
    evaluation = MethodEvaluation("test-method")
    for case_id, predicted, truths in entries:
        evaluation.results.append(
            CaseResult(
                case_id=case_id,
                predicted=[ac(p) for p in predicted],
                true_raps=tuple(ac(t) for t in truths),
                seconds=0.0,
            )
        )
    return evaluation


class TestAnalyzeFailures:
    def test_counts_by_category(self):
        evaluation = make_evaluation(
            [
                ("c1", ["(a1, b1, *)"], ["(a1, b1, *)"]),            # exact
                ("c2", ["(a1, *, *)"], ["(a1, b1, *)"]),             # over_coarse
                ("c3", ["(a2, *, *)"], ["(a1, b1, *)"]),             # missed
            ]
        )
        breakdown = analyze_failures(evaluation)
        assert breakdown.counts["exact"] == 1
        assert breakdown.counts["over_coarse"] == 1
        assert breakdown.counts["missed"] == 1
        assert breakdown.total_truths == 3
        assert breakdown.fraction("exact") == pytest.approx(1 / 3)

    def test_spurious_predictions_counted(self):
        evaluation = make_evaluation(
            [("c1", ["(a1, b1, *)", "(a3, *, *)"], ["(a1, b1, *)"])]
        )
        breakdown = analyze_failures(evaluation)
        assert breakdown.total_predictions == 2
        assert breakdown.spurious_predictions == 1
        assert breakdown.spurious_fraction == pytest.approx(0.5)

    def test_top_k_limits_credit(self):
        evaluation = make_evaluation(
            [("c1", ["(a2, *, *)", "(a3, *, *)", "(a1, b1, *)"], ["(a1, b1, *)"])]
        )
        assert analyze_failures(evaluation, top_k=2).counts["missed"] == 1
        assert analyze_failures(evaluation, top_k=3).counts["exact"] == 1

    def test_examples_collected(self):
        evaluation = make_evaluation([("c2", ["(a1, *, *)"], ["(a1, b1, *)"])])
        breakdown = analyze_failures(evaluation)
        case_id, truth, predicted = breakdown.examples["over_coarse"][0]
        assert case_id == "c2"
        assert truth == "(a1, b1, *)"

    def test_render(self):
        evaluation = make_evaluation([("c1", ["(a1, b1, *)"], ["(a1, b1, *)"])])
        text = analyze_failures(evaluation).render()
        assert "test-method" in text
        for category in CATEGORIES:
            assert category in text

    def test_unknown_category_rejected(self):
        breakdown = FailureBreakdown("m")
        with pytest.raises(KeyError):
            breakdown.fraction("weird")

    def test_rapminer_mostly_exact_on_clean_data(self):
        """On noise-free RAPMD, RAPMiner's misses are structured: mostly
        exact, some over_coarse/over_fine from attribute deletion."""
        from repro.core.miner import RAPMiner
        from repro.data.rapmd import RAPMDConfig, generate_rapmd
        from repro.data.schema import cdn_schema
        from repro.experiments.runner import run_cases

        cases = generate_rapmd(
            cdn_schema(6, 2, 2, 5), RAPMDConfig(n_cases=10, n_days=2, seed=17)
        )
        evaluation = run_cases(RAPMiner(), cases, k=3)
        breakdown = analyze_failures(evaluation)
        assert breakdown.fraction("exact") > 0.5
        assert breakdown.counts["missed"] + breakdown.counts["overlapping"] <= (
            breakdown.total_truths // 2
        )
