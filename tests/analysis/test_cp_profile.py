"""Tests for the Classification-Power profiler."""

import pytest

from repro.analysis.cp_profile import CPProfile, profile_classification_power
from repro.core.attribute import AttributeCombination
from repro.data.injection import LocalizationCase
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from tests.conftest import make_labelled_dataset


class TestCPProfile:
    def test_auc_perfect_separation(self):
        profile = CPProfile(in_rap=[0.5, 0.9], out_of_rap=[0.0, 0.1])
        assert profile.auc() == 1.0

    def test_auc_no_signal(self):
        profile = CPProfile(in_rap=[0.3, 0.7], out_of_rap=[0.3, 0.7])
        assert profile.auc() == pytest.approx(0.5)

    def test_auc_empty_side_is_one(self):
        assert CPProfile(in_rap=[0.5]).auc() == 1.0

    def test_recommended_t_cp_below_in_rap_values(self):
        profile = CPProfile(in_rap=[0.2, 0.3, 0.4], out_of_rap=[0.0, 0.01])
        threshold = profile.recommended_t_cp(keep_fraction=1.0)
        assert threshold < 0.2
        # Criteria 1 keeps attributes with CP > t_cp: all in-RAP survive.
        kept = [cp for cp in profile.in_rap if cp > threshold]
        assert len(kept) == 3

    def test_recommended_t_cp_capped(self):
        profile = CPProfile(in_rap=[0.9, 0.95], out_of_rap=[0.0])
        assert profile.recommended_t_cp() <= 0.1

    def test_recommended_validates_fraction(self):
        with pytest.raises(ValueError):
            CPProfile(in_rap=[0.5]).recommended_t_cp(keep_fraction=0.0)

    def test_deletion_rates(self):
        profile = CPProfile(in_rap=[0.05, 0.5], out_of_rap=[0.0, 0.01, 0.2])
        in_deleted, out_deleted = profile.deletion_rates(0.05)
        assert in_deleted == pytest.approx(0.5)
        assert out_deleted == pytest.approx(2.0 / 3.0)


class TestProfileOverCases:
    def test_fig6_case_profiles_cleanly(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        case = LocalizationCase(
            "c", ds, (AttributeCombination.parse("(a1, *, *)"),)
        )
        profile = profile_classification_power([case])
        assert len(profile.in_rap) == 1   # attribute A
        assert len(profile.out_of_rap) == 2  # B and C
        assert profile.in_rap[0] == pytest.approx(1.0)
        assert profile.auc() == 1.0

    def test_rapmd_profile_has_positive_signal(self):
        cases = generate_rapmd(
            cdn_schema(6, 2, 2, 5), RAPMDConfig(n_cases=10, n_days=2, seed=23)
        )
        profile = profile_classification_power(cases)
        assert profile.n_observations == 10 * 4
        assert profile.auc() > 0.7  # CP genuinely separates membership

    def test_recommended_threshold_tracks_fig10a(self):
        """The profiler's recommendation must lie in the flat region of the
        Fig. 10(a) curve (well below 0.1 on RAPMD-style data)."""
        cases = generate_rapmd(
            cdn_schema(6, 2, 2, 5), RAPMDConfig(n_cases=10, n_days=2, seed=23)
        )
        profile = profile_classification_power(cases)
        threshold = profile.recommended_t_cp(keep_fraction=0.9)
        assert 0.0 <= threshold < 0.1
        in_deleted, out_deleted = profile.deletion_rates(threshold)
        assert in_deleted <= 0.1 + 1e-9
        assert out_deleted > in_deleted  # deletion hits the right side more
