"""Tests for the process-pool batch execution layer.

Pool-backed tests run 2 workers over the small RAPMD collection; each
asserts some facet of the serial-equivalence contract (ordering, ranked
output, grouping, timing, counters).
"""

import pytest

from repro import RAPMiner, obs
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.experiments.runner import run_cases
from repro.parallel import BatchConfig, batch_localize, shard_indices


def make_cases(n_cases=4):
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=n_cases, n_days=2, seed=9)
    )


@pytest.fixture(scope="module")
def serial_eval():
    return run_cases(RAPMiner(), make_cases(), k=3)


class TestShardIndices:
    def test_even_split_is_contiguous(self):
        assert shard_indices(5, 2) == [[0, 1, 2], [3, 4]]

    def test_more_workers_than_cases(self):
        assert shard_indices(2, 8) == [[0], [1]]

    def test_chunk_size_overrides_worker_count(self):
        assert shard_indices(5, 2, chunk_size=2) == [[0, 1], [2, 3], [4]]

    def test_empty_collection(self):
        assert shard_indices(0, 4) == []

    def test_shards_cover_every_index_once(self):
        flat = [i for shard in shard_indices(13, 4) for i in shard]
        assert flat == list(range(13))


class TestBatchConfig:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            BatchConfig(n_workers=0)

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError):
            BatchConfig(transport="tcp")

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            BatchConfig(chunk_size=0)


class TestSerialEquivalence:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_bit_identical_predictions(self, serial_eval, transport):
        evaluation = batch_localize(
            RAPMiner(),
            make_cases(),
            k=3,
            config=BatchConfig(n_workers=2, transport=transport),
        )
        assert [r.case_id for r in evaluation.results] == [
            r.case_id for r in serial_eval.results
        ]
        for got, want in zip(evaluation.results, serial_eval.results):
            assert got.predicted == want.predicted
            assert got.true_raps == want.true_raps
            assert got.group == want.group

    def test_cold_engines_also_identical(self, serial_eval):
        evaluation = batch_localize(
            RAPMiner(),
            make_cases(),
            k=3,
            config=BatchConfig(n_workers=2, warm_engines=False),
        )
        for got, want in zip(evaluation.results, serial_eval.results):
            assert got.predicted == want.predicted

    def test_single_worker_is_serial_path(self, serial_eval):
        evaluation = batch_localize(RAPMiner(), make_cases(), k=3)
        assert [r.predicted for r in evaluation.results] == [
            r.predicted for r in serial_eval.results
        ]

    def test_empty_case_list(self):
        evaluation = batch_localize(
            RAPMiner(), [], k=3, config=BatchConfig(n_workers=2)
        )
        assert evaluation.results == []

    def test_k_from_truth_protocol(self):
        cases = make_cases()
        serial = run_cases(RAPMiner(), cases, k_from_truth=True)
        batch = batch_localize(
            RAPMiner(),
            make_cases(),
            k_from_truth=True,
            config=BatchConfig(n_workers=2),
        )
        for got, want in zip(batch.results, serial.results):
            assert got.predicted == want.predicted

    def test_chunked_shards_preserve_order(self, serial_eval):
        evaluation = batch_localize(
            RAPMiner(),
            make_cases(),
            k=3,
            config=BatchConfig(n_workers=2, chunk_size=1),
        )
        assert [r.case_id for r in evaluation.results] == [
            r.case_id for r in serial_eval.results
        ]

    def test_per_case_timing_recorded(self):
        evaluation = batch_localize(
            RAPMiner(), make_cases(), k=3, config=BatchConfig(n_workers=2)
        )
        assert all(r.seconds > 0 for r in evaluation.results)


class TestCounterMerge:
    def test_cold_sharded_counters_equal_serial(self):
        with obs.capture() as serial_collector:
            run_cases(RAPMiner(), make_cases(), k=3)
        with obs.capture() as batch_collector:
            batch_localize(
                RAPMiner(),
                make_cases(),
                k=3,
                config=BatchConfig(n_workers=2, warm_engines=False),
            )
        for path in ("cold", "cache_hit", "rollup", "warm_refresh"):
            assert batch_collector.metrics.value(
                "engine_aggregate_total", {"path": path}
            ) == serial_collector.metrics.value(
                "engine_aggregate_total", {"path": path}
            ), path
        assert batch_collector.metrics.family_total(
            "search_cuboids_scanned_total"
        ) == serial_collector.metrics.family_total("search_cuboids_scanned_total")

    def test_warm_sharded_request_totals_equal_serial(self):
        with obs.capture() as serial_collector:
            run_cases(RAPMiner(), make_cases(), k=3)
        with obs.capture() as batch_collector:
            batch_localize(
                RAPMiner(), make_cases(), k=3, config=BatchConfig(n_workers=2)
            )
        assert batch_collector.metrics.family_total(
            "engine_aggregate_total"
        ) == serial_collector.metrics.family_total("engine_aggregate_total")

    def test_batch_layer_counters_present(self):
        with obs.capture() as collector:
            batch_localize(
                RAPMiner(), make_cases(), k=3, config=BatchConfig(n_workers=2)
            )
        metrics = collector.metrics
        assert metrics.value("parallel_shards_total") == 2
        assert metrics.value("parallel_cases_total", {"transport": "shm"}) == 4
        assert metrics.value("parallel_merge_snapshots_total") == 2
        outcomes = metrics.value(
            "parallel_warm_engines_total", {"outcome": "cold"}
        ) + metrics.value("parallel_warm_engines_total", {"outcome": "warm_clone"})
        assert outcomes == 4

    def test_no_collector_means_no_collection(self):
        evaluation = batch_localize(
            RAPMiner(), make_cases(), k=3, config=BatchConfig(n_workers=2)
        )
        assert len(evaluation.results) == 4
        assert obs.active_collector() is None

    def test_forced_collection_without_parent_collector_is_dropped(self):
        # collect_metrics=True without a parent collector: snapshots are
        # taken but there is nowhere to merge them — must not crash.
        evaluation = batch_localize(
            RAPMiner(),
            make_cases(),
            k=3,
            config=BatchConfig(n_workers=2, collect_metrics=True),
        )
        assert len(evaluation.results) == 4


class TestFastPresetSmoke:
    """Tier-1 guard: the pool path must work on the real fast-preset data.

    Process-pool regressions (transport layout, fork inheritance, merge
    protocol) should fail here in CI, not only in ``make bench-throughput``.
    """

    def test_two_workers_on_fast_preset(self):
        from repro.experiments.presets import fast_preset

        cases = fast_preset(seed=1).rapmd_cases()
        serial = run_cases(RAPMiner(), cases, k=5)
        with obs.capture() as collector:
            batch = batch_localize(
                RAPMiner(), cases, k=5, config=BatchConfig(n_workers=2)
            )
        assert [r.case_id for r in batch.results] == [
            r.case_id for r in serial.results
        ]
        for got, want in zip(batch.results, serial.results):
            assert got.predicted == want.predicted
        assert collector.metrics.value("parallel_shards_total") == 2
        assert collector.metrics.value(
            "parallel_cases_total", {"transport": "shm"}
        ) == len(cases)
