"""Tests for the batch layer's vectorized and auto execution modes.

``batch_localize`` must return the same :class:`MethodEvaluation` rows —
case ids, ranked predictions, groups, input order — through every mode:
the serial loop, the sharded pool, the in-process case-stacked kernel,
and the auto heuristic.  Workers running the stacked kernel on a shard
are exercised directly through ``_run_shard`` so the test works on
single-CPU machines where ``auto`` never picks the pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import RAPMiner, obs
from repro.core import RAPMinerConfig
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema, schema_from_sizes
from repro.experiments.presets import fast_preset
from repro.experiments.runner import run_cases
from repro.parallel import BatchConfig, batch_localize
from repro.parallel.batch import _run_shard


def make_cases(n_cases=4):
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=n_cases, n_days=2, seed=9)
    )


def rowset(evaluation):
    return [
        (r.case_id, r.predicted, r.true_raps, r.group) for r in evaluation.results
    ]


@pytest.fixture(scope="module")
def cases():
    return make_cases()


@pytest.fixture(scope="module")
def serial_eval(cases):
    return run_cases(RAPMiner(), cases, k=3)


class TestModeConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            BatchConfig(mode="fused")

    def test_sharded_resolves_to_itself(self):
        assert BatchConfig(mode="sharded", n_workers=8).resolve_mode() == (
            "sharded",
            False,
        )

    def test_vectorized_resolves_to_itself(self):
        assert BatchConfig(mode="vectorized", n_workers=8).resolve_mode() == (
            "vectorized",
            False,
        )

    def test_auto_single_worker_is_vectorized(self):
        assert BatchConfig(mode="auto", n_workers=1).resolve_mode() == (
            "vectorized",
            False,
        )

    def test_auto_pools_only_with_spare_cpus(self):
        import os

        execution, worker_vectorized = BatchConfig(
            mode="auto", n_workers=4
        ).resolve_mode()
        if (os.cpu_count() or 1) >= 4:
            assert (execution, worker_vectorized) == ("sharded", True)
        else:
            assert (execution, worker_vectorized) == ("vectorized", False)


class TestVectorizedEquivalence:
    def test_vectorized_matches_serial(self, cases, serial_eval):
        evaluation = batch_localize(
            RAPMiner(), cases, k=3, config=BatchConfig(mode="vectorized")
        )
        assert rowset(evaluation) == rowset(serial_eval)

    def test_auto_matches_serial(self, cases, serial_eval):
        evaluation = batch_localize(
            RAPMiner(), cases, k=3, config=BatchConfig(mode="auto", n_workers=2)
        )
        assert rowset(evaluation) == rowset(serial_eval)

    def test_vectorized_matches_sharded_pool(self, cases, serial_eval):
        evaluation = batch_localize(
            RAPMiner(),
            cases,
            k=3,
            config=BatchConfig(mode="sharded", n_workers=2),
        )
        assert rowset(evaluation) == rowset(serial_eval)

    def test_k_from_truth(self, cases):
        want = run_cases(RAPMiner(), cases, k_from_truth=True)
        got = batch_localize(
            RAPMiner(),
            cases,
            k_from_truth=True,
            config=BatchConfig(mode="vectorized"),
        )
        assert rowset(got) == rowset(want)

    def test_amortized_seconds_positive_and_uniform(self, cases):
        evaluation = batch_localize(
            RAPMiner(), cases, k=3, config=BatchConfig(mode="vectorized")
        )
        seconds = {r.seconds for r in evaluation.results}
        assert len(seconds) == 1  # one amortized clock for the fused batch
        assert seconds.pop() > 0.0

    def test_randomized_schema_grid_all_modes(self):
        rng = np.random.default_rng(4)
        for trial in range(2):
            sizes = [int(rng.integers(2, 6)) for _ in range(4)]
            grid_cases = generate_rapmd(
                schema_from_sizes(sizes),
                RAPMDConfig(n_cases=4, n_days=1, seed=30 + trial),
            )
            want = run_cases(RAPMiner(), grid_cases, k_from_truth=True)
            for config in (
                BatchConfig(mode="vectorized"),
                BatchConfig(mode="auto", n_workers=2),
                BatchConfig(mode="sharded", n_workers=2, transport="pickle"),
            ):
                got = batch_localize(
                    RAPMiner(), grid_cases, k_from_truth=True, config=config
                )
                assert rowset(got) == rowset(want), (sizes, config.mode)


class TestWorkerVectorizedShard:
    def test_run_shard_vectorized_payload_matches_per_case_loop(self, cases):
        base = {
            "method": RAPMiner(),
            "k": 3,
            "k_from_truth": False,
            "group_key": "group",
            "transport": "pickle",
            "warm_engines": True,
            "collect": False,
            "indices": list(range(len(cases))),
            "cases": list(cases),
        }
        vec_rows, __ = _run_shard(dict(base, vectorized=True))
        ref_rows, __ = _run_shard(dict(base, vectorized=False))
        strip = lambda rows: [(r[0], r[1], r[2], r[3], r[5]) for r in rows]
        assert strip(vec_rows) == strip(ref_rows)

    def test_run_shard_payload_without_flag_is_per_case(self, cases):
        # Old-style payloads (no "vectorized" key) keep working.
        payload = {
            "method": RAPMiner(),
            "k": 3,
            "k_from_truth": False,
            "group_key": "group",
            "transport": "pickle",
            "warm_engines": True,
            "collect": False,
            "indices": [0],
            "cases": [cases[0]],
        }
        rows, __ = _run_shard(payload)
        assert len(rows) == 1


class TestFallback:
    def test_method_without_run_batch_falls_back(self, cases, serial_eval):
        class NoBatch:
            name = "NoBatch"

            def localize(self, dataset, k=None):
                return RAPMiner().run(dataset, k).patterns

        with obs.capture() as collector:
            evaluation = batch_localize(
                NoBatch(), cases, k=3, config=BatchConfig(mode="vectorized")
            )
        assert rowset(evaluation) == rowset(serial_eval)
        assert collector.metrics.value("stacked_fallback_cases_total") == len(cases)


class TestCounters:
    def test_vectorized_emits_stacked_counters(self, cases):
        with obs.capture() as collector:
            batch_localize(
                RAPMiner(), cases, k=3, config=BatchConfig(mode="vectorized")
            )
        assert collector.metrics.value("stacked_batch_cases_total") == len(cases)
        assert collector.metrics.value("stacked_groups_total") >= 1
        assert collector.metrics.value("stacked_layers_fused_total") >= 1
        assert (
            collector.metrics.value(
                "stacked_bincount_passes_total", {"kind": "anomalous"}
            )
            >= 1
        )
        # Per-case search counters keep their serial totals.
        with obs.capture() as serial_collector:
            run_cases(RAPMiner(), cases, k=3)
        for name in (
            "search_cuboids_total",
            "search_combinations_total",
            "search_candidates_total",
            "search_criteria3_pruned_total",
        ):
            assert collector.metrics.value(name) == serial_collector.metrics.value(
                name
            ), name


class TestFastPresetSmoke:
    def test_vectorized_and_auto_on_fast_preset(self):
        preset_cases = fast_preset(seed=1).rapmd_cases()
        want = run_cases(RAPMiner(), preset_cases, k=5)
        for mode in ("vectorized", "auto"):
            got = batch_localize(
                RAPMiner(),
                preset_cases,
                k=5,
                config=BatchConfig(mode=mode, n_workers=2),
            )
            assert rowset(got) == rowset(want), mode
