"""Tests for the shared-memory case store."""

import numpy as np
import pytest

from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.parallel.shm import ALIGNMENT, SharedCaseStore


@pytest.fixture(scope="module")
def small_cases():
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=3, n_days=2, seed=9)
    )


class TestPackAttach:
    def test_roundtrip_is_bit_exact(self, small_cases):
        with SharedCaseStore.pack(small_cases) as store:
            reader = SharedCaseStore.attach(store.spec)
            try:
                rebuilt = reader.cases()
                assert len(rebuilt) == len(small_cases)
                for original, copy in zip(small_cases, rebuilt):
                    assert copy.case_id == original.case_id
                    assert copy.true_raps == original.true_raps
                    assert copy.dataset.schema == original.dataset.schema
                    for field in ("codes", "v", "f", "labels"):
                        got = getattr(copy.dataset, field)
                        want = getattr(original.dataset, field)
                        assert got.dtype == want.dtype
                        assert np.array_equal(got, want)
            finally:
                del rebuilt  # release views before unmapping
                reader.close()

    def test_views_are_zero_copy_and_read_only(self, small_cases):
        with SharedCaseStore.pack(small_cases) as store:
            case = store.case(0)
            # The dataset holds the view itself: no copy on construction.
            assert not case.dataset.v.flags.owndata
            assert not case.dataset.v.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                case.dataset.v[0] = 0.0
            del case

    def test_offsets_are_aligned(self, small_cases):
        with SharedCaseStore.pack(small_cases) as store:
            for entry in store.spec["cases"]:
                for meta in entry["arrays"].values():
                    assert meta["offset"] % ALIGNMENT == 0

    def test_subset_selection_preserves_order(self, small_cases):
        with SharedCaseStore.pack(small_cases) as store:
            picked = store.cases([2, 0])
            assert [case.case_id for case in picked] == [
                small_cases[2].case_id,
                small_cases[0].case_id,
            ]
            del picked

    def test_spec_is_picklable(self, small_cases):
        import pickle

        with SharedCaseStore.pack(small_cases) as store:
            spec = pickle.loads(pickle.dumps(store.spec))
            assert spec == store.spec

    def test_destroy_is_idempotent(self, small_cases):
        store = SharedCaseStore.pack(small_cases)
        store.destroy()
        store.destroy()

    def test_nbytes_covers_all_arrays(self, small_cases):
        total = sum(
            getattr(case.dataset, field).nbytes
            for case in small_cases
            for field in ("codes", "v", "f", "labels")
        )
        with SharedCaseStore.pack(small_cases) as store:
            assert store.nbytes >= total


class TestOrphanGuard:
    """The weakref.finalize guard reaps blocks whose owner never cleaned up."""

    def test_abandoned_store_is_reaped_and_counted(self, small_cases):
        import gc
        from multiprocessing import shared_memory

        from repro import obs

        with obs.capture() as collector:
            store = SharedCaseStore.pack(small_cases)
            name = store.spec["shm_name"]
            del store  # owner vanishes without destroy() — the leak case
            gc.collect()
        assert collector.metrics.value("parallel_shm_orphans_total") == 1.0
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_clean_destroy_is_not_counted_as_orphan(self, small_cases):
        import gc

        from repro import obs

        with obs.capture() as collector:
            store = SharedCaseStore.pack(small_cases)
            store.destroy()
            del store
            gc.collect()
        assert collector.metrics.value("parallel_shm_orphans_total") == 0.0

    def test_worker_attachments_never_arm_the_guard(self, small_cases):
        import gc

        from repro import obs

        with obs.capture() as collector:
            with SharedCaseStore.pack(small_cases) as store:
                reader = SharedCaseStore.attach(store.spec)
                assert reader._orphan_guard is None
                reader.close()
                del reader
                gc.collect()
        assert collector.metrics.value("parallel_shm_orphans_total") == 0.0
