"""Execute the doctest examples embedded in module/class docstrings."""

import doctest

import pytest

import repro.core.attribute
import repro.data.cdn_simulator
import repro.obs.trace

MODULES_WITH_DOCTESTS = [
    repro.core.attribute,
    repro.data.cdn_simulator,
    repro.obs.trace,
]


@pytest.mark.parametrize("module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"


def test_package_quickstart_doctest():
    """The quickstart in the package docstring must stay runnable."""
    import repro

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
