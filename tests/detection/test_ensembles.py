"""Tests for detector ensembles."""

import numpy as np
import pytest

from repro.detection.detectors import Detector, DeviationThresholdDetector
from repro.detection.ensembles import (
    IntersectionDetector,
    MajorityDetector,
    UnionDetector,
)


class FixedDetector(Detector):
    """Returns a canned verdict regardless of input."""

    def __init__(self, verdict):
        self.verdict = np.asarray(verdict, dtype=bool)

    def detect(self, v, f):
        return self.verdict.copy()


V = np.zeros(4)
F = np.zeros(4)

A = FixedDetector([True, True, False, False])
B = FixedDetector([True, False, True, False])
C = FixedDetector([True, False, False, False])


class TestUnion:
    def test_any_member_flags(self):
        assert UnionDetector([A, B]).detect(V, F).tolist() == [True, True, True, False]

    def test_single_member_identity(self):
        assert UnionDetector([A]).detect(V, F).tolist() == A.verdict.tolist()


class TestIntersection:
    def test_all_members_must_agree(self):
        assert IntersectionDetector([A, B]).detect(V, F).tolist() == [
            True, False, False, False,
        ]

    def test_subset_of_union(self):
        union = UnionDetector([A, B, C]).detect(V, F)
        intersection = IntersectionDetector([A, B, C]).detect(V, F)
        assert (intersection <= union).all()


class TestMajority:
    def test_two_of_three(self):
        assert MajorityDetector([A, B, C]).detect(V, F).tolist() == [
            True, False, False, False,
        ]

    def test_exact_half_is_not_majority(self):
        assert MajorityDetector([A, B]).detect(V, F).tolist() == [
            True, False, False, False,
        ]

    def test_between_intersection_and_union(self):
        union = UnionDetector([A, B, C]).detect(V, F)
        majority = MajorityDetector([A, B, C]).detect(V, F)
        intersection = IntersectionDetector([A, B, C]).detect(V, F)
        assert (intersection <= majority).all()
        assert (majority <= union).all()


class TestValidation:
    @pytest.mark.parametrize("cls", [UnionDetector, IntersectionDetector, MajorityDetector])
    def test_empty_ensemble_rejected(self, cls):
        with pytest.raises(ValueError):
            cls([])


class TestWithRealDetectors:
    def test_threshold_pair_union_and_intersection(self):
        """Loose+strict thresholds: union == loose, intersection == strict."""
        rng = np.random.default_rng(0)
        v = np.full(100, 100.0)
        f = v / (1.0 - rng.uniform(0.0, 0.5, 100))  # Dev in [0, 0.5)
        loose = DeviationThresholdDetector(threshold=0.1)
        strict = DeviationThresholdDetector(threshold=0.3)
        union = UnionDetector([loose, strict]).detect(v, f)
        intersection = IntersectionDetector([loose, strict]).detect(v, f)
        assert np.array_equal(union, loose.detect(v, f))
        assert np.array_equal(intersection, strict.detect(v, f))

    def test_ensemble_feeds_localization(self, example_schema):
        from repro.core.miner import RAPMiner
        from repro.detection.detectors import label_dataset
        from tests.conftest import make_labelled_dataset

        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        ensemble = MajorityDetector(
            [
                DeviationThresholdDetector(threshold=0.2),
                DeviationThresholdDetector(threshold=0.3),
                DeviationThresholdDetector(threshold=0.35),
            ]
        )
        relabelled = label_dataset(ds, ensemble)
        patterns = RAPMiner().localize(relabelled, k=1)
        assert [str(p) for p in patterns] == ["(a1, *, *)"]
