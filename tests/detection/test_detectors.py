"""Tests for leaf-level anomaly detectors."""

import numpy as np
import pytest

from repro.data.dataset import FineGrainedDataset
from repro.detection.detectors import (
    DeviationThresholdDetector,
    KSigmaDetector,
    label_dataset,
)


class TestDeviationThreshold:
    def test_flags_drops_above_threshold(self):
        detector = DeviationThresholdDetector(threshold=0.095)
        v = np.array([100.0, 100.0, 100.0])
        f = np.array([100.0, 112.0, 200.0])  # Dev = 0, 0.107, 0.5
        assert detector.detect(v, f).tolist() == [False, True, True]

    def test_one_sided_ignores_surges(self):
        detector = DeviationThresholdDetector(threshold=0.095, two_sided=False)
        v = np.array([200.0])
        f = np.array([100.0])  # Dev = -1.0 (surge)
        assert detector.detect(v, f).tolist() == [False]

    def test_two_sided_catches_surges(self):
        detector = DeviationThresholdDetector(threshold=0.095, two_sided=True)
        v = np.array([200.0])
        f = np.array([100.0])
        assert detector.detect(v, f).tolist() == [True]

    def test_matches_injection_ranges(self):
        """Default threshold separates the paper's Dev ranges exactly."""
        detector = DeviationThresholdDetector()
        v = np.array([1.0, 1.0])
        f_normal = 1.0 / (1.0 - 0.09)  # Dev = 0.09
        f_anomalous = 1.0 / (1.0 - 0.10)  # Dev = 0.10
        result = detector.detect(v, np.array([f_normal, f_anomalous]))
        assert result.tolist() == [False, True]


class TestKSigma:
    def test_flags_extreme_outlier(self):
        rng = np.random.default_rng(0)
        v = np.full(200, 100.0)
        f = v * (1.0 + rng.normal(0.0, 0.01, 200))
        f[7] = 300.0  # huge residual
        flags = KSigmaDetector(k=3.0).detect(v, f)
        assert flags[7]
        assert flags.sum() < 10

    def test_robust_to_many_outliers(self):
        """MAD-based scale: 10% outliers must not mask each other."""
        rng = np.random.default_rng(1)
        v = np.full(200, 100.0)
        f = v * (1.0 + rng.normal(0.0, 0.005, 200))
        f[:20] = 160.0
        flags = KSigmaDetector(k=3.0).detect(v, f)
        assert flags[:20].all()

    def test_degenerate_constant_residuals(self):
        v = np.full(10, 100.0)
        flags = KSigmaDetector().detect(v, v.copy())
        assert not flags.any()


class TestLabelDataset:
    def test_attaches_labels_nondestructively(self, tiny_schema):
        v = np.array([100.0, 100.0, 100.0, 100.0])
        f = np.array([100.0, 100.0, 100.0, 180.0])
        ds = FineGrainedDataset.full(tiny_schema, v, f)
        labelled = label_dataset(ds, DeviationThresholdDetector())
        assert labelled.n_anomalous == 1
        assert ds.n_anomalous == 0
